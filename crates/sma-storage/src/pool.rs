//! Lock-striped buffer pool with per-shard LRU replacement and atomic I/O
//! accounting.
//!
//! The paper reports cold and warm timings (§2.4: 8 MB inter-transaction
//! buffer, 1 MB intra-transaction buffer on AODB). We reproduce the
//! distinction with an explicit pool: *cold* runs call
//! [`BufferPool::clear_cache`] first, *warm* runs reuse resident frames.
//! Every physical read is classified as sequential (page follows the
//! previously read page) or random, which feeds the deterministic cost
//! model in [`crate::cost`].
//!
//! The pool is also the durability checkpoint: every write-back stamps the
//! page's checksum footer ([`crate::page::stamp_page`]) and every physical
//! read verifies it, so torn writes and bit flips surface as
//! [`StoreError::Corrupt`] instead of silently wrong query answers.
//!
//! # Concurrency
//!
//! Buckets are independent units of work in the paper's design, so the
//! execution layer scans and aggregates them from multiple threads. To keep
//! those threads from serializing on one pool-wide lock, frames are split
//! into N lock-striped shards (page → shard by `page_no % N`); each shard
//! runs its own LRU over its own frame table. The store sits behind a
//! `RwLock` so concurrent misses in different shards overlap their physical
//! reads; write-backs take the write lock. Traffic counters live in atomics
//! so readers never contend on a stats lock.
//!
//! Lock order is always shard → store (never the reverse), and a thread
//! holds at most one shard lock except in [`BufferPool::flush_all`] /
//! [`BufferPool::clear_cache`], which acquire all shards in index order —
//! single-shard users cannot form a cycle against that.
//!
//! Small pools (fewer than [`MIN_FRAMES_PER_SHARD`] frames) use a single
//! shard, which preserves the exact global LRU behaviour the unit tests
//! and the paper's buffer-size experiments assume.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};

use crate::page::{stamp_page, verify_page, PAGE_SIZE};
use crate::store::{PageNo, PageStore, StoreError};

/// Counters describing pool traffic since the last reset.
///
/// Failed physical reads are *not* counted in the transfer counters: a read
/// that errors (I/O fault, checksum mismatch) never produced a page, so
/// counting it would skew the cost model that replays these counters.
/// Failed *attempts* are visible separately: every transient fault the pool
/// retried bumps `retried_reads`, and every read abandoned after the retry
/// budget ran out bumps `gaveup_reads` — so the cost model can price the
/// wasted device round-trips without polluting the transfer pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Page requests that missed the pool and hit the store.
    pub physical_reads: u64,
    /// Physical reads whose page number was `last + 1`.
    pub sequential_reads: u64,
    /// Physical reads that required a seek (not `last + 1`).
    pub random_reads: u64,
    /// Dirty pages written back to the store.
    pub physical_writes: u64,
    /// Transient read faults absorbed by the [`RetryPolicy`] (one per
    /// failed attempt that was retried, successful or not in the end).
    pub retried_reads: u64,
    /// Reads abandoned because a transient fault outlasted the retry
    /// budget; the error then propagated to the caller.
    pub gaveup_reads: u64,
}

impl IoStats {
    /// Hit ratio in `[0, 1]`; `1.0` when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }
}

/// How the pool reacts to [`StoreError::Transient`] read faults.
///
/// The schedule is deterministic: retry `k` (1-based) sleeps
/// `base_backoff_us << (k - 1)` microseconds, capped at `max_backoff_us`,
/// plus an optional *seeded* jitter — a pure function of
/// `(jitter_seed, k)` — so a given policy always issues the same attempt
/// sequence and fault-injection tests replay byte-identically. The cap
/// keeps a long retry budget from sleeping into the seconds; the jitter
/// decorrelates concurrent sessions hammering the same faulty device
/// without sacrificing replayability. Non-transient errors (corruption,
/// out-of-range, unclassified I/O) are never retried: retrying cannot fix
/// them and would only hide the diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first failed attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in microseconds; doubles each
    /// further retry. `0` disables sleeping (useful in tests).
    pub base_backoff_us: u64,
    /// Ceiling on the exponential schedule, in microseconds; `0` means
    /// uncapped. Jitter is added on top (at most a quarter of the capped
    /// backoff), so the true upper bound is `max_backoff_us * 5 / 4`.
    pub max_backoff_us: u64,
    /// Seed for the deterministic jitter; `0` disables jitter entirely,
    /// reproducing the bare exponential schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries with a 50 µs initial backoff, capped at 5 ms: rides
    /// out momentary device hiccups (a few hundred µs total) without
    /// stalling a query noticeably when the fault turns out to be
    /// permanent. No jitter — callers that fan out many sessions (the
    /// query server) seed it per pool.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 50,
            max_backoff_us: 5_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — every transient fault propagates.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff_us: 0,
            max_backoff_us: 0,
            jitter_seed: 0,
        }
    }

    /// Seeds the deterministic jitter (builder form).
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// The deterministic pause before retry `attempt` (1-based):
    /// `min(base << (attempt-1), cap) + jitter(seed, attempt)`.
    pub fn backoff_before(&self, attempt: u32) -> std::time::Duration {
        let exp = self.base_backoff_us.saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        );
        let capped = if self.max_backoff_us > 0 {
            exp.min(self.max_backoff_us)
        } else {
            exp
        };
        std::time::Duration::from_micros(capped.saturating_add(self.jitter_us(attempt, capped)))
    }

    /// Jitter for retry `attempt`, in `[0, capped/4]` — a pure splitmix64
    /// hash of `(jitter_seed, attempt)`, so two pools with the same seed
    /// sleep identically and different seeds decorrelate.
    fn jitter_us(&self, attempt: u32, capped: u64) -> u64 {
        if self.jitter_seed == 0 || capped == 0 {
            return 0;
        }
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z % (capped / 4 + 1)
    }
}

/// Pools with fewer frames than this stay single-sharded: striping a tiny
/// pool would fragment its capacity and change LRU eviction order.
const MIN_FRAMES_PER_SHARD: usize = 64;

/// Upper bound on shards; 16 mutexes cover any core count we target.
const MAX_SHARDS: usize = 16;

/// Sentinel for "no physical read yet" in the `last_physical` atomic.
const NO_LAST: u64 = u64::MAX;

/// [`IoStats`] kept in atomics so concurrent readers update them without a
/// lock. Snapshots are exact whenever the pool is quiesced (tests,
/// between-query accounting); mid-flight snapshots may tear across fields,
/// which the cost model never needs.
#[derive(Default)]
struct AtomicIoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    sequential_reads: AtomicU64,
    random_reads: AtomicU64,
    physical_writes: AtomicU64,
    retried_reads: AtomicU64,
    gaveup_reads: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            sequential_reads: self.sequential_reads.load(Ordering::Relaxed),
            random_reads: self.random_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            retried_reads: self.retried_reads.load(Ordering::Relaxed),
            gaveup_reads: self.gaveup_reads.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.sequential_reads.store(0, Ordering::Relaxed);
        self.random_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.retried_reads.store(0, Ordering::Relaxed);
        self.gaveup_reads.store(0, Ordering::Relaxed);
    }
}

struct Frame {
    page_no: PageNo,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// One lock stripe: an independent frame table with its own LRU clock.
#[derive(Default)]
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageNo, usize>,
    clock: u64,
}

impl Shard {
    fn bump_clock(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A fixed-capacity page cache over a [`PageStore`].
///
/// Access goes through closures ([`BufferPool::with_page`] /
/// [`with_page_mut`](BufferPool::with_page_mut)) so frames never escape the
/// shard lock; this keeps the API misuse-proof without pin bookkeeping.
/// All methods take `&self`: the pool is safe to share across scoped
/// threads.
pub struct BufferPool {
    capacity: usize,
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    store: RwLock<Box<dyn PageStore>>,
    stats: AtomicIoStats,
    /// Page number of the last successful physical read, or [`NO_LAST`].
    last_physical: AtomicU64,
    /// How transient read faults are retried; see [`RetryPolicy`].
    retry: RwLock<RetryPolicy>,
}

/// Locks a mutex, ignoring poisoning: a panicking worker thread must not
/// cascade into every other thread that touches the pool afterwards, and
/// shard state is consistent at every await-free unlock point.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl BufferPool {
    /// Creates a pool over `store` holding at most `capacity` pages.
    ///
    /// The paper's configuration (8 MB buffer, 4 KiB pages) corresponds to
    /// `capacity = 2048`.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let n_shards = (capacity / MIN_FRAMES_PER_SHARD).clamp(1, MAX_SHARDS);
        BufferPool {
            capacity,
            shard_capacity: capacity.div_ceil(n_shards),
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            store: RwLock::new(store),
            stats: AtomicIoStats::default(),
            last_physical: AtomicU64::new(NO_LAST),
            retry: RwLock::new(RetryPolicy::default()),
        }
    }

    /// Replaces the transient-fault retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.write().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// The current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes the frame table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> PageNo {
        self.read_store().page_count()
    }

    fn read_store(&self) -> std::sync::RwLockReadGuard<'_, Box<dyn PageStore>> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_store(&self) -> std::sync::RwLockWriteGuard<'_, Box<dyn PageStore>> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }

    fn shard_for(&self, no: PageNo) -> &Mutex<Shard> {
        &self.shards[no as usize % self.shards.len()]
    }

    /// Runs `f` over the bytes of page `no`.
    pub fn with_page<R>(
        &self,
        no: PageNo,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StoreError> {
        let mut shard = lock_shard(self.shard_for(no));
        let idx = self.fetch(&mut shard, no)?;
        Ok(f(&shard.frames[idx].data))
    }

    /// Runs `f` over the bytes of page `no`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        no: PageNo,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StoreError> {
        let mut shard = lock_shard(self.shard_for(no));
        let idx = self.fetch(&mut shard, no)?;
        shard.frames[idx].dirty = true;
        Ok(f(&mut shard.frames[idx].data))
    }

    /// Appends a fresh zeroed page and caches it, returning its number.
    pub fn allocate(&self) -> Result<PageNo, StoreError> {
        let no = self.write_store().allocate()?;
        let mut shard = lock_shard(self.shard_for(no));
        let clock = shard.bump_clock();
        self.install(
            &mut shard,
            Frame {
                page_no: no,
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                last_used: clock,
            },
        )?;
        Ok(no)
    }

    /// Writes back every dirty frame, in global page order, then syncs.
    ///
    /// The shard guards are dropped before the fsync: `sync` can stall
    /// for milliseconds, and nothing in it touches the frames — holding
    /// every shard across it would block all page traffic for the fsync
    /// duration. The sync still covers every write-back because the
    /// store writes happened before the guards were released.
    pub fn flush_all(&self) -> Result<(), StoreError> {
        {
            let mut guards: Vec<_> = self.shards.iter().map(lock_shard).collect();
            self.flush_locked(&mut guards)?;
        }
        self.write_store().sync()
    }

    /// Flushes and then empties the cache — the next access pattern is
    /// fully cold. Resets the sequential-read tracker too.
    ///
    /// Like [`BufferPool::flush_all`], the fsync runs after the shard
    /// guards are dropped. Clearing the frames before the sync is safe:
    /// a re-fetch in the window reads the store's already-written (if
    /// not yet durable) bytes, which is exactly what it would have read
    /// from the frame.
    pub fn clear_cache(&self) -> Result<(), StoreError> {
        {
            let mut guards: Vec<_> = self.shards.iter().map(lock_shard).collect();
            self.flush_locked(&mut guards)?;
            for shard in guards.iter_mut() {
                shard.frames.clear();
                shard.map.clear();
            }
        }
        self.write_store().sync()?;
        self.last_physical.store(NO_LAST, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zeroes the traffic counters (keeps cache contents).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.last_physical.store(NO_LAST, Ordering::Relaxed);
    }

    /// Writes back every dirty frame across already-locked shards.
    ///
    /// Write-back happens in ascending page order: a real engine would
    /// schedule it that way, and it keeps `physical_writes` and on-disk
    /// write counters deterministic regardless of shard/map iteration
    /// order.
    fn flush_locked(&self, guards: &mut [MutexGuard<'_, Shard>]) -> Result<(), StoreError> {
        let mut dirty: Vec<(PageNo, usize, usize)> = Vec::new();
        for (si, shard) in guards.iter().enumerate() {
            for (fi, frame) in shard.frames.iter().enumerate() {
                if frame.dirty {
                    dirty.push((frame.page_no, si, fi));
                }
            }
        }
        dirty.sort_unstable_by_key(|&(no, _, _)| no);
        for (_, si, fi) in dirty {
            self.write_back(&mut guards[si].frames[fi])?;
        }
        Ok(())
    }

    /// Stamps the frame's checksum footer and writes it to the store.
    ///
    /// Works on a borrowed frame, so no 4 KiB copy is made on the
    /// write-back path.
    fn write_back(&self, frame: &mut Frame) -> Result<(), StoreError> {
        stamp_page(&mut frame.data);
        self.write_store()
            .write_page(frame.page_no, &frame.data[..])?;
        frame.dirty = false;
        self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Records one successful physical read of `no` and classifies it as
    /// sequential or random against the previous physical read.
    fn note_physical_read(&self, no: PageNo) {
        self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        let prev = self.last_physical.swap(no as u64, Ordering::Relaxed);
        if prev != NO_LAST && no as u64 == prev.wrapping_add(1) {
            self.stats.sequential_reads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.random_reads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads page `no` from the store, retrying [`StoreError::Transient`]
    /// faults under the pool's [`RetryPolicy`].
    ///
    /// Each absorbed fault bumps `retried_reads`; exhausting the budget
    /// bumps `gaveup_reads` and propagates the final transient error so
    /// the caller still sees the root cause. Non-transient errors
    /// propagate immediately without touching either counter.
    fn read_page_with_retry(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        let policy = self.retry_policy();
        let mut attempt: u32 = 0;
        loop {
            match self.read_store().read_page(no, buf) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempt += 1;
                    self.stats.retried_reads.fetch_add(1, Ordering::Relaxed);
                    let pause = policy.backoff_before(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => {
                    if e.is_transient() {
                        self.stats.gaveup_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Returns the frame index of page `no` in `shard`, reading it from
    /// the store on a miss.
    ///
    /// Accounting happens only after the read and checksum verification
    /// succeed: a failed read produced no page, so it must not move the
    /// physical counters or the sequential-read tracker (the cost model
    /// would otherwise drift under fault injection).
    fn fetch(&self, shard: &mut Shard, no: PageNo) -> Result<usize, StoreError> {
        if let Some(&idx) = shard.map.get(&no) {
            self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
            let clock = shard.bump_clock();
            shard.frames[idx].last_used = clock;
            return Ok(idx);
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.read_page_with_retry(no, &mut data[..])?;
        verify_page(&data).map_err(|detail| StoreError::Corrupt { page: no, detail })?;
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.note_physical_read(no);
        let clock = shard.bump_clock();
        self.install(
            shard,
            Frame {
                page_no: no,
                data,
                dirty: false,
                last_used: clock,
            },
        )
    }

    /// Installs `frame` into `shard`, evicting its LRU victim if the shard
    /// is at capacity.
    fn install(&self, shard: &mut Shard, frame: Frame) -> Result<usize, StoreError> {
        if shard.frames.len() < self.shard_capacity {
            let idx = shard.frames.len();
            shard.map.insert(frame.page_no, idx);
            shard.frames.push(frame);
            return Ok(idx);
        }
        let Some(victim) = (0..shard.frames.len()).min_by_key(|&i| shard.frames[i].last_used)
        else {
            // Only reachable with a zero-capacity shard — misconfiguration,
            // not data loss; report it instead of panicking.
            return Err(StoreError::Io(std::io::Error::other(
                "buffer pool shard has zero capacity",
            )));
        };
        if shard.frames[victim].dirty {
            self.write_back(&mut shard.frames[victim])?;
        }
        shard.map.remove(&shard.frames[victim].page_no);
        shard.map.insert(frame.page_no, victim);
        shard.frames[victim] = frame;
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::test_util::{FlakyStore, READ_FAILURE};

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pool = BufferPool::new(Box::new(MemStore::new()), capacity);
        for _ in 0..pages {
            pool.allocate().unwrap();
        }
        pool.reset_stats();
        pool
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(2, 3);
        p.clear_cache().unwrap();
        p.reset_stats();
        p.with_page(0, |_| ()).unwrap(); // miss
        p.with_page(0, |_| ()).unwrap(); // hit
        p.with_page(1, |_| ()).unwrap(); // miss (sequential after 0)
        let s = p.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.sequential_reads, 1);
        assert_eq!(s.random_reads, 1);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(1, 3);
        p.with_page_mut(0, |d| d[0] = 11).unwrap();
        p.with_page_mut(1, |d| d[0] = 22).unwrap(); // evicts page 0
        p.with_page_mut(2, |d| d[0] = 33).unwrap(); // evicts page 1
        assert_eq!(p.with_page(0, |d| d[0]).unwrap(), 11);
        assert_eq!(p.with_page(1, |d| d[0]).unwrap(), 22);
        assert_eq!(p.with_page(2, |d| d[0]).unwrap(), 33);
        assert!(p.stats().physical_writes >= 2, "evictions wrote back");
    }

    #[test]
    fn lru_keeps_hot_page() {
        let p = pool(2, 3);
        p.clear_cache().unwrap();
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap();
        p.with_page(0, |_| ()).unwrap(); // 0 now hotter than 1
        p.reset_stats();
        p.with_page(2, |_| ()).unwrap(); // should evict 1, not 0
        p.with_page(0, |_| ()).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.physical_reads, 1, "page 0 stayed resident");
    }

    #[test]
    fn clear_cache_makes_cold() {
        let p = pool(8, 4);
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        p.reset_stats();
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        assert_eq!(p.stats().physical_reads, 0, "warm pass all hits");
        p.clear_cache().unwrap();
        p.reset_stats();
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 4, "cold pass all misses");
        assert_eq!(s.sequential_reads, 3);
        assert_eq!(s.random_reads, 1, "first read after cold start seeks");
    }

    /// A store whose `sync` parks until the test says go, recording
    /// whether it gave up waiting — proves the pool drops its shard
    /// guards before the fsync (an fsync stall must not block cached
    /// page traffic).
    struct GateSyncStore {
        inner: MemStore,
        entered: std::sync::Arc<(Mutex<bool>, std::sync::Condvar)>,
        release: std::sync::Arc<(Mutex<bool>, std::sync::Condvar)>,
        timed_out: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl PageStore for GateSyncStore {
        fn page_count(&self) -> PageNo {
            self.inner.page_count()
        }
        fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
            self.inner.read_page(no, buf)
        }
        fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
            self.inner.write_page(no, buf)
        }
        fn allocate(&mut self) -> Result<PageNo, StoreError> {
            self.inner.allocate()
        }
        fn sync(&mut self) -> Result<(), StoreError> {
            let (m, cv) = &*self.entered;
            *m.lock().unwrap() = true;
            cv.notify_all();
            let (m, cv) = &*self.release;
            let mut go = m.lock().unwrap();
            while !*go {
                let (g, t) = cv
                    .wait_timeout(go, std::time::Duration::from_secs(10))
                    .unwrap();
                go = g;
                if t.timed_out() {
                    self.timed_out.store(true, Ordering::SeqCst);
                    break;
                }
            }
            Ok(())
        }
    }

    #[test]
    fn flush_all_releases_shards_before_sync() {
        use std::sync::{atomic::AtomicBool, Arc, Condvar};
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let timed_out = Arc::new(AtomicBool::new(false));
        let store = GateSyncStore {
            inner: MemStore::new(),
            entered: entered.clone(),
            release: release.clone(),
            timed_out: timed_out.clone(),
        };
        let p = Arc::new(BufferPool::new(Box::new(store), 8));
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[0] = 7).unwrap();

        let flusher = {
            let p = p.clone();
            std::thread::spawn(move || p.flush_all())
        };
        // Wait for the fsync to begin (it parks inside the store).
        {
            let (m, cv) = &*entered;
            let mut e = m.lock().unwrap();
            while !*e {
                e = cv
                    .wait_timeout(e, std::time::Duration::from_secs(10))
                    .unwrap()
                    .0;
            }
        }
        // The fsync is parked and still holds the store lock; a cached
        // read needs only its shard mutex, which flush_all must have
        // released. If flush_all still held the shards, this would block
        // until the store's wait times out — which the flag records.
        assert_eq!(p.with_page(no, |d| d[0]).unwrap(), 7);
        {
            let (m, cv) = &*release;
            *m.lock().unwrap() = true;
            cv.notify_all();
        }
        flusher.join().unwrap().unwrap();
        assert!(
            !timed_out.load(Ordering::SeqCst),
            "cached read had to wait for the fsync: shard guards were held across sync"
        );
    }

    #[test]
    fn flush_persists_to_store() {
        let store = Box::new(MemStore::new());
        let p = BufferPool::new(store, 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[7] = 99).unwrap();
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        assert_eq!(p.with_page(no, |d| d[7]).unwrap(), 99);
    }

    #[test]
    fn write_back_stamps_checksum_footers() {
        use crate::page::{page_write_counter, verify_page};
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let path = scratch_path("pool_stamps");
        let p = BufferPool::new(Box::new(FileStore::create(&path).unwrap()), 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[123] = 0x5A).unwrap();
        p.flush_all().unwrap();
        let raw = std::fs::read(&path).unwrap();
        let img: &[u8; PAGE_SIZE] = raw[..PAGE_SIZE].try_into().unwrap();
        assert!(page_write_counter(img) >= 1, "flushed page must be stamped");
        verify_page(img).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_behind_the_pool_is_detected() {
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let path = scratch_path("pool_corrupt");
        let p = BufferPool::new(Box::new(FileStore::create(&path).unwrap()), 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[0..2].copy_from_slice(&[9, 9]))
            .unwrap();
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        // Flip one payload bit on disk, behind the pool's back.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let mut b = [0u8; 1];
            std::fs::File::open(&path)
                .unwrap()
                .read_exact_at(&mut b, 200)
                .unwrap();
            f.write_all_at(&[b[0] ^ 0x04], 200).unwrap();
        }
        let err = p.with_page(no, |_| ()).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { page: 0, .. }),
            "expected Corrupt, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_errors() {
        let p = pool(2, 1);
        assert!(p.with_page(5, |_| ()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(Box::new(MemStore::new()), 0);
    }

    #[test]
    fn sharding_kicks_in_for_large_pools_only() {
        assert_eq!(pool(2, 0).shard_count(), 1, "tiny pool keeps global LRU");
        assert_eq!(pool(63, 0).shard_count(), 1);
        assert_eq!(pool(128, 0).shard_count(), 2);
        assert_eq!(pool(2048, 0).shard_count(), 16, "paper's 8 MB pool");
        assert_eq!(pool(1 << 20, 0).shard_count(), MAX_SHARDS);
        // Striped capacity still covers the configured total.
        let p = pool(2048, 0);
        assert!(p.shard_capacity * p.shard_count() >= p.capacity());
    }

    /// Regression: physical-read counters and the sequential-read tracker
    /// must not move when the store read fails — the cost model replays
    /// these counters and a failed read transferred no page.
    #[test]
    fn failed_reads_are_not_counted() {
        let mut store = FlakyStore::new(u64::MAX);
        for _ in 0..3 {
            store.allocate().unwrap();
        }
        let budget = store.budget_handle();
        let p = BufferPool::new(Box::new(store), 2);
        p.with_page(0, |_| ()).unwrap();
        let before = p.stats();
        assert_eq!(
            (
                before.logical_reads,
                before.physical_reads,
                before.random_reads
            ),
            (1, 1, 1)
        );
        // Exhaust the read budget: the next miss fails inside read_page.
        budget.store(0, Ordering::Relaxed);
        let err = p.with_page(1, |_| ()).unwrap_err();
        assert!(err.to_string().contains(READ_FAILURE), "{err}");
        assert_eq!(p.stats(), before, "failed read moved no counter");
        // Restore the budget: page 1 now reads fine and counts as
        // sequential (page 0 remains the last *successful* physical read).
        budget.store(u64::MAX, Ordering::Relaxed);
        p.with_page(1, |_| ()).unwrap();
        let after = p.stats();
        assert_eq!(after.physical_reads, 2);
        assert_eq!(after.sequential_reads, 1);
        assert_eq!(after.random_reads, 1);
    }

    /// Transient faults within the retry budget are invisible to callers:
    /// every read succeeds, the absorbed faults show up in
    /// `retried_reads`, and the transfer counters match a fault-free run.
    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        use crate::test_util::{FaultConfig, FaultPlan};
        let mut store = FaultPlan::new(
            MemStore::new(),
            FaultConfig::seeded(42).with_transient(100, 3),
        );
        for _ in 0..8 {
            store.allocate().unwrap();
        }
        let planned: u64 = (0..8).map(|no| store.transient_burst(no)).sum();
        assert!(planned >= 8, "pct=100 schedules a burst on every page");
        let p = BufferPool::new(Box::new(store), 8);
        p.set_retry_policy(RetryPolicy {
            max_retries: 3,
            base_backoff_us: 0,
            ..RetryPolicy::default()
        });
        for no in 0..8 {
            p.with_page(no, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 8);
        assert_eq!(s.retried_reads, planned, "each burst fault was retried");
        assert_eq!(s.gaveup_reads, 0);
    }

    /// A burst longer than the retry budget propagates the transient error
    /// — and only the retry/giveup counters move, never the transfer
    /// counters (a failed read transferred no page).
    #[test]
    fn retry_exhaustion_propagates_the_transient_cause() {
        use crate::test_util::{FaultConfig, FaultPlan};
        let mut store = FaultPlan::new(
            MemStore::new(),
            FaultConfig::seeded(42).with_transient(100, 3),
        );
        for _ in 0..16 {
            store.allocate().unwrap();
        }
        let victim = (0..16).find(|&no| store.transient_burst(no) >= 2).unwrap();
        let burst = store.transient_burst(victim);
        let p = BufferPool::new(Box::new(store), 4);
        p.set_retry_policy(RetryPolicy {
            max_retries: burst as u32 - 1,
            base_backoff_us: 0,
            ..RetryPolicy::default()
        });
        let before = p.stats();
        let err = p.with_page(victim, |_| ()).unwrap_err();
        assert!(err.is_transient(), "the root cause survives: {err}");
        let s = p.stats();
        assert_eq!(s.retried_reads, burst - 1);
        assert_eq!(s.gaveup_reads, 1);
        assert_eq!(s.physical_reads, before.physical_reads);
        assert_eq!(s.logical_reads, before.logical_reads);
        // The burst is spent now; a bigger budget would also have worked —
        // the next access rides out nothing and succeeds.
        p.with_page(victim, |_| ()).unwrap();
        assert_eq!(p.stats().physical_reads, 1);
    }

    /// Retry policies are deterministic: the backoff schedule is a pure
    /// function of the attempt number (and the jitter seed).
    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_us: 50,
            max_backoff_us: 5_000,
            jitter_seed: 0,
        };
        assert_eq!(p.backoff_before(1).as_micros(), 50);
        assert_eq!(p.backoff_before(2).as_micros(), 100);
        assert_eq!(p.backoff_before(3).as_micros(), 200);
        assert_eq!(RetryPolicy::none().max_retries, 0);
        assert!(RetryPolicy::none().backoff_before(1).is_zero());
    }

    /// The exponential schedule saturates at `max_backoff_us` instead of
    /// doubling without bound, and `0` means uncapped.
    #[test]
    fn retry_policy_backoff_is_capped() {
        let p = RetryPolicy {
            max_retries: 20,
            base_backoff_us: 50,
            max_backoff_us: 400,
            jitter_seed: 0,
        };
        assert_eq!(p.backoff_before(3).as_micros(), 200);
        assert_eq!(p.backoff_before(4).as_micros(), 400, "first capped step");
        assert_eq!(p.backoff_before(16).as_micros(), 400, "stays capped");
        let uncapped = RetryPolicy {
            max_backoff_us: 0,
            ..p
        };
        assert_eq!(uncapped.backoff_before(10).as_micros(), 25_600);
        // Overflow-safe far past any realistic attempt count.
        assert!(uncapped.backoff_before(200).as_micros() > 0);
    }

    /// Jitter is deterministic per (seed, attempt), bounded by a quarter
    /// of the capped backoff, and absent when the seed is zero.
    #[test]
    fn retry_policy_jitter_is_seeded_and_bounded() {
        let base = RetryPolicy {
            max_retries: 8,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            jitter_seed: 0,
        };
        let a = base.with_jitter_seed(0xC0FFEE);
        let b = base.with_jitter_seed(0xC0FFEE);
        let c = base.with_jitter_seed(17);
        let mut diverged = false;
        for attempt in 1..=8 {
            let bare = base.backoff_before(attempt).as_micros();
            let ja = a.backoff_before(attempt).as_micros();
            assert_eq!(
                ja,
                b.backoff_before(attempt).as_micros(),
                "same seed, same sleep"
            );
            assert!(ja >= bare, "jitter only adds");
            assert!(ja <= bare + bare / 4, "jitter bounded by a quarter");
            if ja != c.backoff_before(attempt).as_micros() {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must decorrelate somewhere");
    }

    /// Regression against the seeded chaos store: a capped, jittered
    /// policy absorbs exactly the same planned fault bursts as the bare
    /// exponential one — the schedule shapes only the sleeps, never the
    /// attempt sequence — and the counters stay byte-identical.
    #[test]
    fn jittered_policy_matches_bare_policy_under_seeded_faults() {
        use crate::test_util::{FaultConfig, FaultPlan};
        let mut runs = Vec::new();
        for seed in [0u64, 0x5EED] {
            let mut store = FaultPlan::new(
                MemStore::new(),
                FaultConfig::seeded(31337).with_transient(100, 3),
            );
            for _ in 0..8 {
                store.allocate().unwrap();
            }
            let planned: u64 = (0..8).map(|no| store.transient_burst(no)).sum();
            let p = BufferPool::new(Box::new(store), 8);
            p.set_retry_policy(RetryPolicy {
                max_retries: 3,
                base_backoff_us: 1,
                max_backoff_us: 2,
                jitter_seed: seed,
            });
            for no in 0..8 {
                p.with_page(no, |_| ()).unwrap();
            }
            let s = p.stats();
            assert_eq!(s.retried_reads, planned, "seed {seed}");
            assert_eq!(s.gaveup_reads, 0, "seed {seed}");
            runs.push(s);
        }
        assert_eq!(runs[0], runs[1], "jitter changes sleeps, not outcomes");
    }

    /// Eight threads hammer a sharded pool with reads and dirty writes,
    /// forcing constant eviction; contents and counter totals must come out
    /// exact, and every page must still verify its checksum.
    #[test]
    fn concurrent_access_is_exact() {
        const THREADS: u64 = 8;
        const PAGES: u32 = 256;
        const ROUNDS: u64 = 50;
        // Capacity 128 over 256 pages: every round evicts.
        let store = {
            let mut s = MemStore::new();
            for _ in 0..PAGES {
                s.allocate().unwrap();
            }
            Box::new(s)
        };
        let p = BufferPool::new(store, 128);
        assert!(p.shard_count() > 1, "test must exercise real striping");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let p = &p;
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        // Each thread owns a disjoint page set: no data races
                        // on content, full contention on shards and store.
                        let base = (t as u32) * (PAGES / THREADS as u32);
                        for i in 0..PAGES / THREADS as u32 {
                            let no = base + i;
                            p.with_page_mut(no, |d| {
                                d[0] = t as u8;
                                d[1] = d[1].wrapping_add(1);
                            })
                            .unwrap();
                            let owner = p.with_page(no, |d| d[0]).unwrap();
                            assert_eq!(owner, t as u8, "round {r}");
                        }
                    }
                });
            }
        });
        // Totals: every access above was counted exactly once.
        let s = p.stats();
        let accesses = THREADS * ROUNDS * (PAGES as u64 / THREADS) * 2;
        assert_eq!(s.logical_reads, accesses);
        assert_eq!(s.sequential_reads + s.random_reads, s.physical_reads);
        assert!(
            s.physical_reads >= PAGES as u64,
            "evictions forced re-reads"
        );
        // Every page write-counter advanced and every checksum verifies.
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        for no in 0..PAGES {
            let (owner, rounds) = p.with_page(no, |d| (d[0], d[1])).unwrap();
            assert_eq!(owner as u64, no as u64 / (PAGES as u64 / THREADS));
            assert_eq!(rounds as u64, ROUNDS);
        }
    }
}
