//! Buffer pool with LRU replacement and I/O accounting.
//!
//! The paper reports cold and warm timings (§2.4: 8 MB inter-transaction
//! buffer, 1 MB intra-transaction buffer on AODB). We reproduce the
//! distinction with an explicit pool: *cold* runs call
//! [`BufferPool::clear_cache`] first, *warm* runs reuse resident frames.
//! Every physical read is classified as sequential (page follows the
//! previously read page) or random, which feeds the deterministic cost
//! model in [`crate::cost`].
//!
//! The pool is also the durability checkpoint: every write-back stamps the
//! page's checksum footer ([`crate::page::stamp_page`]) and every physical
//! read verifies it, so torn writes and bit flips surface as
//! [`StoreError::Corrupt`] instead of silently wrong query answers.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::page::{stamp_page, verify_page, PAGE_SIZE};
use crate::store::{PageNo, PageStore, StoreError};

/// Counters describing pool traffic since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Page requests that missed the pool and hit the store.
    pub physical_reads: u64,
    /// Physical reads whose page number was `last + 1`.
    pub sequential_reads: u64,
    /// Physical reads that required a seek (not `last + 1`).
    pub random_reads: u64,
    /// Dirty pages written back to the store.
    pub physical_writes: u64,
}

impl IoStats {
    /// Hit ratio in `[0, 1]`; `1.0` when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }
}

struct Frame {
    page_no: PageNo,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    store: Box<dyn PageStore>,
    frames: Vec<Frame>,
    map: HashMap<PageNo, usize>,
    clock: u64,
    stats: IoStats,
    last_physical: Option<PageNo>,
}

/// A fixed-capacity page cache over a [`PageStore`].
///
/// Access goes through closures ([`BufferPool::with_page`] /
/// [`with_page_mut`](BufferPool::with_page_mut)) so frames never escape the
/// pool lock; this keeps the API misuse-proof without pin bookkeeping.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool over `store` holding at most `capacity` pages.
    ///
    /// The paper's configuration (8 MB buffer, 4 KiB pages) corresponds to
    /// `capacity = 2048`.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            inner: Mutex::new(Inner {
                store,
                frames: Vec::new(),
                map: HashMap::new(),
                clock: 0,
                stats: IoStats::default(),
                last_physical: None,
            }),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> PageNo {
        self.inner.lock().store.page_count()
    }

    /// Runs `f` over the bytes of page `no`.
    pub fn with_page<R>(
        &self,
        no: PageNo,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StoreError> {
        let mut inner = self.inner.lock();
        let idx = inner.fetch(no, self.capacity)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Runs `f` over the bytes of page `no`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        no: PageNo,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R, StoreError> {
        let mut inner = self.inner.lock();
        let idx = inner.fetch(no, self.capacity)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Appends a fresh zeroed page and caches it, returning its number.
    pub fn allocate(&self) -> Result<PageNo, StoreError> {
        let mut inner = self.inner.lock();
        let no = inner.store.allocate()?;
        let clock = inner.bump_clock();
        inner.install(
            Frame {
                page_no: no,
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                last_used: clock,
            },
            self.capacity,
        )?;
        Ok(no)
    }

    /// Writes back every dirty frame.
    pub fn flush_all(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.flush_all()
    }

    /// Flushes and then empties the cache — the next access pattern is
    /// fully cold. Resets the sequential-read tracker too.
    pub fn clear_cache(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.flush_all()?;
        inner.frames.clear();
        inner.map.clear();
        inner.last_physical = None;
        Ok(())
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Zeroes the traffic counters (keeps cache contents).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = IoStats::default();
        inner.last_physical = None;
    }
}

impl Inner {
    fn bump_clock(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Stamps frame `idx`'s checksum footer and writes it to the store.
    fn write_back(&mut self, idx: usize) -> Result<(), StoreError> {
        stamp_page(&mut self.frames[idx].data);
        let no = self.frames[idx].page_no;
        let data = self.frames[idx].data.clone();
        self.store.write_page(no, &data[..])?;
        self.frames[idx].dirty = false;
        self.stats.physical_writes += 1;
        Ok(())
    }

    fn flush_all(&mut self) -> Result<(), StoreError> {
        // Write back in page order: a real engine would too, and it keeps
        // physical_writes deterministic across hash-map iteration orders.
        let mut dirty: Vec<usize> = (0..self.frames.len())
            .filter(|&i| self.frames[i].dirty)
            .collect();
        dirty.sort_by_key(|&i| self.frames[i].page_no);
        for i in dirty {
            self.write_back(i)?;
        }
        self.store.sync()
    }

    fn fetch(&mut self, no: PageNo, capacity: usize) -> Result<usize, StoreError> {
        self.stats.logical_reads += 1;
        if let Some(&idx) = self.map.get(&no) {
            let clock = self.bump_clock();
            self.frames[idx].last_used = clock;
            return Ok(idx);
        }
        self.stats.physical_reads += 1;
        match self.last_physical {
            Some(last) if no == last + 1 => self.stats.sequential_reads += 1,
            _ => self.stats.random_reads += 1,
        }
        self.last_physical = Some(no);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.store.read_page(no, &mut data[..])?;
        verify_page(&data).map_err(|detail| StoreError::Corrupt { page: no, detail })?;
        let clock = self.bump_clock();
        self.install(
            Frame { page_no: no, data, dirty: false, last_used: clock },
            capacity,
        )
    }

    fn install(&mut self, frame: Frame, capacity: usize) -> Result<usize, StoreError> {
        if self.frames.len() < capacity {
            let idx = self.frames.len();
            self.map.insert(frame.page_no, idx);
            self.frames.push(frame);
            return Ok(idx);
        }
        // Evict the least-recently-used frame.
        let victim = (0..self.frames.len())
            .min_by_key(|&i| self.frames[i].last_used)
            .expect("capacity > 0");
        if self.frames[victim].dirty {
            self.write_back(victim)?;
        }
        self.map.remove(&self.frames[victim].page_no);
        self.map.insert(frame.page_no, victim);
        self.frames[victim] = frame;
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pool = BufferPool::new(Box::new(MemStore::new()), capacity);
        for _ in 0..pages {
            pool.allocate().unwrap();
        }
        pool.reset_stats();
        pool
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(2, 3);
        p.clear_cache().unwrap();
        p.reset_stats();
        p.with_page(0, |_| ()).unwrap(); // miss
        p.with_page(0, |_| ()).unwrap(); // hit
        p.with_page(1, |_| ()).unwrap(); // miss (sequential after 0)
        let s = p.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.sequential_reads, 1);
        assert_eq!(s.random_reads, 1);
        assert!((s.hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(1, 3);
        p.with_page_mut(0, |d| d[0] = 11).unwrap();
        p.with_page_mut(1, |d| d[0] = 22).unwrap(); // evicts page 0
        p.with_page_mut(2, |d| d[0] = 33).unwrap(); // evicts page 1
        assert_eq!(p.with_page(0, |d| d[0]).unwrap(), 11);
        assert_eq!(p.with_page(1, |d| d[0]).unwrap(), 22);
        assert_eq!(p.with_page(2, |d| d[0]).unwrap(), 33);
        assert!(p.stats().physical_writes >= 2, "evictions wrote back");
    }

    #[test]
    fn lru_keeps_hot_page() {
        let p = pool(2, 3);
        p.clear_cache().unwrap();
        p.with_page(0, |_| ()).unwrap();
        p.with_page(1, |_| ()).unwrap();
        p.with_page(0, |_| ()).unwrap(); // 0 now hotter than 1
        p.reset_stats();
        p.with_page(2, |_| ()).unwrap(); // should evict 1, not 0
        p.with_page(0, |_| ()).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.physical_reads, 1, "page 0 stayed resident");
    }

    #[test]
    fn clear_cache_makes_cold() {
        let p = pool(8, 4);
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        p.reset_stats();
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        assert_eq!(p.stats().physical_reads, 0, "warm pass all hits");
        p.clear_cache().unwrap();
        p.reset_stats();
        for i in 0..4 {
            p.with_page(i, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 4, "cold pass all misses");
        assert_eq!(s.sequential_reads, 3);
        assert_eq!(s.random_reads, 1, "first read after cold start seeks");
    }

    #[test]
    fn flush_persists_to_store() {
        let store = Box::new(MemStore::new());
        let p = BufferPool::new(store, 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[7] = 99).unwrap();
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        assert_eq!(p.with_page(no, |d| d[7]).unwrap(), 99);
    }

    #[test]
    fn write_back_stamps_checksum_footers() {
        use crate::page::{page_write_counter, verify_page};
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let path = scratch_path("pool_stamps");
        let p = BufferPool::new(Box::new(FileStore::create(&path).unwrap()), 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[123] = 0x5A).unwrap();
        p.flush_all().unwrap();
        let raw = std::fs::read(&path).unwrap();
        let img: &[u8; PAGE_SIZE] = raw[..PAGE_SIZE].try_into().unwrap();
        assert!(page_write_counter(img) >= 1, "flushed page must be stamped");
        verify_page(img).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_behind_the_pool_is_detected() {
        use crate::store::FileStore;
        use crate::test_util::scratch_path;
        let path = scratch_path("pool_corrupt");
        let p = BufferPool::new(Box::new(FileStore::create(&path).unwrap()), 4);
        let no = p.allocate().unwrap();
        p.with_page_mut(no, |d| d[0..2].copy_from_slice(&[9, 9])).unwrap();
        p.flush_all().unwrap();
        p.clear_cache().unwrap();
        // Flip one payload bit on disk, behind the pool's back.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let mut b = [0u8; 1];
            std::fs::File::open(&path).unwrap().read_exact_at(&mut b, 200).unwrap();
            f.write_all_at(&[b[0] ^ 0x04], 200).unwrap();
        }
        let err = p.with_page(no, |_| ()).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { page: 0, .. }),
            "expected Corrupt, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_errors() {
        let p = pool(2, 1);
        assert!(p.with_page(5, |_| ()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(Box::new(MemStore::new()), 0);
    }
}
