//! Slotted 4 KiB pages.
//!
//! The paper assumes "a bucket corresponds to a 4K-page" in its space
//! arithmetic (§2.1), so pages here are fixed at [`PAGE_SIZE`] bytes with a
//! classic slotted layout:
//!
//! ```text
//! +--------+-----------------+ .... +----------------+
//! | header | slot directory →|      |← tuple images  |
//! +--------+-----------------+ .... +----------------+
//! ```
//!
//! The slot directory grows upward from the header, tuple images grow
//! downward from the end of the *payload region*. Deleting a tuple leaves a
//! tombstone slot (`len == 0`), so slot ids stay stable — SMA maintenance
//! relies on tuples not moving between buckets.
//!
//! The last [`PAGE_FOOTER_LEN`] bytes of every page are reserved for a
//! durability footer the buffer pool maintains on write-back:
//!
//! ```text
//! | write counter: u32 | crc32 over bytes [0, PAGE_SIZE-4): u32 |
//! ```
//!
//! The write counter is an LSN-style generation number (bumped on every
//! write-back); the CRC covers the payload *and* the counter, so a bit flip
//! anywhere in the page is detected on the next read ([`verify_page`]). A
//! page whose footer is all zeroes has never been stamped (freshly
//! allocated) and verifies trivially.

use std::fmt;

use crate::checksum::crc32;
use sma_types::bytes;

/// Narrows a page offset/length to the `u16` the slotted header stores.
/// Every caller passes a value `< PAGE_SIZE` (4096), so this is lossless;
/// the saturation is a defensive bound, never a wrap.
fn off16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Page size in bytes (fixed, as in the paper's space accounting).
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the end of every page for the checksum footer.
pub const PAGE_FOOTER_LEN: usize = 8;

/// End of the slotted payload region (tuple images live below this).
pub(crate) const PAYLOAD_END: usize = PAGE_SIZE - PAGE_FOOTER_LEN;

const HEADER_LEN: usize = 4; // n_slots: u16, free_end: u16
const SLOT_LEN: usize = 4; // offset: u16, len: u16

/// Largest tuple image an empty page can hold (payload minus header and
/// one slot entry).
pub const MAX_TUPLE_BYTES: usize = PAYLOAD_END - HEADER_LEN - SLOT_LEN;

const COUNTER_OFF: usize = PAGE_SIZE - 8;
const CRC_OFF: usize = PAGE_SIZE - 4;

/// The footer's write counter (0 = never stamped).
pub fn page_write_counter(buf: &[u8; PAGE_SIZE]) -> u32 {
    // COUNTER_OFF + 4 == PAGE_SIZE - 4, always in bounds for a full page.
    bytes::get_u32_le(buf.as_slice(), COUNTER_OFF).unwrap_or(0)
}

/// Bumps the write counter and recomputes the footer CRC. Called by the
/// buffer pool on every write-back so on-store images are self-verifying.
pub fn stamp_page(buf: &mut [u8; PAGE_SIZE]) {
    let counter = page_write_counter(buf).wrapping_add(1).max(1);
    buf[COUNTER_OFF..CRC_OFF].copy_from_slice(&counter.to_le_bytes());
    let crc = crc32(&buf[..CRC_OFF]);
    buf[CRC_OFF..].copy_from_slice(&crc.to_le_bytes());
}

/// Checks the footer CRC of a page image read from a store.
///
/// Returns `Err(detail)` on a mismatch. An all-zero footer means the page
/// was never written back through the pool (e.g. freshly allocated) and
/// passes: there is nothing durable to protect yet.
pub fn verify_page(buf: &[u8; PAGE_SIZE]) -> Result<(), String> {
    let counter = page_write_counter(buf);
    let stored = bytes::get_u32_le(buf.as_slice(), CRC_OFF).unwrap_or(0);
    if counter == 0 && stored == 0 {
        return Ok(());
    }
    let computed = crc32(&buf[..CRC_OFF]);
    if computed != stored {
        return Err(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
             (write counter {counter})"
        ));
    }
    Ok(())
}

/// Index of a slot within a page.
pub type SlotId = u16;

/// A fixed-size slotted page.
///
/// The page owns its bytes; the buffer pool hands out copies or closures
/// over these. All offsets are validated on access so a corrupted image
/// surfaces as a panic in debug and an error in [`SlottedPage::from_bytes`].
#[derive(Clone)]
pub struct SlottedPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlottedPage")
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// Creates an empty page.
    pub fn new() -> SlottedPage {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // free_end starts at the payload end (the footer is reserved).
        data[2..4].copy_from_slice(&off16(PAYLOAD_END).to_le_bytes());
        SlottedPage { data }
    }

    /// Wraps a raw page image, validating the header and slot directory.
    pub fn from_bytes(bytes: &[u8]) -> Result<SlottedPage, PageError> {
        if bytes.len() != PAGE_SIZE {
            return Err(PageError(format!("page image is {} bytes", bytes.len())));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        let page = SlottedPage { data };
        let n = page.slot_count();
        let free_end = page.free_end() as usize;
        if HEADER_LEN + usize::from(n) * SLOT_LEN > free_end || free_end > PAYLOAD_END {
            return Err(PageError(format!(
                "corrupt header: {n} slots, free_end {free_end}"
            )));
        }
        for s in 0..n {
            let (off, len) = page.slot(s);
            if len > 0 && (off as usize) < free_end {
                return Err(PageError(format!(
                    "slot {s} points into free space (off {off}, free_end {free_end})"
                )));
            }
            if off as usize + len as usize > PAYLOAD_END {
                return Err(PageError(format!("slot {s} overruns payload region")));
            }
        }
        Ok(page)
    }

    /// The raw page image.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    fn slot_count(&self) -> u16 {
        bytes::get_u16_le(self.data.as_slice(), 0).unwrap_or(0)
    }

    fn free_end(&self) -> u16 {
        bytes::get_u16_le(self.data.as_slice(), 2).unwrap_or(0)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn set_free_end(&mut self, e: u16) {
        self.data[2..4].copy_from_slice(&e.to_le_bytes());
    }

    fn slot(&self, id: SlotId) -> (u16, u16) {
        let base = HEADER_LEN + id as usize * SLOT_LEN;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot(&mut self, id: SlotId, off: u16, len: u16) {
        let base = HEADER_LEN + id as usize * SLOT_LEN;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of slots ever allocated (including tombstones).
    pub fn slots(&self) -> u16 {
        self.slot_count()
    }

    /// Number of live (non-deleted) tuples.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot(s).1 > 0)
            .count()
    }

    /// Bytes available for one more insert (accounting for its slot entry).
    pub fn free_space(&self) -> usize {
        let used_top = HEADER_LEN + self.slot_count() as usize * SLOT_LEN;
        (self.free_end() as usize)
            .saturating_sub(used_top)
            .saturating_sub(SLOT_LEN)
    }

    /// Inserts a tuple image, returning its slot, or `None` if it does not fit.
    pub fn insert(&mut self, image: &[u8]) -> Option<SlotId> {
        if image.len() > self.free_space() || image.is_empty() {
            return None;
        }
        let id = self.slot_count();
        let new_end = self.free_end() as usize - image.len();
        self.data[new_end..new_end + image.len()].copy_from_slice(image);
        self.set_slot(id, off16(new_end), off16(image.len()));
        self.set_slot_count(id + 1);
        self.set_free_end(off16(new_end));
        self.debug_validate("insert");
        Some(id)
    }

    /// Returns the tuple image in `slot`, or `None` for tombstones and
    /// out-of-range slots.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None;
        }
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Deletes the tuple in `slot` (tombstoning it). Returns whether a live
    /// tuple was removed. Space is not reclaimed until page rewrite —
    /// matching the append-mostly warehouse workload the paper targets.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.slot_count() || self.slot(slot).1 == 0 {
            return false;
        }
        let (off, _) = self.slot(slot);
        self.set_slot(slot, off, 0);
        true
    }

    /// Overwrites the tuple in `slot` if the new image has the same length
    /// (the common case for our fixed-width-heavy schema); otherwise
    /// tombstones and re-inserts, returning the new slot.
    pub fn update(&mut self, slot: SlotId, image: &[u8]) -> Option<SlotId> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None;
        }
        if len as usize == image.len() {
            self.data[off as usize..off as usize + image.len()].copy_from_slice(image);
            self.debug_validate("update");
            return Some(slot);
        }
        self.delete(slot);
        self.insert(image)
    }

    /// Iterates over `(slot, image)` for live tuples, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|img| (s, img)))
    }

    /// Bytes currently wasted by tombstoned tuples (reclaimable by
    /// [`SlottedPage::compact`]).
    pub fn dead_space(&self) -> usize {
        let live: usize = self.iter().map(|(_, img)| img.len()).sum();
        PAYLOAD_END - self.free_end() as usize - live
    }

    /// Rewrites the page in place, squeezing out tombstoned tuples' data
    /// while keeping every live tuple in its slot (slot ids are stable —
    /// SMA maintenance depends on that). Returns the bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.dead_space();
        if reclaimed == 0 {
            return 0;
        }
        let n = self.slot_count();
        let mut images: Vec<Option<Vec<u8>>> =
            (0..n).map(|s| self.get(s).map(<[u8]>::to_vec)).collect();
        let mut end = PAYLOAD_END;
        for (s, img) in (0..n).zip(images.drain(..)) {
            match img {
                Some(img) => {
                    end -= img.len();
                    self.data[end..end + img.len()].copy_from_slice(&img);
                    self.set_slot(s, off16(end), off16(img.len()));
                }
                None => self.set_slot(s, 0, 0),
            }
        }
        self.set_free_end(off16(end));
        self.debug_validate("compact");
        reclaimed
    }

    /// Verifies the slot directory's structural invariants: the header is
    /// in range, every live slot's image lies inside the used payload
    /// region, and no two live images overlap. [`SlottedPage::from_bytes`]
    /// runs a subset of this on entry; this full check is the debug-build
    /// postcondition of every mutation ([`SlottedPage::insert`],
    /// [`SlottedPage::update`], [`SlottedPage::compact`]).
    pub fn check_invariants(&self) -> Result<(), PageError> {
        let n = self.slot_count() as usize;
        let free_end = self.free_end() as usize;
        if HEADER_LEN + n * SLOT_LEN > free_end || free_end > PAYLOAD_END {
            return Err(PageError(format!(
                "corrupt header: {n} slots, free_end {free_end}"
            )));
        }
        let mut live: Vec<(usize, usize)> = Vec::new();
        for s in 0..self.slot_count() {
            let (off, len) = self.slot(s);
            let (off, len) = (off as usize, len as usize);
            if len == 0 {
                continue;
            }
            if off < free_end || off + len > PAYLOAD_END {
                return Err(PageError(format!(
                    "slot {s} image [{off}, {}) escapes the used region [{free_end}, {PAYLOAD_END})",
                    off + len
                )));
            }
            live.push((off, len));
        }
        live.sort_unstable();
        for pair in live.windows(2) {
            let &[(a_off, a_len), (b_off, _)] = pair else {
                continue;
            };
            if a_off + a_len > b_off {
                return Err(PageError(format!(
                    "overlapping tuple images at offsets {a_off} and {b_off}"
                )));
            }
        }
        Ok(())
    }

    /// Debug-build hook: asserts [`SlottedPage::check_invariants`] after a
    /// mutation. Compiles to nothing in release builds.
    fn debug_validate(&self, op: &str) {
        if cfg!(debug_assertions) {
            if let Err(e) = self.check_invariants() {
                debug_assert!(false, "slot directory corrupt after {op}: {e}");
            }
        }
    }
}

/// Visits every live tuple image of a raw page image in slot order,
/// **without** copying the page into an owned [`SlottedPage`] first.
///
/// Runs the same header and slot-directory validation as
/// [`SlottedPage::from_bytes`] before visiting, then calls
/// `f(slot, image)` with images borrowed straight from `buf` — this is
/// the zero-copy primitive behind the table layer's lending bucket
/// visitors. The error type is generic so callers can thread their own
/// error through the closure (`E: From<PageError>` covers the
/// validation failures raised here).
pub fn for_each_image<E, F>(buf: &[u8; PAGE_SIZE], mut f: F) -> Result<(), E>
where
    E: From<PageError>,
    F: FnMut(SlotId, &[u8]) -> Result<(), E>,
{
    let n = usize::from(bytes::get_u16_le(buf.as_slice(), 0).unwrap_or(0));
    let free_end = usize::from(bytes::get_u16_le(buf.as_slice(), 2).unwrap_or(0));
    if HEADER_LEN + n * SLOT_LEN > free_end || free_end > PAYLOAD_END {
        return Err(PageError(format!("corrupt header: {n} slots, free_end {free_end}")).into());
    }
    let slot = |s: usize| {
        let base = HEADER_LEN + s * SLOT_LEN;
        (
            u16::from_le_bytes([buf[base], buf[base + 1]]) as usize,
            u16::from_le_bytes([buf[base + 2], buf[base + 3]]) as usize,
        )
    };
    for s in 0..n {
        let (off, len) = slot(s);
        if len > 0 && off < free_end {
            return Err(PageError(format!(
                "slot {s} points into free space (off {off}, free_end {free_end})"
            ))
            .into());
        }
        if off + len > PAYLOAD_END {
            return Err(PageError(format!("slot {s} overruns payload region")).into());
        }
    }
    for s in 0..n {
        let (off, len) = slot(s);
        if len > 0 {
            f(s as SlotId, &buf[off..off + len])?;
        }
    }
    Ok(())
}

impl SlottedPage {
    /// Visits every live tuple image in slot order — the owned-page
    /// counterpart of the free function [`for_each_image`].
    pub fn for_each_image<E, F>(&self, f: F) -> Result<(), E>
    where
        E: From<PageError>,
        F: FnMut(SlotId, &[u8]) -> Result<(), E>,
    {
        for_each_image(&self.data, f)
    }
}

/// Error produced when validating a raw page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageError(pub String);

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page error: {}", self.0)
    }
}

impl std::error::Error for PageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_types::StdRng;

    #[test]
    fn insert_and_get() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new();
        let image = [7u8; 100];
        let mut n = 0;
        while p.insert(&image).is_some() {
            n += 1;
        }
        // 100 bytes payload + 4 bytes slot ≈ 39 tuples in 4084 usable bytes.
        assert!((38..=40).contains(&n), "unexpected fill count {n}");
        assert!(p.insert(&image).is_none());
        assert!(
            p.insert(&[1u8; 1]).is_some(),
            "small tuple should still fit"
        );
    }

    #[test]
    fn rejects_empty_and_oversized() {
        let mut p = SlottedPage::new();
        assert!(p.insert(&[]).is_none());
        assert!(p.insert(&[0u8; PAGE_SIZE]).is_none());
    }

    #[test]
    fn delete_tombstones() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"abc").unwrap();
        let b = p.insert(b"def").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete is a no-op");
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"def"[..]), "other slots unaffected");
        assert_eq!(p.live_count(), 1);
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn update_same_len_in_place() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"abc").unwrap();
        assert_eq!(p.update(a, b"xyz"), Some(a));
        assert_eq!(p.get(a), Some(&b"xyz"[..]));
    }

    #[test]
    fn update_different_len_moves() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"abc").unwrap();
        let b = p.update(a, b"longer image").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"longer image"[..]));
    }

    #[test]
    fn update_missing_slot() {
        let mut p = SlottedPage::new();
        assert_eq!(p.update(0, b"x"), None);
        let a = p.insert(b"abc").unwrap();
        p.delete(a);
        assert_eq!(p.update(a, b"x"), None, "tombstone not updatable");
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut p = SlottedPage::new();
        p.insert(b"abc");
        p.insert(b"defgh");
        let q = SlottedPage::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.get(0), Some(&b"abc"[..]));
        assert_eq!(q.get(1), Some(&b"defgh"[..]));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(SlottedPage::from_bytes(&[0u8; 17]).is_err());
        let mut garbage = [0xFFu8; PAGE_SIZE];
        garbage[0] = 200; // huge slot count with tiny free_end
        assert!(SlottedPage::from_bytes(&garbage).is_err());
    }

    #[test]
    fn compact_reclaims_dead_space() {
        let mut p = SlottedPage::new();
        let a = p.insert(&[1u8; 500]).unwrap();
        let b = p.insert(&[2u8; 500]).unwrap();
        let c = p.insert(&[3u8; 500]).unwrap();
        p.delete(b);
        assert_eq!(p.dead_space(), 500);
        let before_free = p.free_space();
        assert_eq!(p.compact(), 500);
        assert_eq!(p.dead_space(), 0);
        assert_eq!(p.free_space(), before_free + 500);
        // Live tuples keep their slots and contents.
        assert_eq!(p.get(a), Some(&[1u8; 500][..]));
        assert_eq!(p.get(b), None);
        assert_eq!(p.get(c), Some(&[3u8; 500][..]));
        // Reclaimed space is usable.
        assert!(p.insert(&[4u8; 900]).is_some());
        // Compacting a clean page is a no-op.
        assert_eq!(p.compact(), 0);
    }

    #[test]
    fn footer_stamp_and_verify() {
        let mut p = SlottedPage::new();
        p.insert(b"hello footer").unwrap();
        let mut img = *p.as_bytes();
        // Unstamped pages verify trivially.
        assert_eq!(page_write_counter(&img), 0);
        verify_page(&img).unwrap();
        stamp_page(&mut img);
        assert_eq!(page_write_counter(&img), 1);
        verify_page(&img).unwrap();
        stamp_page(&mut img);
        assert_eq!(page_write_counter(&img), 2, "counter is monotone");
        verify_page(&img).unwrap();
        // The stamped image still parses and the footer never collides
        // with tuple data.
        let q = SlottedPage::from_bytes(&img).unwrap();
        assert_eq!(q.get(0), Some(&b"hello footer"[..]));
    }

    #[test]
    fn footer_detects_any_single_bit_flip() {
        let mut p = SlottedPage::new();
        p.insert(&[0xA5u8; 64]).unwrap();
        let mut img = *p.as_bytes();
        stamp_page(&mut img);
        // Payload, header, counter, and crc flips are all caught.
        for bit in [
            3usize,
            8 * 2 + 1,
            8 * 4000,
            8 * (PAGE_SIZE - 8),
            8 * (PAGE_SIZE - 1) + 7,
        ] {
            img[bit / 8] ^= 1 << (bit % 8);
            assert!(verify_page(&img).is_err(), "bit {bit} flip undetected");
            img[bit / 8] ^= 1 << (bit % 8);
        }
        verify_page(&img).unwrap();
    }

    #[test]
    fn max_tuple_fits_exactly() {
        let mut p = SlottedPage::new();
        assert_eq!(p.free_space(), MAX_TUPLE_BYTES);
        assert!(p.insert(&[7u8; MAX_TUPLE_BYTES]).is_some());
        assert_eq!(p.free_space(), 0);
    }

    /// One random insert-or-delete op; inserts carry payloads up to
    /// `max_len` bytes of random content.
    fn random_op(rng: &mut StdRng, max_len: usize) -> Op {
        if rng.random_range(0u32..2) == 0 {
            let len = rng.random_range(1usize..max_len);
            Op::Insert((0..len).map(|_| rng.random_range(0u8..=u8::MAX)).collect())
        } else {
            Op::Delete(rng.random_range(0u16..64))
        }
    }

    #[test]
    fn compact_preserves_live_tuples() {
        let mut rng = StdRng::seed_from_u64(0x9A6E1);
        for _ in 0..128 {
            let mut page = SlottedPage::new();
            for _ in 0..rng.random_range(0usize..80) {
                match random_op(&mut rng, 150) {
                    Op::Insert(img) => {
                        page.insert(&img);
                    }
                    Op::Delete(s) => {
                        page.delete(s);
                    }
                }
            }
            let before: Vec<(u16, Vec<u8>)> =
                page.iter().map(|(s, img)| (s, img.to_vec())).collect();
            page.compact();
            let after: Vec<(u16, Vec<u8>)> =
                page.iter().map(|(s, img)| (s, img.to_vec())).collect();
            assert_eq!(before, after);
            assert_eq!(page.dead_space(), 0);
            // Survives serialization.
            SlottedPage::from_bytes(page.as_bytes()).unwrap();
        }
    }

    #[test]
    fn model_check() {
        let mut rng = StdRng::seed_from_u64(0x9A6E2);
        for _ in 0..128 {
            let mut page = SlottedPage::new();
            let mut model: Vec<Option<Vec<u8>>> = Vec::new();
            for _ in 0..rng.random_range(0usize..120) {
                match random_op(&mut rng, 200) {
                    Op::Insert(img) => {
                        if let Some(slot) = page.insert(&img) {
                            assert_eq!(slot as usize, model.len());
                            model.push(Some(img));
                        }
                    }
                    Op::Delete(s) => {
                        let expect = (s as usize) < model.len() && model[s as usize].is_some();
                        assert_eq!(page.delete(s), expect);
                        if expect {
                            model[s as usize] = None;
                        }
                    }
                }
            }
            for (i, m) in model.iter().enumerate() {
                assert_eq!(page.get(i as u16), m.as_deref());
            }
            assert_eq!(page.live_count(), model.iter().flatten().count());
            // Image survives serialization.
            let reread = SlottedPage::from_bytes(page.as_bytes()).unwrap();
            for (i, m) in model.iter().enumerate() {
                assert_eq!(reread.get(i as u16), m.as_deref());
            }
        }
    }

    #[test]
    fn for_each_image_matches_iter() {
        let mut rng = StdRng::seed_from_u64(0x9A6E3);
        for _ in 0..64 {
            let mut page = SlottedPage::new();
            for _ in 0..rng.random_range(0usize..80) {
                match random_op(&mut rng, 150) {
                    Op::Insert(img) => {
                        page.insert(&img);
                    }
                    Op::Delete(s) => {
                        page.delete(s);
                    }
                }
            }
            let owned: Vec<(u16, Vec<u8>)> =
                page.iter().map(|(s, img)| (s, img.to_vec())).collect();
            let mut visited = Vec::new();
            for_each_image::<PageError, _>(page.as_bytes(), |s, img| {
                visited.push((s, img.to_vec()));
                Ok(())
            })
            .unwrap();
            assert_eq!(visited, owned);
            let mut via_method = Vec::new();
            page.for_each_image::<PageError, _>(|s, img| {
                via_method.push((s, img.to_vec()));
                Ok(())
            })
            .unwrap();
            assert_eq!(via_method, owned);
        }
    }

    #[test]
    fn for_each_image_rejects_garbage_and_propagates_errors() {
        let mut garbage = [0xFFu8; PAGE_SIZE];
        garbage[0] = 200; // huge slot count with tiny free_end
        assert!(for_each_image::<PageError, _>(&garbage, |_, _| Ok(())).is_err());
        let mut p = SlottedPage::new();
        p.insert(b"abc");
        p.insert(b"def");
        let mut seen = 0;
        let r: Result<(), PageError> = for_each_image(p.as_bytes(), |_, _| {
            seen += 1;
            Err(PageError("stop".into()))
        });
        assert!(r.is_err());
        assert_eq!(seen, 1, "visit stops at the first closure error");
    }

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(u16),
    }
}
