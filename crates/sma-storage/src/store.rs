//! Page stores: where raw page images live.
//!
//! Two backends implement [`PageStore`]:
//!
//! * [`MemStore`] — pages in a `Vec`, for tests and deterministic benches;
//! * [`FileStore`] — pages in a real file via positioned reads/writes, so
//!   benchmark runs exercise genuine sequential vs. skipping I/O patterns
//!   (the paper's cold numbers come from disk-resident LINEITEM).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::page::PAGE_SIZE;

/// Index of a page within a store.
pub type PageNo = u32;

/// Error from a page store.
#[derive(Debug)]
pub enum StoreError {
    /// Requested page does not exist.
    OutOfRange {
        /// Requested page number.
        page: PageNo,
        /// Pages in the store.
        count: PageNo,
    },
    /// A page image failed its checksum — torn write or bit rot. The page
    /// number makes the damage locatable (and rebuildable for derived
    /// data like SMA-files).
    Corrupt {
        /// The page that failed verification.
        page: PageNo,
        /// What exactly mismatched.
        detail: String,
    },
    /// A read or write failed for a reason expected to clear on its own —
    /// a dropped connection, a momentary device hiccup, a kernel `EAGAIN`.
    /// The buffer pool retries these under its [`RetryPolicy`]
    /// (`crate::pool::RetryPolicy`); only after the budget is exhausted
    /// does the fault propagate, still tagged `Transient` so callers can
    /// distinguish "the disk blinked" from "the data is gone".
    Transient {
        /// The page whose I/O blinked.
        page: PageNo,
        /// What the device reported.
        detail: String,
    },
    /// Underlying I/O failed.
    Io(io::Error),
}

impl StoreError {
    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Only [`StoreError::Transient`] qualifies: out-of-range is a logic
    /// error, corruption is permanent until rebuilt, and a plain
    /// [`StoreError::Io`] is unclassified (a fault injector or device
    /// driver that *knows* the failure is momentary says so explicitly).
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfRange { page, count } => {
                write!(f, "page {page} out of range (store has {count} pages)")
            }
            StoreError::Corrupt { page, detail } => {
                write!(f, "page {page} corrupt: {detail}")
            }
            StoreError::Transient { page, detail } => {
                write!(f, "transient I/O fault on page {page}: {detail}")
            }
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Abstract storage for fixed-size page images.
pub trait PageStore: Send + Sync {
    /// Number of allocated pages.
    fn page_count(&self) -> PageNo;
    /// Reads page `no` into `buf` (must be `PAGE_SIZE` long).
    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError>;
    /// Writes page `no` from `buf` (must be `PAGE_SIZE` long).
    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError>;
    /// Appends a zeroed page, returning its number.
    fn allocate(&mut self) -> Result<PageNo, StoreError>;
    /// Flushes buffered writes to durable storage (no-op for memory).
    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// In-memory page store.
#[derive(Default, Clone)]
pub struct MemStore {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Total bytes currently stored (pages × page size).
    pub(crate) fn len_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Keeps only the first `offset` bytes of the linear page image, as if
    /// the kernel persisted a prefix before a crash: trailing whole pages
    /// disappear and the page containing `offset` is torn — its tail reads
    /// back as zeroes.
    pub(crate) fn retain_prefix(&mut self, offset: u64) {
        let full = (offset / PAGE_SIZE as u64) as usize;
        let torn = (offset % PAGE_SIZE as u64) as usize;
        self.pages.truncate(if torn > 0 { full + 1 } else { full });
        if torn > 0 {
            if let Some(last) = self.pages.last_mut() {
                last[torn..].fill(0);
            }
        }
    }
}

impl PageStore for MemStore {
    fn page_count(&self) -> PageNo {
        self.pages.len() as PageNo
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        let page = self.pages.get(no as usize).ok_or(StoreError::OutOfRange {
            page: no,
            count: self.page_count(),
        })?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        let count = self.page_count();
        let page = self
            .pages
            .get_mut(no as usize)
            .ok_or(StoreError::OutOfRange { page: no, count })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(self.pages.len() as PageNo - 1)
    }
}

/// File-backed page store using positioned I/O.
pub struct FileStore {
    file: File,
    path: PathBuf,
    pages: PageNo,
}

impl FileStore {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileStore {
            file,
            path,
            pages: 0,
        })
    }

    /// Opens an existing page file; its length must be a page multiple.
    pub fn open(path: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of {PAGE_SIZE}"),
            )));
        }
        Ok(FileStore {
            file,
            path,
            pages: (len / PAGE_SIZE as u64) as PageNo,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl PageStore for FileStore {
    fn page_count(&self) -> PageNo {
        self.pages
    }

    fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<(), StoreError> {
        if no >= self.pages {
            return Err(StoreError::OutOfRange {
                page: no,
                count: self.pages,
            });
        }
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, no as u64 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn write_page(&mut self, no: PageNo, buf: &[u8]) -> Result<(), StoreError> {
        if no >= self.pages {
            return Err(StoreError::OutOfRange {
                page: no,
                count: self.pages,
            });
        }
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, no as u64 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageNo, StoreError> {
        let no = self.pages;
        self.file
            .set_len((self.pages as u64 + 1) * PAGE_SIZE as u64)?;
        self.pages += 1;
        Ok(no)
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        // sync_all, not sync_data: `allocate` grows the file, and the new
        // length (metadata) must be durable before anything that records
        // page numbers (an SMA location, the warehouse catalog) commits.
        self.file.sync_all()?;
        Ok(())
    }
}

/// Fsyncs a directory so a preceding `rename` into it is durable.
///
/// The classic crash-atomicity recipe (write temp → fsync file → rename →
/// fsync directory) needs this last step on POSIX systems: the rename
/// itself lives in the directory inode.
pub fn sync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    File::open(dir.as_ref())?.sync_all()
}

/// Atomically replaces `path` with `bytes`.
///
/// Writes to `<path>.tmp`, fsyncs, renames over `path`, then fsyncs the
/// parent directory. A crash at any point leaves either the old complete
/// file or the new complete file — never a torn mixture (the `.tmp` may
/// leak, which is harmless).
pub fn atomic_write_file(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::scratch_path;

    fn exercise(store: &mut dyn PageStore) {
        assert_eq!(store.page_count(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut img = [0u8; PAGE_SIZE];
        img[0] = 0xAB;
        img[PAGE_SIZE - 1] = 0xCD;
        store.write_page(1, &img).unwrap();
        let mut back = [0xFFu8; PAGE_SIZE];
        store.read_page(1, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
        store.read_page(0, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0), "fresh page is zeroed");
        assert!(matches!(
            store.read_page(7, &mut back),
            Err(StoreError::OutOfRange { page: 7, count: 2 })
        ));
        assert!(store.write_page(7, &img).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn mem_store_basics() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_basics() {
        let path = scratch_path("filestore_basics");
        exercise(&mut FileStore::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_reopen() {
        let path = scratch_path("filestore_reopen");
        {
            let mut s = FileStore::create(&path).unwrap();
            s.allocate().unwrap();
            let mut img = [0u8; PAGE_SIZE];
            img[10] = 42;
            s.write_page(0, &img).unwrap();
            s.sync().unwrap();
        }
        let s = FileStore::open(&path).unwrap();
        assert_eq!(s.page_count(), 1);
        let mut back = [0u8; PAGE_SIZE];
        s.read_page(0, &mut back).unwrap();
        assert_eq!(back[10], 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = scratch_path("atomic_write");
        atomic_write_file(&path, b"first version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first version");
        atomic_write_file(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // The temp file does not linger after a successful commit.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_error_carries_page_number() {
        let e = StoreError::Corrupt {
            page: 42,
            detail: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("42") && msg.contains("checksum mismatch"),
            "{msg}"
        );
    }

    #[test]
    fn transient_is_the_only_retryable_class() {
        let t = StoreError::Transient {
            page: 9,
            detail: "device momentarily unavailable".into(),
        };
        assert!(t.is_transient());
        assert!(t.to_string().contains("page 9"), "{t}");
        for e in [
            StoreError::OutOfRange { page: 1, count: 0 },
            StoreError::Corrupt {
                page: 1,
                detail: "x".into(),
            },
            StoreError::Io(io::Error::other("unclassified")),
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn io_errors_chain_through_source() {
        use std::error::Error;
        let e = StoreError::Io(io::Error::other("disk on fire"));
        let src = e.source().expect("Io wraps a source");
        assert!(src.to_string().contains("disk on fire"));
        assert!(StoreError::Transient {
            page: 0,
            detail: String::new()
        }
        .source()
        .is_none());
    }

    #[test]
    fn file_store_rejects_ragged_file() {
        let path = scratch_path("filestore_ragged");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
