//! Paged storage engine for the SMA reproduction.
//!
//! Layers, bottom-up:
//!
//! * [`page`] — slotted 4 KiB pages,
//! * [`store`] — page stores ([`MemStore`], [`FileStore`]),
//! * [`pool`] — LRU buffer pool with I/O accounting (cold vs. warm),
//! * [`segment`] — layered read-only segments + copy-on-write overlay for
//!   incrementally-flushed tables,
//! * [`table`] — heap tables with positional *buckets*, the SMA granularity,
//! * [`cost`] — deterministic pricing of observed I/O patterns,
//! * [`wal`] / [`memtable`] — the durable streaming-ingest pair: an
//!   append-only CRC32-framed log and the volatile buffer it protects.
//!
//! The paper (§2.1) requires buckets to be "sets of consecutive tuples on
//! disk"; [`Table`] enforces this by appending strictly in physical order
//! and keeping updates on their page.
//!
//! Durability: every page carries a CRC32 + write-counter footer
//! ([`page::stamp_page`] / [`page::verify_page`]) maintained by the buffer
//! pool, so torn writes and bit flips surface as [`StoreError::Corrupt`];
//! [`store::atomic_write_file`] provides the write-temp → fsync → rename →
//! fsync-dir commit recipe used by SMA and catalog persistence.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod checksum;
pub mod columnar;
pub mod cost;
pub mod memtable;
pub mod page;
pub mod pool;
pub mod segment;
pub mod store;
pub mod table;
pub mod test_util;
pub mod wal;

pub use budget::{BudgetExceeded, QueryBudget};
pub use checksum::crc32;
pub use columnar::{ColumnarError, CHUNK_CAPACITY};
pub use cost::{CostModel, Stopwatch};
pub use memtable::{MemRow, Memtable};
pub use page::{SlotId, SlottedPage, MAX_TUPLE_BYTES, PAGE_FOOTER_LEN, PAGE_SIZE};
pub use pool::{BufferPool, IoStats, RetryPolicy};
pub use segment::SegmentedStore;
pub use store::{atomic_write_file, sync_dir, FileStore, MemStore, PageNo, PageStore, StoreError};
pub use table::{BucketNo, PageVerification, Table, TableError, TupleId};
pub use test_util::{FaultConfig, FaultPlan};
pub use wal::{make_wal_record, Wal, WalReplay};
