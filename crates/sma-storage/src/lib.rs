//! Paged storage engine for the SMA reproduction.
//!
//! Layers, bottom-up:
//!
//! * [`page`] — slotted 4 KiB pages,
//! * [`store`] — page stores ([`MemStore`], [`FileStore`]),
//! * [`pool`] — LRU buffer pool with I/O accounting (cold vs. warm),
//! * [`table`] — heap tables with positional *buckets*, the SMA granularity,
//! * [`cost`] — deterministic pricing of observed I/O patterns.
//!
//! The paper (§2.1) requires buckets to be "sets of consecutive tuples on
//! disk"; [`Table`] enforces this by appending strictly in physical order
//! and keeping updates on their page.

#![warn(missing_docs)]

pub mod cost;
pub mod page;
pub mod pool;
pub mod store;
pub mod table;
pub mod test_util;

pub use cost::CostModel;
pub use page::{SlotId, SlottedPage, PAGE_SIZE};
pub use pool::{BufferPool, IoStats};
pub use store::{FileStore, MemStore, PageNo, PageStore, StoreError};
pub use table::{BucketNo, Table, TableError, TupleId};
