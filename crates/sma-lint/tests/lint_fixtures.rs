//! One known-bad fixture per rule ID, asserting the exact diagnostic
//! (rule, file, line) each produces, plus the allowlist contract:
//! a justified directive suppresses, a bare one is itself a violation.

use sma_lint::{lint_source, Diagnostic};

/// Lints `src` as if it lived at `rel` and returns `(rule, line)` pairs.
fn fire(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_source(rel, src)
        .into_iter()
        .map(|d: Diagnostic| {
            assert_eq!(d.file, rel, "diagnostic carries the linted path");
            (d.rule, d.line)
        })
        .collect()
}

// --- L1: page discipline -------------------------------------------------

#[test]
fn l1_raw_page_access_outside_storage() {
    let src = "//! docs\n\
               use sma_storage::page::SlottedPage;\n\
               pub fn peek(buf: &[u8]) {\n\
               \tlet _ = SlottedPage::from_bytes(buf);\n\
               }\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![("L1-page-discipline", 2), ("L1-page-discipline", 4)]
    );
}

#[test]
fn l1_silent_inside_sma_storage() {
    let src = "pub fn peek(buf: &[u8]) { let _ = SlottedPage::from_bytes(buf); }\n";
    assert!(fire("crates/sma-storage/src/page_util.rs", src).is_empty());
}

// --- L2: codec byte fiddling ---------------------------------------------

#[test]
fn l2_le_bytes_outside_codec_home() {
    let src = "pub fn decode(b: [u8; 4]) -> u32 { u32::from_le_bytes(b) }\n";
    let got = fire("crates/sma-exec/src/rogue.rs", src);
    assert_eq!(got, vec![("L2-codec-bytes", 1)]);
}

#[test]
fn l2_silent_inside_codec_home() {
    let src = "pub fn decode(b: [u8; 4]) -> u32 { u32::from_le_bytes(b) }\n";
    assert!(fire("crates/sma-types/src/bytes.rs", src)
        .iter()
        .all(|(rule, _)| *rule != "L2-codec-bytes"));
}

// --- L3: sma-types upward dependencies -----------------------------------

#[test]
fn l3_types_naming_upper_layer() {
    let src = "//! docs\npub fn touch(t: &sma_storage::Table) { let _ = t; }\n";
    let got = fire("crates/sma-types/src/rogue.rs", src);
    assert_eq!(got, vec![("L3-type-deps", 2)]);
}

// --- P1 / P2 / P3: panic freedom -----------------------------------------

#[test]
fn p1_unwrap_in_library_code() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\tx.unwrap()\n}\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("P1-unwrap", 2)]);
}

#[test]
fn p2_expect_in_library_code() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\tx.expect(\"present\")\n}\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("P2-expect", 2)]);
}

#[test]
fn p3_panic_macro_in_library_code() {
    let src = "pub fn f() {\n\tpanic!(\"boom\");\n}\npub fn g() {\n\ttodo!()\n}\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("P3-panic", 2), ("P3-panic", 5)]);
}

#[test]
fn panic_rules_exempt_test_modules() {
    let src = "pub fn f() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \t#[test]\n\
               \tfn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
               }\n";
    assert!(fire("crates/sma-core/src/rogue.rs", src).is_empty());
}

#[test]
fn panic_rules_exempt_bench_and_bin_targets() {
    let src = "fn main() { Some(1).unwrap(); }\n";
    assert!(fire("crates/sma-bench/src/bin/tool.rs", src).is_empty());
    assert!(fire("benches/scan.rs", src).is_empty());
}

// --- P4: literal indexing in codec modules --------------------------------

#[test]
fn p4_literal_index_in_codec_module() {
    let src = "pub fn first(buf: &[u8]) -> u8 {\n\tbuf[0]\n}\n";
    let got = fire("crates/sma-storage/src/page.rs", src);
    assert_eq!(got, vec![("P4-literal-index", 2)]);
}

#[test]
fn p4_variable_index_is_fine() {
    let src = "pub fn at(buf: &[u8], base: usize) -> u8 {\n\tbuf[base + 1]\n}\n";
    assert!(fire("crates/sma-storage/src/page.rs", src).is_empty());
}

// --- D1: wall clock --------------------------------------------------------

#[test]
fn d1_instant_outside_cost_module() {
    let src = "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n";
    let got = fire("crates/sma-exec/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![
            ("D1-wall-clock", 1),
            ("D1-wall-clock", 2),
            ("D1-wall-clock", 2)
        ]
    );
}

#[test]
fn d1_silent_in_cost_module() {
    let src = "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n";
    assert!(fire("crates/sma-storage/src/cost.rs", src).is_empty());
}

// --- D2: hash-ordered iteration -------------------------------------------

#[test]
fn d2_hashmap_in_exec_path() {
    let src = "use std::collections::HashMap;\n\
               pub fn group() -> HashMap<u8, u8> { HashMap::new() }\n";
    let got = fire("crates/sma-exec/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![
            ("D2-ordered-iteration", 1),
            ("D2-ordered-iteration", 2),
            ("D2-ordered-iteration", 2)
        ]
    );
}

#[test]
fn d2_not_enforced_outside_exec_core() {
    let src = "use std::collections::HashMap;\npub fn g() -> HashMap<u8, u8> { HashMap::new() }\n";
    assert!(fire("crates/sma-tpcd/src/rogue.rs", src).is_empty());
}

// --- fsync confinement moved to the analysis pass --------------------------

#[test]
fn fsync_confinement_is_no_longer_a_token_rule() {
    // Token rule D3 (file-path fsync confinement) was replaced by
    // A4-fsync-confinement, a call-graph proof in `--analyze`: the lexical
    // pass no longer fires on raw sync tokens anywhere.
    let src = "pub fn persist(f: &std::fs::File) -> std::io::Result<()> {\n\
               \tf.sync_all()\n\
               }\n";
    assert!(fire("src/warehouse.rs", src).is_empty());
    assert!(fire("crates/sma-storage/src/wal.rs", src).is_empty());
    assert!(sma_lint::RULES
        .iter()
        .all(|r| r.id != "D3-fsync-confinement"));
    assert!(sma_lint::RULES
        .iter()
        .any(|r| r.id == "A4-fsync-confinement"));
}

// --- U1: crate headers ------------------------------------------------------

#[test]
fn u1_missing_crate_headers() {
    let src = "//! A crate.\npub fn f() {}\n";
    let got = fire("crates/sma-core/src/lib.rs", src);
    assert_eq!(got, vec![("U1-crate-header", 1), ("U1-crate-header", 1)]);
}

#[test]
fn u1_satisfied_by_both_headers() {
    let src = "//! A crate.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
    assert!(fire("crates/sma-core/src/lib.rs", src).is_empty());
}

// --- U2: debug output -------------------------------------------------------

#[test]
fn u2_println_in_library_code() {
    let src = "pub fn f() {\n\tprintln!(\"dbg\");\n\tdbg!(42);\n}\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("U2-debug-output", 2), ("U2-debug-output", 3)]);
}

// --- U3: narrowing casts in codec modules -----------------------------------

#[test]
fn u3_narrowing_cast_in_codec_module() {
    let src = "pub fn off(n: usize) -> u16 {\n\tn as u16\n}\n";
    let got = fire("crates/sma-storage/src/page.rs", src);
    assert_eq!(got, vec![("U3-narrowing-cast", 2)]);
}

#[test]
fn u3_cast_to_wide_or_alias_is_fine() {
    let src = "pub fn wide(n: u16) -> u64 {\n\tn as u64\n}\n\
               pub fn alias(n: usize) -> SlotId {\n\tn as SlotId\n}\n";
    assert!(fire("crates/sma-storage/src/page.rs", src).is_empty());
}

// --- Allow directives --------------------------------------------------------

#[test]
fn justified_allow_suppresses_same_and_next_line() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
               \t// sma-lint: allow(P1-unwrap) -- fixture exercises the suppression path\n\
               \tx.unwrap()\n\
               }\n";
    // Suppressed findings stay in the report: downgraded to Warn,
    // carrying the justification, never failing the run.
    let diags = lint_source("crates/sma-core/src/rogue.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "P1-unwrap");
    assert_eq!(diags[0].severity, sma_lint::Severity::Warn);
    assert_eq!(
        diags[0].allow_reason.as_deref(),
        Some("fixture exercises the suppression path")
    );
}

#[test]
fn justified_allow_does_not_reach_two_lines_down() {
    // The directive is out of range, so the unwrap still fires AND the
    // allow itself is flagged stale — it suppresses nothing.
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
               \t// sma-lint: allow(P1-unwrap) -- too far away to matter\n\
               \tlet y = x;\n\
               \ty.unwrap()\n\
               }\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("W2-stale-allow", 2), ("P1-unwrap", 4)]);
}

#[test]
fn allow_only_suppresses_the_named_rule() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
               \t// sma-lint: allow(P2-expect) -- names the wrong rule\n\
               \tx.unwrap()\n\
               }\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("W2-stale-allow", 2), ("P1-unwrap", 3)]);
}

#[test]
fn w1_bare_allow_is_rejected_and_suppresses_nothing() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
               \t// sma-lint: allow(P1-unwrap)\n\
               \tx.unwrap()\n\
               }\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("W1-bare-allow", 2), ("P1-unwrap", 3)]);
}

#[test]
fn w2_stale_justified_allow_is_an_error() {
    let src = "pub fn f(x: Option<u8>) -> Option<u8> {\n\
               \t// sma-lint: allow(P1-unwrap) -- the unwrap below was removed\n\
               \tx\n\
               }\n";
    let got = fire("crates/sma-core/src/rogue.rs", src);
    assert_eq!(got, vec![("W2-stale-allow", 2)]);
}

#[test]
fn allows_naming_analysis_rules_are_not_lint_stale() {
    // Directives naming A1..A4 are validated by `--analyze` (which owns
    // those findings), not by the token pass.
    let src = "pub fn f() {\n\
               \t// sma-lint: allow(A3-error-swallowing) -- analyze owns this\n\
               \tlet _ = 1;\n\
               }\n";
    assert!(fire("crates/sma-core/src/rogue.rs", src).is_empty());
}

// --- Lexer soundness: strings and comments are not code ----------------------

#[test]
fn strings_and_comments_never_fire_rules() {
    let src = "pub fn f() -> &'static str {\n\
               \t// x.unwrap() in a comment\n\
               \t/* panic!(\"nope\") */\n\
               \t\"x.unwrap() and panic! in a string\"\n\
               }\n";
    assert!(fire("crates/sma-core/src/rogue.rs", src).is_empty());
}

// --- JSON report --------------------------------------------------------------

#[test]
fn json_report_counts_by_rule() {
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let diags = lint_source("crates/sma-core/src/rogue.rs", src);
    let json = sma_lint::json_report(&diags);
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"total\": 1"));
    assert!(json.contains("\"P1-unwrap\": 1"));
    let clean = sma_lint::json_report(&[]);
    assert!(clean.contains("\"clean\": true"));
}

#[test]
fn json_report_snapshot_normalized_schema() {
    // Diagnostics serialize as {rule, severity, file, line, msg} plus
    // allow_reason when an inline allow downgraded the finding — the
    // exact shape CI and external tooling consume. Full-output snapshot so
    // schema drift is a deliberate, reviewed change.
    let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
               pub fn g(x: Option<u8>) -> u8 {\n\
               \t// sma-lint: allow(P1-unwrap) -- snapshot exercises the allow_reason key\n\
               \tx.unwrap()\n\
               }\n";
    let diags = lint_source("crates/sma-core/src/rogue.rs", src);
    let json = sma_lint::json_report(&diags);
    let expected = "{\n\
         \x20 \"clean\": false,\n\
         \x20 \"errors\": 1,\n\
         \x20 \"total\": 2,\n\
         \x20 \"counts\": {\n\
         \x20   \"P1-unwrap\": 2\n\
         \x20 },\n\
         \x20 \"diagnostics\": [\n\
         \x20   {\"rule\": \"P1-unwrap\", \"severity\": \"error\", \"file\": \"crates/sma-core/src/rogue.rs\", \"line\": 1, \"msg\": \"`.unwrap()` in library non-test code — convert to the crate's error enum\"},\n\
         \x20   {\"rule\": \"P1-unwrap\", \"severity\": \"warn\", \"file\": \"crates/sma-core/src/rogue.rs\", \"line\": 4, \"msg\": \"`.unwrap()` in library non-test code — convert to the crate's error enum\", \"allow_reason\": \"snapshot exercises the allow_reason key\"}\n\
         \x20 ]\n\
         }\n";
    assert_eq!(json, expected);
}
// --- N1: socket confinement ----------------------------------------------

#[test]
fn n1_socket_outside_sma_server() {
    let src = "use std::net::TcpStream;\n\
               pub fn dial(addr: &str) {\n\
               \tlet _ = TcpStream::connect(addr);\n\
               }\n";
    let got = fire("crates/sma-storage/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![("N1-socket-confinement", 1), ("N1-socket-confinement", 3)]
    );
}

#[test]
fn n1_listener_in_core_bin_target() {
    let src = "fn main() { let _ = std::net::TcpListener::bind(\"x\"); }\n";
    let got = fire("crates/sma-core/src/bin/rogue.rs", src);
    assert_eq!(got, vec![("N1-socket-confinement", 1)]);
}

#[test]
fn n1_silent_inside_sma_server_and_tests() {
    let src = "pub fn serve() { let _ = std::net::TcpListener::bind(\"x\"); }\n";
    assert!(fire("crates/sma-server/src/server.rs", src).is_empty());
    let test_src =
        "#[cfg(test)]\nmod tests {\n\tfn t() { let _ = std::net::TcpStream::connect(\"x\"); }\n}\n";
    assert!(fire("crates/sma-storage/src/x.rs", test_src)
        .iter()
        .all(|(rule, _)| *rule != "N1-socket-confinement"));
}

// --- N2: unbounded queues in the server ----------------------------------

#[test]
fn n2_unbounded_queue_in_sma_server() {
    let src = "use std::collections::VecDeque;\n\
               use std::sync::mpsc::channel;\n\
               pub fn q() { let _: VecDeque<u8> = VecDeque::new(); }\n";
    let got = fire("crates/sma-server/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![
            ("N2-unbounded-queue", 1),
            ("N2-unbounded-queue", 2),
            ("N2-unbounded-queue", 3),
            ("N2-unbounded-queue", 3),
        ]
    );
}

#[test]
fn n2_sync_channel_and_other_crates_are_fine() {
    let src = "use std::sync::mpsc::sync_channel;\n\
               pub fn q() { let _ = sync_channel::<u8>(4); }\n";
    assert!(fire("crates/sma-server/src/bounded.rs", src).is_empty());
    let elsewhere = "pub fn q() { let _: std::collections::VecDeque<u8> = Default::default(); }\n";
    assert!(fire("crates/sma-core/src/queue.rs", elsewhere).is_empty());
}

// --- C1: columnar codec confinement ---------------------------------------

#[test]
fn c1_chunk_primitives_outside_the_codec_trio() {
    let src = "//! docs\n\
               use sma_storage::columnar::{is_columnar_page, read_chunk};\n\
               pub fn sniff(buf: &[u8]) -> bool {\n\
               \tis_columnar_page(buf)\n\
               }\n";
    let got = fire("crates/sma-exec/src/rogue.rs", src);
    assert_eq!(
        got,
        vec![
            ("C1-columnar-confinement", 2),
            ("C1-columnar-confinement", 2),
            ("C1-columnar-confinement", 4),
        ]
    );
}

#[test]
fn c1_marker_bytes_count_as_primitives() {
    let src = "pub fn looks_columnar(b: &[u8]) -> bool {\n\
               \tb.first() == Some(&COLUMNAR_MARKER0)\n\
               }\n";
    let got = fire("src/rogue.rs", src);
    assert_eq!(got, vec![("C1-columnar-confinement", 2)]);
}

#[test]
fn c1_silent_inside_the_codec_trio_and_tests() {
    let src = "pub fn go(buf: &[u8]) -> bool { is_columnar_page(buf) }\n";
    assert!(fire("crates/sma-storage/src/columnar.rs", src).is_empty());
    assert!(fire("crates/sma-storage/src/table.rs", src).is_empty());
    assert!(fire("crates/sma-types/src/colblock.rs", src).is_empty());
    // Tests and benches probe layouts freely.
    assert!(fire("crates/sma-storage/tests/probe.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n\
                   \tfn go(b: &[u8]) -> bool { super::is_columnar_page(b) }\n\
                   }\n";
    assert!(fire("crates/sma-exec/src/rogue.rs", in_test).is_empty());
}

#[test]
fn c1_columnar_codec_is_in_the_strict_index_scope() {
    // colblock.rs and columnar.rs joined CODEC_STRICT: literal indexing
    // and narrowing casts are the dangerous class there too.
    let src = "pub fn b0(buf: &[u8]) -> u8 { buf[0] }\n";
    let got = fire("crates/sma-types/src/colblock.rs", src);
    assert_eq!(got, vec![("P4-literal-index", 1)]);
    let src = "pub fn lo(v: u64) -> u16 { v as u16 }\n";
    let got = fire("crates/sma-storage/src/columnar.rs", src);
    assert_eq!(got, vec![("U3-narrowing-cast", 1)]);
}
