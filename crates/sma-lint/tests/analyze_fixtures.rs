//! Integration fixtures for the analysis passes (A1–A4): one positive and
//! one negative fixture per rule, run through [`analyze_sources`] with
//! small synthetic configs the way `--analyze` runs the real one.

use sma_lint::analyze::{analyze_sources, Allow, AnalyzeConfig};
use sma_lint::Finding;

fn run(cfg: &AnalyzeConfig, srcs: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<(String, String)> = srcs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&sources, cfg)
}

// ------------------------------------------------------------------- A1

/// A buffer-pool shaped fixture: shard guards held across a store fsync.
const A1_FSYNC_UNDER_GUARD: &str = r#"
    trait PageStore { fn sync(&mut self) -> Result<(), Error>; }
    struct FileStore { file: File }
    impl PageStore for FileStore {
        fn sync(&mut self) -> Result<(), Error> { self.file.sync_all() }
    }
    struct Shard;
    fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> { m.lock() }
    struct Pool { shards: Vec<Mutex<Shard>>, store: RwLock<Box<dyn PageStore>> }
    impl Pool {
        fn write_store(&self) -> RwLockWriteGuard<'_, Box<dyn PageStore>> {
            self.store.write()
        }
        pub fn flush_all(&self) -> Result<(), Error> {
            let mut guards: Vec<_> = self.shards.iter().map(lock_shard).collect();
            self.write_store().sync()
        }
    }
"#;

#[test]
fn a1_fsync_while_guard_live_fires() {
    let cfg = AnalyzeConfig::default();
    let findings = run(&cfg, &[("crates/x/src/pool.rs", A1_FSYNC_UNDER_GUARD)]);
    let a1: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "A1-lock-order")
        .collect();
    assert!(
        a1.iter()
            .any(|f| f.func == "Pool::flush_all" && f.message.contains("fsync")),
        "expected fsync-under-guard in Pool::flush_all, got {findings:?}"
    );
}

#[test]
fn a1_fsync_after_guard_dropped_is_clean() {
    let src = r#"
        trait PageStore { fn sync(&mut self) -> Result<(), Error>; }
        struct FileStore { file: File }
        impl PageStore for FileStore {
            fn sync(&mut self) -> Result<(), Error> { self.file.sync_all() }
        }
        struct Shard;
        fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> { m.lock() }
        struct Pool { shards: Vec<Mutex<Shard>>, store: RwLock<Box<dyn PageStore>> }
        impl Pool {
            fn write_store(&self) -> RwLockWriteGuard<'_, Box<dyn PageStore>> {
                self.store.write()
            }
            pub fn flush_all(&self) -> Result<(), Error> {
                {
                    let mut guards: Vec<_> = self.shards.iter().map(lock_shard).collect();
                    write_back(&mut guards);
                }
                self.write_store().sync()
            }
        }
        fn write_back(gs: &mut Vec<MutexGuard<'_, Shard>>) {}
    "#;
    let cfg = AnalyzeConfig::default();
    let findings = run(&cfg, &[("crates/x/src/pool.rs", src)]);
    assert!(
        findings.iter().all(|f| f.rule != "A1-lock-order"),
        "guard scope ends before the sync: {findings:?}"
    );
}

#[test]
fn a1_lock_order_inversion_fires_and_consistent_order_does_not() {
    let inverted = r#"
        struct A; struct B;
        struct S { a: Mutex<A>, b: Mutex<B> }
        impl S {
            fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
            fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
        }
    "#;
    let cfg = AnalyzeConfig::default();
    let findings = run(&cfg, &[("crates/x/src/locks.rs", inverted)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A1-lock-order" && f.message.contains("inconsistent lock order")),
        "expected an inversion: {findings:?}"
    );

    let consistent = r#"
        struct A; struct B;
        struct S { a: Mutex<A>, b: Mutex<B> }
        impl S {
            fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
            fn ab_again(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
        }
    "#;
    let findings = run(&cfg, &[("crates/x/src/locks.rs", consistent)]);
    assert!(
        findings.iter().all(|f| f.rule != "A1-lock-order"),
        "consistent order must be clean: {findings:?}"
    );
}

#[test]
fn a1_transitive_inversion_through_calls_fires() {
    // The inner acquisition happens in a callee — only the call graph
    // sees the (A, B) vs (B, A) conflict.
    let src = r#"
        struct A; struct B;
        struct S { a: Mutex<A>, b: Mutex<B> }
        impl S {
            fn take_b(&self) { let gb = self.b.lock(); }
            fn ab(&self) { let ga = self.a.lock(); self.take_b(); }
            fn take_a(&self) { let ga = self.a.lock(); }
            fn ba(&self) { let gb = self.b.lock(); self.take_a(); }
        }
    "#;
    let cfg = AnalyzeConfig::default();
    let findings = run(&cfg, &[("crates/x/src/locks.rs", src)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A1-lock-order" && f.message.contains("inconsistent lock order")),
        "expected a transitive inversion: {findings:?}"
    );
}

// ------------------------------------------------------------------- A2

fn a2_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        page_read_primitives: vec!["read_page"],
        a2_scope_crates: vec!["x"],
        ..AnalyzeConfig::default()
    }
}

const A2_UNBUDGETED: &str = r#"
    pub fn read_page(no: u32) -> Vec<u8> { Vec::new() }
    pub struct Scan;
    impl Scan {
        pub fn next(&mut self) -> Option<Vec<u8>> { Some(read_page(0)) }
    }
"#;

#[test]
fn a2_unbudgeted_page_read_fires() {
    let findings = run(&a2_cfg(), &[("crates/x/src/scan.rs", A2_UNBUDGETED)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A2-budget-charging" && f.func == "Scan::next"),
        "expected A2 on Scan::next: {findings:?}"
    );
}

#[test]
fn a2_budget_field_param_and_allowlist_are_clean() {
    // A budget-typed field, a budget parameter, and an allowlisted
    // recovery function all satisfy the obligation.
    let src = r#"
        pub struct QueryBudget;
        pub fn read_page(no: u32) -> Vec<u8> { Vec::new() }
        pub struct Scan { budget: Option<QueryBudget> }
        impl Scan {
            pub fn next(&mut self) -> Option<Vec<u8>> { Some(read_page(0)) }
        }
        pub fn run(b: &QueryBudget) -> Vec<u8> { read_page(1) }
        pub fn recover() { read_page(2); }
    "#;
    let cfg = AnalyzeConfig {
        page_read_primitives: vec!["read_page"],
        a2_scope_crates: vec!["x"],
        a2_allow: vec![Allow {
            func: "recover",
            reason: "recovery rebuilds state before queries are admitted",
        }],
        ..AnalyzeConfig::default()
    };
    let findings = run(&cfg, &[("crates/x/src/scan.rs", src)]);
    let errors: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "A2-budget-charging" && f.allow_reason.is_none())
        .collect();
    assert!(errors.is_empty(), "all three forms satisfy A2: {errors:?}");
    // The allowlisted function is still reported, as a warn with reason.
    assert!(
        findings
            .iter()
            .any(|f| f.func == "recover" && f.allow_reason.is_some()),
        "allowlisted finding stays auditable: {findings:?}"
    );
}

#[test]
fn a2_combinator_over_budgeted_leaf_is_clean() {
    // An operator that only composes a budgeted leaf has no obligation of
    // its own: reachability is cut at the budgeted function.
    let src = r#"
        pub struct QueryBudget;
        pub fn read_page(no: u32) -> Vec<u8> { Vec::new() }
        pub struct Scan { budget: Option<QueryBudget> }
        impl Scan {
            pub fn next(&mut self) -> Option<Vec<u8>> { Some(read_page(0)) }
        }
        pub struct Filter { child: Scan }
        impl Filter {
            pub fn next(&mut self) -> Option<Vec<u8>> { self.child.next() }
        }
    "#;
    let findings = run(&a2_cfg(), &[("crates/x/src/scan.rs", src)]);
    assert!(
        findings.iter().all(|f| f.func != "Filter::next"),
        "combinators over budgeted leaves are clean: {findings:?}"
    );
}

// ------------------------------------------------------------------- A3

#[test]
fn a3_sinks_fire_and_inline_allow_downgrades() {
    let src = r#"
        pub fn save() -> Result<(), Error> { Ok(()) }
        pub fn caller() {
            let _ = save();
        }
        pub fn matcher() -> bool {
            match save() {
                Ok(()) => true,
                Err(_) => false,
            }
        }
        pub fn allowed() {
            // sma-lint: allow(A3-error-swallowing) -- best-effort teardown
            let _ = save();
        }
    "#;
    let findings = run(&AnalyzeConfig::default(), &[("crates/x/src/lib.rs", src)]);
    let a3: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "A3-error-swallowing")
        .collect();
    assert!(
        a3.iter()
            .any(|f| f.func == "caller" && f.allow_reason.is_none()),
        "let _ = over a Result fires: {a3:?}"
    );
    assert!(
        a3.iter()
            .any(|f| f.func == "matcher" && f.allow_reason.is_none()),
        "Err(_) => fires: {a3:?}"
    );
    assert!(
        a3.iter()
            .any(|f| f.func == "allowed"
                && f.allow_reason.as_deref() == Some("best-effort teardown")),
        "inline allow downgrades with its reason: {a3:?}"
    );
}

#[test]
fn a3_bound_error_payloads_are_clean() {
    let src = r#"
        pub fn save() -> Result<(), Error> { Ok(()) }
        pub fn caller() -> Result<(), Error> {
            save()?;
            Ok(())
        }
        pub fn matcher() -> u32 {
            match save() {
                Ok(()) => 0,
                Err(e) => log(e),
            }
        }
        fn log(e: Error) -> u32 { 1 }
    "#;
    let findings = run(&AnalyzeConfig::default(), &[("crates/x/src/lib.rs", src)]);
    assert!(
        findings.iter().all(|f| f.rule != "A3-error-swallowing"),
        "propagated and bound errors are clean: {findings:?}"
    );
}

// ------------------------------------------------------------------- A4

fn a4_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        a4_wrappers: vec!["sync_file"],
        a4_commit_points: vec!["commit"],
        ..AnalyzeConfig::default()
    }
}

#[test]
fn a4_raw_sync_outside_wrapper_fires() {
    let src = r#"
        pub fn sneaky(f: &File) { f.sync_all(); }
    "#;
    let findings = run(&a4_cfg(), &[("crates/x/src/lib.rs", src)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A4-fsync-confinement" && f.func == "sneaky"),
        "raw sync outside the approved wrappers fires: {findings:?}"
    );
}

#[test]
fn a4_wrapper_reached_only_through_commit_point_is_clean() {
    let src = r#"
        pub fn sync_file(f: &File) { f.sync_all(); }
        pub fn commit(f: &File) { sync_file(f); }
        pub fn ingest(f: &File) { commit(f); }
    "#;
    let findings = run(&a4_cfg(), &[("crates/x/src/lib.rs", src)]);
    assert!(
        findings.iter().all(|f| f.rule != "A4-fsync-confinement"),
        "every path goes through the commit point: {findings:?}"
    );
}

#[test]
fn a4_wrapper_reached_around_commit_point_fires() {
    let src = r#"
        pub fn sync_file(f: &File) { f.sync_all(); }
        pub fn commit(f: &File) { sync_file(f); }
        pub fn rogue(f: &File) { sync_file(f); }
    "#;
    let findings = run(&a4_cfg(), &[("crates/x/src/lib.rs", src)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A4-fsync-confinement" && f.func == "rogue"),
        "a path that bypasses every commit point fires: {findings:?}"
    );
}

// ----------------------------------------------------------------- graph

#[test]
fn trait_object_dispatch_and_cross_crate_edges_feed_findings() {
    // A4 across crates: the fsync sits behind a trait object in crate `a`,
    // the rogue caller lives in crate `b` — only worst-case dispatch plus
    // cross-crate symbols connect them.
    let a = r#"
        pub trait Store { fn persist(&mut self); }
        pub struct FileStore { file: File }
        impl Store for FileStore {
            fn persist(&mut self) { sync_file(&self.file); }
        }
        pub fn sync_file(f: &File) { f.sync_all(); }
        pub fn commit(s: &mut Box<dyn Store>) { s.persist(); }
    "#;
    let b = r#"
        pub struct Engine { store: Box<dyn Store> }
        impl Engine {
            pub fn rogue(&mut self) { self.store.persist(); }
        }
    "#;
    let cfg = AnalyzeConfig {
        a4_wrappers: vec!["sync_file"],
        a4_commit_points: vec!["commit"],
        ..AnalyzeConfig::default()
    };
    let findings = run(
        &cfg,
        &[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)],
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "A4-fsync-confinement" && f.func == "Engine::rogue"),
        "cross-crate dyn dispatch must reach the wrapper: {findings:?}"
    );
}
