//! The rule engine: file classification, rule catalog, and the lexical
//! checks themselves.
//!
//! Every rule has a stable ID (`L1-page-discipline`, `P1-unwrap`, ...) used
//! in diagnostics, allow directives, and the JSON report. The catalog is in
//! [`RULES`]; DESIGN.md §9 carries the prose rationale for each.

use crate::lexer::{lex, AllowDirective, Tok, Token};

/// Diagnostic severity. Both levels currently fail the build; the split
/// exists so future rules can land as warnings before being promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or allowlisted with justification.
    Error,
    /// Reported and counted, but does not fail the run.
    Warn,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One finding at a file:line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule ID, e.g. `P1-unwrap`.
    pub rule: &'static str,
    /// Severity of the rule that fired.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
    /// Justification text when an inline allow suppressed this finding
    /// (the finding is then reported at `Warn`, never dropped).
    pub allow_reason: Option<String>,
}

/// Catalog entry describing one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable ID.
    pub id: &'static str,
    /// Severity when it fires.
    pub severity: Severity,
    /// One-line summary for `--rules` output.
    pub summary: &'static str,
}

/// The full rule catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L1-page-discipline",
        severity: Severity::Error,
        summary: "outside sma-storage, raw page access (read_page/write_page/SlottedPage) is forbidden — go through the buffer pool / Table",
    },
    RuleInfo {
        id: "L2-codec-bytes",
        severity: Severity::Error,
        summary: "outside the designated codec modules, raw to/from_le_bytes fiddling is forbidden — use sma-types byte helpers",
    },
    RuleInfo {
        id: "L3-type-deps",
        severity: Severity::Error,
        summary: "sma-types must not name upper-layer crates (sma-storage/core/exec/tpcd/cube)",
    },
    RuleInfo {
        id: "P1-unwrap",
        severity: Severity::Error,
        summary: "no .unwrap() in library non-test code — return the crate error enum",
    },
    RuleInfo {
        id: "P2-expect",
        severity: Severity::Error,
        summary: "no .expect(...) in library non-test code — return the crate error enum",
    },
    RuleInfo {
        id: "P3-panic",
        severity: Severity::Error,
        summary: "no panic!/todo!/unimplemented! in library non-test code",
    },
    RuleInfo {
        id: "P4-literal-index",
        severity: Severity::Error,
        summary: "no indexing by integer literal in codec/view/checksum/persist modules — use get()/first()/split_first()",
    },
    RuleInfo {
        id: "D1-wall-clock",
        severity: Severity::Error,
        summary: "no Instant/SystemTime outside cost.rs and the bench harness — route timing through sma_storage::cost",
    },
    RuleInfo {
        id: "D2-ordered-iteration",
        severity: Severity::Error,
        summary: "no HashMap/HashSet in exec/core paths whose iteration can feed output ordering — use BTreeMap/BTreeSet or an explicit sort",
    },
    RuleInfo {
        id: "U1-crate-header",
        severity: Severity::Error,
        summary: "library crates must carry #![forbid(unsafe_code)] and #![deny(missing_docs)]",
    },
    RuleInfo {
        id: "U2-debug-output",
        severity: Severity::Error,
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library non-test code",
    },
    RuleInfo {
        id: "U3-narrowing-cast",
        severity: Severity::Error,
        summary: "no `as` narrowing casts in codec/view/checksum/persist modules — use try_from or the checked helpers in sma_types::bytes",
    },
    RuleInfo {
        id: "N1-socket-confinement",
        severity: Severity::Error,
        summary: "network/socket APIs (TcpListener, TcpStream, UdpSocket, Unix sockets) are confined to sma-server — lower layers must stay transport-free",
    },
    RuleInfo {
        id: "N2-unbounded-queue",
        severity: Severity::Error,
        summary: "no unbounded queues (mpsc::channel, VecDeque, LinkedList) in sma-server non-test code — overload must shed, not buffer; use bounded structures or sync_channel",
    },
    RuleInfo {
        id: "C1-columnar-confinement",
        severity: Severity::Error,
        summary: "columnar chunk primitives (chunk_pages/read_chunk/assemble_blob/is_columnar_page/COLUMNAR_MARKER*) are confined to the columnar codec modules — elsewhere go through Table::columnar_bucket and the typed ColumnarBucket API",
    },
    RuleInfo {
        id: "W1-bare-allow",
        severity: Severity::Error,
        summary: "sma-lint: allow(...) directives require a `-- justification`; bare allows do not suppress anything",
    },
    RuleInfo {
        id: "W2-stale-allow",
        severity: Severity::Error,
        summary: "a justified allow (inline or analyze-config) that suppresses nothing is stale — drop it so the allowlist only points at live code",
    },
    // Analysis rules (call-graph + dataflow passes; `--analyze`). Listed
    // here so `--rules` shows the full catalog and allow directives naming
    // them are recognized; the checks live in `crate::analyze`.
    RuleInfo {
        id: "A1-lock-order",
        severity: Severity::Error,
        summary: "analyze: lock acquisition order must be consistent workspace-wide, and no fsync/socket I/O may be reachable while a lock guard is live",
    },
    RuleInfo {
        id: "A2-budget-charging",
        severity: Severity::Error,
        summary: "analyze: every query-serving function reaching a page-read primitive must thread a QueryBudget or be on the ingest/recovery allowlist",
    },
    RuleInfo {
        id: "A3-error-swallowing",
        severity: Severity::Error,
        summary: "analyze: no `let _ =` on a Result, `Err(_) =>` payload discards, or bare `.ok();` — intentional sinks carry an inline allow with a reason",
    },
    RuleInfo {
        id: "A4-fsync-confinement",
        severity: Severity::Error,
        summary: "analyze: raw sync_all/sync_data only inside the approved wrappers, and every call path to a wrapper must pass a WAL/flush/compaction commit point",
    },
];

/// Which cargo target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Part of a `[lib]` target.
    Lib,
    /// `src/bin/**` or `src/main.rs`.
    Bin,
    /// `tests/**`.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
}

/// Classification of one workspace source file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate the file belongs to (`sma-core`, or `smadb` for the root).
    pub crate_name: String,
    /// Which target kind the path maps to.
    pub target: Target,
    /// Whether the crate is one of the product library crates (vs. the
    /// bench harness or the linter itself).
    pub product: bool,
    /// Whether the file is designated test support (exempt from
    /// panic-freedom like test code, but still layered).
    pub test_support: bool,
}

/// Product library crates: the ones the panic-freedom and hygiene walls
/// apply to in full.
const PRODUCT_CRATES: &[&str] = &[
    "smadb",
    "sma-types",
    "sma-storage",
    "sma-core",
    "sma-exec",
    "sma-tpcd",
    "sma-cube",
    "sma-server",
];

/// Modules allowed to do raw little/big-endian byte codec work (L2) —
/// the row/value codec, the page codec, checksums, and the SMA image codec.
const CODEC_HOME: &[&str] = &[
    "crates/sma-types/",
    "crates/sma-storage/src/page.rs",
    "crates/sma-storage/src/checksum.rs",
    "crates/sma-core/src/persist.rs",
];

/// Modules where decoding untrusted bytes makes literal indexing and
/// narrowing casts the dangerous class (P4/U3 scope).
const CODEC_STRICT: &[&str] = &[
    "crates/sma-types/src/row.rs",
    "crates/sma-types/src/view.rs",
    "crates/sma-types/src/value.rs",
    "crates/sma-types/src/bytes.rs",
    "crates/sma-types/src/colblock.rs",
    "crates/sma-storage/src/page.rs",
    "crates/sma-storage/src/checksum.rs",
    "crates/sma-storage/src/columnar.rs",
    "crates/sma-core/src/persist.rs",
];

/// The only modules allowed to name the columnar chunk primitives (C1):
/// the block codec, the page chunker, and the table layer that glues them
/// to the buffer pool. Everyone else gets the typed, checked
/// `ColumnarBucket` API — a fourth caller of `read_chunk` would be a new
/// raw-byte reinterpretation site outside the audited codec surface.
const COLUMNAR_HOME: &[&str] = &[
    "crates/sma-types/src/colblock.rs",
    "crates/sma-storage/src/columnar.rs",
    "crates/sma-storage/src/table.rs",
];

/// Classifies a workspace-relative path (`crates/sma-core/src/sma.rs`).
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("smadb")
        .to_string();
    let in_crate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, rest)| rest.to_string())
        .unwrap_or(rel.clone());
    let target = if in_crate.starts_with("tests/") {
        Target::Test
    } else if in_crate.starts_with("benches/") {
        Target::Bench
    } else if in_crate.starts_with("examples/") {
        Target::Example
    } else if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
        Target::Bin
    } else {
        Target::Lib
    };
    let product = PRODUCT_CRATES.contains(&crate_name.as_str());
    let test_support = rel.ends_with("test_util.rs");
    FileClass {
        crate_name,
        target,
        product,
        test_support,
    }
}

/// Lints one source file given its workspace-relative path.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    let lexed = lex(src);
    let in_test = test_spans(&lexed.tokens);
    let mut diags: Vec<Diagnostic> = Vec::new();

    let rel = rel_path.replace('\\', "/");
    let is_lib_code = class.target == Target::Lib;
    // "Panic-wall scope": product library code outside test modules and
    // test support files.
    let panic_scope = |idx: usize| -> bool {
        class.product
            && is_lib_code
            && !class.test_support
            && !in_test.get(idx).copied().unwrap_or(false)
    };
    let codec_home = CODEC_HOME.iter().any(|p| rel.starts_with(p));
    let codec_strict = CODEC_STRICT.contains(&rel.as_str());
    let columnar_home = COLUMNAR_HOME.contains(&rel.as_str());

    let toks = &lexed.tokens;
    let get = |i: usize| -> Option<&Token> { toks.get(i) };
    let ident_at = |i: usize| -> Option<&str> {
        match get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct_at = |i: usize, c: char| -> bool {
        matches!(get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    };

    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        match &t.tok {
            Tok::Ident(name) => {
                // --- P1 / P2: `.unwrap()` / `.expect(` --------------------
                if panic_scope(i) && i > 0 && punct_at(i - 1, '.') {
                    if name == "unwrap" && punct_at(i + 1, '(') && punct_at(i + 2, ')') {
                        diags.push(diag("P1-unwrap", &rel, line,
                            "`.unwrap()` in library non-test code — convert to the crate's error enum".into()));
                    }
                    if name == "expect" && punct_at(i + 1, '(') {
                        diags.push(diag("P2-expect", &rel, line,
                            "`.expect(..)` in library non-test code — convert to the crate's error enum".into()));
                    }
                }
                // --- P3: panic-family macros ------------------------------
                if panic_scope(i)
                    && matches!(name.as_str(), "panic" | "todo" | "unimplemented")
                    && punct_at(i + 1, '!')
                {
                    diags.push(diag(
                        "P3-panic",
                        &rel,
                        line,
                        format!("`{name}!` in library non-test code — return an error instead"),
                    ));
                }
                // --- U2: debug output -------------------------------------
                if panic_scope(i)
                    && matches!(
                        name.as_str(),
                        "println" | "eprintln" | "print" | "eprint" | "dbg"
                    )
                    && punct_at(i + 1, '!')
                {
                    diags.push(diag("U2-debug-output", &rel, line,
                        format!("`{name}!` in library code — thread results through return values or the bench harness")));
                }
                // --- D1: wall clock ---------------------------------------
                if class.product
                    && is_lib_code
                    && !class.test_support
                    && !in_test.get(i).copied().unwrap_or(false)
                    && !rel.ends_with("/cost.rs")
                    && matches!(name.as_str(), "Instant" | "SystemTime")
                {
                    diags.push(diag("D1-wall-clock", &rel, line,
                        format!("`{name}` outside cost.rs/bench harness — use sma_storage::cost::Stopwatch")));
                }
                // --- D2: hash-ordered collections in exec/core ------------
                if matches!(class.crate_name.as_str(), "sma-exec" | "sma-core")
                    && is_lib_code
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(name.as_str(), "HashMap" | "HashSet")
                {
                    diags.push(diag("D2-ordered-iteration", &rel, line,
                        format!("`{name}` in a deterministic exec path — use BTreeMap/BTreeSet or sort before emitting")));
                }
                // --- L1: page discipline ----------------------------------
                if class.crate_name != "sma-storage"
                    && class.product
                    && matches!(class.target, Target::Lib | Target::Bin)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(
                        name.as_str(),
                        "read_page"
                            | "write_page"
                            | "SlottedPage"
                            | "stamp_page"
                            | "verify_page"
                            | "page_write_counter"
                    )
                {
                    diags.push(diag("L1-page-discipline", &rel, line,
                        format!("`{name}` outside sma-storage — all page access goes through the buffer pool or Table")));
                }
                // --- L2: codec byte fiddling ------------------------------
                if !codec_home
                    && class.product
                    && matches!(class.target, Target::Lib | Target::Bin)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(
                        name.as_str(),
                        "from_le_bytes" | "to_le_bytes" | "from_be_bytes" | "to_be_bytes"
                    )
                {
                    diags.push(diag(
                        "L2-codec-bytes",
                        &rel,
                        line,
                        format!(
                            "raw `{name}` outside the codec modules — use sma_types::bytes helpers"
                        ),
                    ));
                }
                // --- C1: columnar codec confinement -----------------------
                // The chunk primitives hand out raw page bytes; every
                // caller added outside the audited trio is a new place
                // torn or hostile bytes could be misread as data.
                if !columnar_home
                    && class.product
                    && matches!(class.target, Target::Lib | Target::Bin)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(
                        name.as_str(),
                        "chunk_pages"
                            | "read_chunk"
                            | "assemble_blob"
                            | "is_columnar_page"
                            | "COLUMNAR_MARKER0"
                            | "COLUMNAR_MARKER1"
                    )
                {
                    diags.push(diag("C1-columnar-confinement", &rel, line,
                        format!("`{name}` outside the columnar codec modules — use Table::columnar_bucket / ColumnarBucket instead of raw chunk bytes")));
                }
                // --- L3: sma-types upward deps ----------------------------
                if class.crate_name == "sma-types"
                    && matches!(
                        name.as_str(),
                        "sma_storage" | "sma_core" | "sma_exec" | "sma_tpcd" | "sma_cube" | "smadb"
                    )
                {
                    diags.push(diag("L3-type-deps", &rel, line,
                        format!("`{name}` named inside sma-types — the type layer must not know upper layers")));
                }
                // --- N1: socket confinement -------------------------------
                // The transport layer is sma-server's whole job; a socket
                // named anywhere below it is a layering leak that would
                // let storage or exec block on a network peer.
                if class.crate_name != "sma-server"
                    && class.product
                    && matches!(class.target, Target::Lib | Target::Bin)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(
                        name.as_str(),
                        "TcpListener" | "TcpStream" | "UdpSocket" | "UnixListener" | "UnixStream"
                    )
                {
                    diags.push(diag("N1-socket-confinement", &rel, line,
                        format!("`{name}` outside sma-server — network transport is confined to the server crate")));
                }
                // --- N2: unbounded queues in the server -------------------
                // The admission design sheds overload with Busy; an
                // unbounded queue would silently re-introduce the failure
                // mode (memory growth + creeping latency) the server
                // exists to prevent.
                if class.crate_name == "sma-server"
                    && matches!(class.target, Target::Lib | Target::Bin)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && matches!(name.as_str(), "channel" | "VecDeque" | "LinkedList")
                {
                    diags.push(diag("N2-unbounded-queue", &rel, line,
                        format!("`{name}` in sma-server — overload must shed (Busy), not queue; use a bounded structure or sync_channel")));
                }
                // --- U3: narrowing casts in codec modules -----------------
                if codec_strict && !in_test.get(i).copied().unwrap_or(false) && name == "as" {
                    if let Some(ty) = ident_at(i + 1) {
                        if matches!(ty, "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
                            diags.push(diag("U3-narrowing-cast", &rel, line,
                                format!("`as {ty}` narrowing cast in a codec module — use try_from or sma_types::bytes checked helpers")));
                        }
                    }
                }
            }
            // --- P4: indexing by integer literal --------------------------
            // Pattern: postfix-expression `[` <int> `]` where the token
            // before `[` ends an expression (ident, `)`, or `]`).
            Tok::Punct('[') if codec_strict && !in_test.get(i).copied().unwrap_or(false) => {
                {
                    let prev_postfix = i > 0
                        && matches!(
                            get(i - 1).map(|t| &t.tok),
                            Some(Tok::Ident(_))
                                | Some(Tok::Punct(')'))
                                | Some(Tok::Punct(']'))
                                | Some(Tok::Punct('?'))
                        );
                    // Exclude attribute heads `#[...]` and `#![...]`.
                    let attr = (i >= 1 && punct_at(i - 1, '#'))
                        || (i >= 2 && punct_at(i - 1, '!') && punct_at(i - 2, '#'));
                    if prev_postfix
                        && !attr
                        && matches!(get(i + 1).map(|t| &t.tok), Some(Tok::Int(_)))
                        && punct_at(i + 2, ']')
                    {
                        diags.push(diag("P4-literal-index", &rel, line,
                            "indexing by integer literal in a codec module — use get()/first()/split_first()".into()));
                    }
                }
            }
            _ => {}
        }
    }

    // --- U1: crate headers ----------------------------------------------
    let is_lib_root =
        rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    if is_lib_root && class.crate_name != "sma-lint" {
        for (needle, what) in [
            (["forbid", "unsafe_code"], "#![forbid(unsafe_code)]"),
            (["deny", "missing_docs"], "#![deny(missing_docs)]"),
        ] {
            if !has_inner_attr(
                toks,
                needle.first().copied().unwrap_or(""),
                needle.get(1).copied().unwrap_or(""),
            ) {
                diags.push(diag(
                    "U1-crate-header",
                    &rel,
                    1,
                    format!("library crate missing `{what}` header"),
                ));
            }
        }
    }

    apply_allows(diags, &lexed.allows, &rel)
}

/// Matches `#![<outer>(<inner>)]` anywhere in the token stream.
fn has_inner_attr(toks: &[Token], outer: &str, inner: &str) -> bool {
    for i in 0..toks.len() {
        let w = |k: usize| toks.get(i + k).map(|t| &t.tok);
        if matches!(w(0), Some(Tok::Punct('#')))
            && matches!(w(1), Some(Tok::Punct('!')))
            && matches!(w(2), Some(Tok::Punct('[')))
            && matches!(w(3), Some(Tok::Ident(s)) if s == outer)
            && matches!(w(4), Some(Tok::Punct('(')))
            && matches!(w(5), Some(Tok::Ident(s)) if s == inner)
        {
            return true;
        }
    }
    false
}

/// Computes, for every token index, whether it lies inside `#[cfg(test)]`
/// gated code (the attribute's item, brace-matched) — also covers
/// `#[cfg(any(test, ...))]`. Shared with the item parser ([`crate::parse`])
/// so the analysis passes see the same test-code boundary the lexical
/// rules do.
pub(crate) fn test_spans(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Skip to end of the attribute `]`.
            let mut j = i + 1; // at `[`
            let mut depth = 0i32;
            while let Some(t) = toks.get(j) {
                match t.tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes.
            while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('#'))) {
                let mut depth = 0i32;
                let mut k = j + 1;
                while let Some(t) = toks.get(k) {
                    match t.tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            }
            // Mark the gated item: to the matching `}` of its first brace
            // block, or to the first `;` at brace depth 0.
            let start = j;
            let mut depth = 0i32;
            let mut opened = false;
            while let Some(t) = toks.get(j) {
                match t.tok {
                    Tok::Punct('{') => {
                        depth += 1;
                        opened = true;
                    }
                    Tok::Punct('}') => {
                        depth -= 1;
                        if opened && depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Tok::Punct(';') if !opened && depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for flag in in_test.iter_mut().take(j).skip(start) {
                *flag = true;
            }
            // Also mark the attribute tokens themselves.
            for flag in in_test.iter_mut().take(start).skip(i) {
                *flag = true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Does `#[cfg(...)]` start at token `i`, with `test` appearing among the
/// cfg predicate identifiers?
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    if !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('#'))) {
        return false;
    }
    if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return false;
    }
    if !matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "cfg") {
        return false;
    }
    // Scan the attribute body up to the matching `]` for an ident `test`.
    let mut depth = 0i32;
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(s) if s == "test" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Applies allow directives: a justified directive on line N suppresses
/// matching diagnostics on lines N and N+1; a bare directive suppresses
/// nothing and fires `W1-bare-allow`; a justified directive naming a
/// token rule that suppresses nothing is stale and fires `W2-stale-allow`
/// (directives naming analysis rules are validated by `crate::analyze`,
/// which is the pass that produces those findings).
fn apply_allows(diags: Vec<Diagnostic>, allows: &[AllowDirective], rel: &str) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    // (directive index, rule index) pairs that suppressed something.
    let mut used: Vec<(usize, usize)> = Vec::new();
    for mut d in diags {
        for (ai, a) in allows.iter().enumerate() {
            if !a.justified || !(a.line == d.line || a.line + 1 == d.line) {
                continue;
            }
            if let Some(ri) = a.rules.iter().position(|r| r == d.rule) {
                used.push((ai, ri));
                // Suppressed findings stay in the report, downgraded to
                // Warn and carrying the justification — audit trail over
                // silence.
                d.severity = Severity::Warn;
                d.allow_reason = Some(a.reason.clone());
            }
        }
        out.push(d);
    }
    for (ai, a) in allows.iter().enumerate() {
        if !a.justified {
            out.push(diag(
                "W1-bare-allow",
                rel,
                a.line,
                format!(
                    "allow({}) without `-- justification` — bare allows are rejected and suppress nothing",
                    a.rules.join(", ")
                ),
            ));
            continue;
        }
        for (ri, rule) in a.rules.iter().enumerate() {
            if crate::analyze::ANALYSIS_RULE_IDS.contains(&rule.as_str()) {
                continue;
            }
            if !used.contains(&(ai, ri)) {
                out.push(diag(
                    "W2-stale-allow",
                    rel,
                    a.line,
                    format!(
                        "allow({rule}) suppresses nothing — the violation it excused is gone; drop the directive"
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

fn diag(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
    let severity = RULES
        .iter()
        .find(|r| r.id == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Error);
    Diagnostic {
        rule,
        severity,
        file: file.to_string(),
        line,
        message,
        allow_reason: None,
    }
}
