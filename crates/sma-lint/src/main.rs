//! CLI entry point for `sma-lint`.
//!
//! Usage: `cargo run -p sma-lint [-- --json] [--analyze] [path]`
//!
//! Exit codes: `0` clean, `1` violations found, `2` internal error
//! (bad arguments, unreadable workspace).

use std::path::PathBuf;
use std::process::ExitCode;

use sma_lint::analyze::{analyze_json_report, baseline_json, finding_key, parse_baseline};
use sma_lint::{
    analyze_workspace, find_workspace_root, json_report, lint_workspace, Severity, RULES,
};

fn main() -> ExitCode {
    let mut json = false;
    let mut show_rules = false;
    let mut analyze = false;
    let mut baseline: Option<PathBuf> = None;
    let mut want_baseline_path = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if want_baseline_path {
            baseline = Some(PathBuf::from(&arg));
            want_baseline_path = false;
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => show_rules = true,
            "--analyze" => analyze = true,
            "--baseline" => want_baseline_path = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("sma-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            path => root_arg = Some(PathBuf::from(path)),
        }
    }
    if want_baseline_path {
        eprintln!("sma-lint: --baseline requires a path");
        return ExitCode::from(2);
    }

    if show_rules {
        for r in RULES {
            println!("{:<22} [{}] {}", r.id, r.severity.label(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sma-lint: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg {
        Some(p) => p,
        None => match find_workspace_root(&cwd) {
            Some(r) => r,
            None => {
                eprintln!("sma-lint: no workspace root found above {}", cwd.display());
                return ExitCode::from(2);
            }
        },
    };

    if analyze {
        return run_analyze(&root, json, baseline.as_deref());
    }

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sma-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", json_report(&diags));
    } else {
        for d in &diags {
            let reason = d
                .allow_reason
                .as_deref()
                .map(|r| format!(" (allowed: {r})"))
                .unwrap_or_default();
            println!(
                "{}[{}] {}:{}: {}{}",
                d.severity.label(),
                d.rule,
                d.file,
                d.line,
                d.message,
                reason
            );
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        if errors == 0 {
            println!(
                "sma-lint: clean ({} rules enforced, {} allowed finding(s))",
                RULES.len(),
                diags.len()
            );
        } else {
            println!("sma-lint: {errors} violation(s)");
        }
    }

    let failing = diags.iter().any(|d| d.severity == Severity::Error);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the analysis passes; with `--baseline FILE`, only findings whose
/// keys are NOT in the baseline fail the run (known findings are reported
/// but tolerated until fixed).
fn run_analyze(root: &std::path::Path, json: bool, baseline: Option<&std::path::Path>) -> ExitCode {
    let (findings, stats) = match analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sma-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let known = match baseline {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("sma-lint: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Default::default(),
    };
    let new_errors: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error && !known.contains(&finding_key(f)))
        .collect();

    if json {
        print!("{}", analyze_json_report(&findings, &stats));
    } else {
        for f in &findings {
            let loc = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            let reason = f
                .allow_reason
                .as_deref()
                .map(|r| format!(" (allowed: {r})"))
                .unwrap_or_default();
            println!(
                "{}[{}] {}: {}{}",
                f.severity.label(),
                f.rule,
                loc,
                f.message,
                reason
            );
        }
        let errors = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        println!(
            "sma-analyze: {} file(s), {} fn(s), {} edge(s) in {} ms — {} finding(s), {} error(s), {} new vs baseline",
            stats.files,
            stats.functions,
            stats.edges,
            stats.elapsed_ms,
            findings.len(),
            errors,
            new_errors.len()
        );
        if errors > 0 && new_errors.is_empty() {
            println!("sma-analyze: all errors are in the committed baseline; to regenerate it:");
            println!("{}", baseline_json(&findings));
        }
    }

    if new_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_help() {
    println!(
        "sma-lint: architectural lint wall for the SMA workspace\n\
         \n\
         USAGE: sma-lint [--json] [--rules] [--analyze [--baseline FILE]] [root]\n\
         \n\
         --json             emit a machine-readable JSON report\n\
         --rules            list the rule catalog\n\
         --analyze          run the call-graph + dataflow passes (A1-A4)\n\
         --baseline FILE    tolerate analysis findings listed in FILE\n\
         root               workspace root (default: nearest [workspace] above cwd)\n\
         \n\
         Exit codes: 0 clean, 1 violations, 2 internal error.\n\
         Suppress a finding with `// sma-lint: allow(rule-id) -- justification`."
    );
}
