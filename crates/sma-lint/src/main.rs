//! CLI entry point for `sma-lint`.
//!
//! Usage: `cargo run -p sma-lint [-- --json] [path]`
//!
//! Exit codes: `0` clean, `1` violations found, `2` internal error
//! (bad arguments, unreadable workspace).

use std::path::PathBuf;
use std::process::ExitCode;

use sma_lint::{find_workspace_root, json_report, lint_workspace, Severity, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut show_rules = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => show_rules = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("sma-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            path => root_arg = Some(PathBuf::from(path)),
        }
    }

    if show_rules {
        for r in RULES {
            println!("{:<22} [{}] {}", r.id, r.severity.label(), r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sma-lint: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg {
        Some(p) => p,
        None => match find_workspace_root(&cwd) {
            Some(r) => r,
            None => {
                eprintln!("sma-lint: no workspace root found above {}", cwd.display());
                return ExitCode::from(2);
            }
        },
    };

    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sma-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", json_report(&diags));
    } else {
        for d in &diags {
            println!(
                "{}[{}] {}:{}: {}",
                d.severity.label(),
                d.rule,
                d.file,
                d.line,
                d.message
            );
        }
        if diags.is_empty() {
            println!("sma-lint: clean ({} rules enforced)", RULES.len());
        } else {
            println!("sma-lint: {} violation(s)", diags.len());
        }
    }

    let failing = diags.iter().any(|d| d.severity == Severity::Error);
    if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_help() {
    println!(
        "sma-lint: architectural lint wall for the SMA workspace\n\
         \n\
         USAGE: sma-lint [--json] [--rules] [root]\n\
         \n\
         --json    emit a machine-readable JSON report\n\
         --rules   list the rule catalog\n\
         root      workspace root (default: nearest [workspace] above cwd)\n\
         \n\
         Exit codes: 0 clean, 1 violations, 2 internal error.\n\
         Suppress a finding with `// sma-lint: allow(rule-id) -- justification`."
    );
}
