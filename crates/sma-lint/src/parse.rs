//! A lightweight item-level parser on top of the lexer.
//!
//! [`parse_file`] walks one file's token stream and extracts the items the
//! analysis passes ([`crate::analyze`]) need: function signatures (name,
//! owning `impl`/`trait` type, parameter and return types, body token
//! span) and struct fields (for deriving lock classes and receiver types).
//! It is *not* a Rust parser — it never builds expressions — but it is
//! exact about the things it does track: brace matching, generic-angle
//! matching, `where` clauses, and `#[cfg(test)]` exclusion all follow the
//! token stream, so a function body span is a real brace-balanced region
//! and a parameter type is the real token sequence between `:` and the
//! next top-level `,`.
//!
//! Types are stored as normalized strings with single spaces between
//! tokens (`"RwLock < StreamingWarehouse >"`); helpers like
//! [`type_head`] and [`ty_contains`] match on those word lists, so
//! `Vec<Mutex<Shard>>` and `& Mutex < Shard >` both report a `Mutex`
//! wrapper with inner class `Shard`.

use crate::lexer::{lex, AllowDirective, Tok, Token};
use crate::rules::test_spans;

/// One function parameter: binding name (best effort) and its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding identifier (`buf` in `buf: &mut Vec<u8>`); empty for
    /// pattern bindings the parser does not decompose.
    pub name: String,
    /// Normalized type text (space-separated tokens).
    pub ty: String,
}

/// What kind of container an item was declared in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerKind {
    /// Free item at module scope.
    Free,
    /// Inside an `impl Type` or `impl Trait for Type` block — the owner
    /// is the *type*.
    Impl,
    /// Inside a `trait Name` block — the owner is the trait, and calls
    /// dispatched through it must be treated as worst-case dyn dispatch.
    Trait,
}

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Owning type or trait name, if declared inside an impl/trait block.
    pub owner: Option<String>,
    /// Whether the owner is a trait (dyn-dispatch approximation point).
    pub owner_kind: OwnerKind,
    /// For fns inside `impl Trait for Type`: the trait being implemented.
    /// Lets the call graph restrict dyn-dispatch fan-out to actual
    /// implementors instead of every same-named method.
    pub trait_impl: Option<String>,
    /// Parameters, excluding any `self` receiver.
    pub params: Vec<Param>,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Normalized return type text (empty when `()` / omitted).
    pub ret: String,
    /// Token index range `[start, end)` of the body, *inside* the braces.
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

impl FnItem {
    /// `Owner::name` or bare `name` — the display form used in findings.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A parsed struct field (named-field structs only).
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// The struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Normalized type text.
    pub ty: String,
}

/// Everything the analysis passes need from one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// The full token stream (body spans index into this).
    pub tokens: Vec<Token>,
    /// Allow directives harvested from comments.
    pub allows: Vec<AllowDirective>,
    /// Functions found (including `#[cfg(test)]` ones, flagged).
    pub fns: Vec<FnItem>,
    /// Named struct fields found.
    pub fields: Vec<FieldItem>,
}

/// Parses one source file into items. Total: unparseable regions are
/// skipped, never reported — the compiler owns syntax errors.
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let toks = lexed.tokens;
    let in_test = test_spans(&toks);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut fields: Vec<FieldItem> = Vec::new();

    // Container stack: (owner name, trait being implemented, kind, brace
    // depth its `{` opened at).
    let mut containers: Vec<(String, Option<String>, OwnerKind, i32)> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0usize;

    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while matches!(containers.last(), Some(&(_, _, _, d)) if depth < d) {
                    containers.pop();
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let kind = if kw == "impl" {
                    OwnerKind::Impl
                } else {
                    OwnerKind::Trait
                };
                if let Some((owner, trait_impl, open)) = parse_container_header(&toks, i + 1, kind)
                {
                    containers.push((owner, trait_impl, kind, depth + 1));
                    depth += 1;
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                let next = parse_struct(&toks, i, &mut fields);
                // `parse_struct` consumes up to (not including) the token
                // after the item, leaving brace tracking to us: it only
                // advances past `;`-terminated forms or a balanced body.
                i = next;
            }
            Tok::Ident(kw) if kw == "fn" => {
                // `fn(` with no name is a function-pointer type.
                let name = match toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = toks[i].line;
                // `parse_fn` consumes a balanced body (or the `;`), so the
                // net brace-depth change is zero — no tracking update.
                let (item, next) = parse_fn(&toks, i, name, line, containers.last(), &in_test);
                if let Some(item) = item {
                    fns.push(item);
                }
                i = next;
            }
            _ => i += 1,
        }
    }

    ParsedFile {
        rel: rel.to_string(),
        tokens: toks,
        allows: lexed.allows,
        fns,
        fields,
    }
}

/// Parses an impl/trait header starting just after the keyword. Returns
/// the owner name, the trait implemented (for `impl Trait for Type`
/// blocks), and the index of the opening `{`.
fn parse_container_header(
    toks: &[Token],
    mut i: usize,
    kind: OwnerKind,
) -> Option<(String, Option<String>, usize)> {
    // Skip leading generics `<...>`.
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    // Collect path idents until `{`, restarting after `for`
    // (impl Trait for Type) and stopping at `where`.
    let mut current: Vec<String> = Vec::new();
    while let Some(t) = toks.get(i) {
        match &t.tok {
            Tok::Punct('{') => {
                let owner = current.last()?.clone();
                return Some((owner, None, i));
            }
            Tok::Punct(';') => return None, // e.g. `impl Trait for Type;` — not real Rust, bail
            Tok::Punct('<') => {
                i = skip_angles(toks, i);
                continue;
            }
            Tok::Ident(s) if s == "for" && kind == OwnerKind::Impl => {
                // `impl Trait for Type`: everything collected so far was
                // the trait; the self type follows.
                let trait_name = current.last().cloned();
                i += 1;
                let mut ty: Vec<String> = Vec::new();
                while let Some(t2) = toks.get(i) {
                    match &t2.tok {
                        Tok::Punct('{') => {
                            let owner = ty.last()?.clone();
                            return Some((owner, trait_name, i));
                        }
                        Tok::Punct('<') => {
                            i = skip_angles(toks, i);
                            continue;
                        }
                        Tok::Ident(s2) if s2 == "where" => {
                            let owner = ty.last()?.clone();
                            // Find the `{` ending the where clause.
                            let open = find_open_brace(toks, i)?;
                            return Some((owner, trait_name, open));
                        }
                        Tok::Ident(s2) => ty.push(s2.clone()),
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            Tok::Ident(s) if s == "where" => {
                let owner = current.last()?.clone();
                let open = find_open_brace(toks, i)?;
                return Some((owner, None, open));
            }
            Tok::Punct(':') if kind == OwnerKind::Trait => {
                // `trait Name: Super + Sync {` — the name is already
                // collected; everything after the colon is supertrait
                // bounds, not the owner.
                let owner = current.last()?.clone();
                let open = find_open_brace(toks, i)?;
                return Some((owner, None, open));
            }
            Tok::Ident(s) => {
                current.push(s.clone());
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Finds the next `{` at angle-depth 0 from `i`.
fn find_open_brace(toks: &[Token], mut i: usize) -> Option<usize> {
    while let Some(t) = toks.get(i) {
        match t.tok {
            Tok::Punct('{') => return Some(i),
            Tok::Punct('<') => {
                i = skip_angles(toks, i);
                continue;
            }
            _ => i += 1,
        }
    }
    None
}

/// Skips a balanced `<...>` region starting at the `<` at `i`. Returns the
/// index one past the matching `>`. Tolerates `->` inside (skips the `-`'s
/// `>` pairing by never seeing `-` as an opener) and gives up at `{`/`;`.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                // `->` arrows: the `-` precedes; don't count its `>`.
                let arrow = j > 0 && matches!(toks[j - 1].tok, Tok::Punct('-'));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            Tok::Punct('{') | Tok::Punct(';') => return j, // malformed; bail
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parses a `struct` item starting at the `struct` keyword; pushes named
/// fields. Returns the index to resume scanning at (past `;` for unit and
/// tuple structs, past the closing `}` for named-field structs).
fn parse_struct(toks: &[Token], kw: usize, fields: &mut Vec<FieldItem>) -> usize {
    let name = match toks.get(kw + 1).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.clone(),
        _ => return kw + 1,
    };
    let mut i = kw + 2;
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    // `where` clause before the body.
    while let Some(t) = toks.get(i) {
        match &t.tok {
            Tok::Punct('{') => break,
            Tok::Punct(';') => return i + 1, // unit struct
            Tok::Punct('(') => {
                // Tuple struct: skip to the `;` after the balanced parens.
                let close = skip_parens(toks, i);
                let mut j = close;
                while let Some(t2) = toks.get(j) {
                    if matches!(t2.tok, Tok::Punct(';')) {
                        return j + 1;
                    }
                    j += 1;
                }
                return j;
            }
            Tok::Punct('<') => {
                i = skip_angles(toks, i);
            }
            _ => i += 1,
        }
    }
    let open = i; // at `{`
    let close = match_brace(toks, open);
    // Fields: `name : <type until top-level , or }>` at depth 1.
    let mut j = open + 1;
    while j < close {
        // Skip attributes `#[...]`.
        if matches!(toks[j].tok, Tok::Punct('#')) {
            j = skip_attr(toks, j);
            continue;
        }
        // Skip visibility `pub` / `pub(crate)`.
        if matches!(&toks[j].tok, Tok::Ident(s) if s == "pub") {
            j += 1;
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
                j = skip_parens(toks, j);
            }
            continue;
        }
        let Some(Tok::Ident(fname)) = toks.get(j).map(|t| &t.tok) else {
            j += 1;
            continue;
        };
        if !matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            j += 1;
            continue;
        }
        let fname = fname.clone();
        let (ty, next) = collect_type(toks, j + 2, close);
        fields.push(FieldItem {
            owner: name.clone(),
            name: fname,
            ty,
        });
        j = next;
    }
    close + 1
}

/// Collects a type's tokens from `i` until a `,` at bracket-depth 0 or
/// `end`. Returns the normalized type text and the index past the `,`.
fn collect_type(toks: &[Token], mut i: usize, end: usize) -> (String, usize) {
    let mut words: Vec<String> = Vec::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < end {
        match &toks[i].tok {
            Tok::Punct(',') if angle == 0 && paren == 0 && bracket == 0 => {
                return (words.join(" "), i + 1);
            }
            Tok::Punct('<') => {
                angle += 1;
                words.push("<".into());
            }
            Tok::Punct('>') => {
                let arrow = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('-'));
                if !arrow {
                    angle -= 1;
                }
                words.push(">".into());
            }
            Tok::Punct('(') => {
                paren += 1;
                words.push("(".into());
            }
            Tok::Punct(')') => {
                paren -= 1;
                words.push(")".into());
            }
            Tok::Punct('[') => {
                bracket += 1;
                words.push("[".into());
            }
            Tok::Punct(']') => {
                bracket -= 1;
                words.push("]".into());
            }
            Tok::Ident(s) => words.push(s.clone()),
            Tok::Punct(c) => words.push(c.to_string()),
            Tok::Int(s) | Tok::Float(s) => words.push(s.clone()),
            Tok::Lifetime => {} // drop lifetimes from type text
            Tok::Literal => {}
        }
        i += 1;
    }
    (words.join(" "), end)
}

/// Parses a `fn` item starting at the `fn` keyword. Returns the item (if
/// parseable) and the resume index.
fn parse_fn(
    toks: &[Token],
    kw: usize,
    name: String,
    line: u32,
    container: Option<&(String, Option<String>, OwnerKind, i32)>,
    in_test: &[bool],
) -> (Option<FnItem>, usize) {
    let mut i = kw + 2; // past `fn name`
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        i = skip_angles(toks, i);
    }
    if !matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return (None, kw + 1);
    }
    let params_open = i;
    let params_close = skip_parens(toks, params_open) - 1; // index of `)`
    let (params, has_self) = parse_params(toks, params_open + 1, params_close);
    i = params_close + 1;

    // Return type: `-> ...` until `{`, `;`, or `where`.
    let mut ret_words: Vec<String> = Vec::new();
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('-')))
        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('>')))
    {
        i += 2;
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            match &t.tok {
                Tok::Punct('{') | Tok::Punct(';') if angle == 0 => break,
                Tok::Ident(s) if s == "where" && angle == 0 => break,
                Tok::Punct('<') => {
                    angle += 1;
                    ret_words.push("<".into());
                    i += 1;
                }
                Tok::Punct('>') => {
                    let arrow = matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct('-'))
                    );
                    if !arrow {
                        angle -= 1;
                    }
                    ret_words.push(">".into());
                    i += 1;
                }
                Tok::Ident(s) => {
                    ret_words.push(s.clone());
                    i += 1;
                }
                Tok::Lifetime => i += 1,
                Tok::Punct(c) => {
                    ret_words.push(c.to_string());
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    // Skip a `where` clause.
    while let Some(t) = toks.get(i) {
        match t.tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Punct('<') => i = skip_angles(toks, i),
            _ => i += 1,
        }
    }
    let (body, next) = match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct('{')) => {
            let close = match_brace(toks, i);
            (Some((i + 1, close)), close + 1)
        }
        _ => (None, i + 1),
    };
    let (owner, trait_impl, owner_kind) = match container {
        Some((o, t, k, _)) => (Some(o.clone()), t.clone(), *k),
        None => (None, None, OwnerKind::Free),
    };
    let item = FnItem {
        name,
        owner,
        owner_kind,
        trait_impl,
        params,
        has_self,
        ret: ret_words.join(" "),
        body,
        line,
        in_test: in_test.get(kw).copied().unwrap_or(false),
    };
    (Some(item), next)
}

/// Parses a parameter list between `open+1` and `close` (exclusive).
fn parse_params(toks: &[Token], start: usize, close: usize) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut i = start;
    while i < close {
        // Split one parameter: up to `,` at depth 0.
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut j = i;
        while j < close {
            match toks[j].tok {
                Tok::Punct(',') if angle == 0 && paren == 0 => break,
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !matches!(toks[j - 1].tok, Tok::Punct('-')) => angle -= 1,
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                _ => {}
            }
            j += 1;
        }
        // Analyze tokens i..j as one parameter.
        let mut colon: Option<usize> = None;
        let mut d = 0i32;
        for k in i..j {
            match toks[k].tok {
                Tok::Punct('<') => d += 1,
                Tok::Punct('>') => d -= 1,
                Tok::Punct(':') if d == 0 => {
                    // `::` path separators come as two `:` puncts.
                    let double = matches!(toks.get(k + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        || (k > i && matches!(toks[k - 1].tok, Tok::Punct(':')));
                    if !double {
                        colon = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        match colon {
            Some(c) => {
                // Name: last ident before the colon.
                let name = (i..c)
                    .rev()
                    .find_map(|k| match &toks[k].tok {
                        Tok::Ident(s) if s != "mut" => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                if name == "self" {
                    has_self = true;
                } else {
                    let (ty, _) = collect_type(toks, c + 1, j);
                    params.push(Param { name, ty });
                }
            }
            None => {
                // Receiver form: `self`, `&self`, `&mut self`, `&'a self`.
                if (i..j).any(|k| matches!(&toks[k].tok, Tok::Ident(s) if s == "self")) {
                    has_self = true;
                }
            }
        }
        i = j + 1;
    }
    (params, has_self)
}

/// Skips a balanced `(...)` starting at the `(` at `i`; returns the index
/// one past the matching `)`.
fn skip_parens(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips an attribute `#[...]` or `#![...]` starting at the `#` at `i`.
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
        j += 1;
    }
    if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return i + 1;
    }
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Returns the index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// The first "head" identifier of a normalized type string, skipping
/// reference/pointer/wrapper noise: `& mut Vec < Mutex < Shard > >` →
/// `Vec`; `Box < dyn PageStore >` → `Box`.
pub fn type_head(ty: &str) -> Option<String> {
    ty.split_whitespace()
        .find(|w| {
            w.chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && *w != "mut"
                && *w != "dyn"
                && *w != "const"
                && *w != "impl"
        })
        .map(str::to_string)
}

/// Whether a normalized type string names `word` as a whole token.
pub fn ty_contains(ty: &str, word: &str) -> bool {
    ty.split_whitespace().any(|w| w == word)
}

/// Extracts the "class" a lock type protects: the first concrete type
/// identifier inside the outermost `RwLock<...>` / `Mutex<...>`, skipping
/// transparent wrappers (`Box`, `Arc`, `Vec`, `Option`, `dyn`, refs). E.g.
/// `Vec < Mutex < Shard > >` → `Shard`; `RwLock < Box < dyn PageStore > >`
/// → `PageStore`. Returns `None` when `ty` holds no lock.
pub fn lock_class(ty: &str) -> Option<String> {
    let words: Vec<&str> = ty.split_whitespace().collect();
    let lock_at = words.iter().position(|w| *w == "RwLock" || *w == "Mutex")?;
    const TRANSPARENT: &[&str] = &[
        "Box", "Arc", "Rc", "Vec", "Option", "dyn", "mut", "&", "<", ">", ",",
    ];
    words
        .iter()
        .skip(lock_at + 1)
        .find(|w| {
            !TRANSPARENT.contains(*w)
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .map(|w| w.to_string())
}

/// Extracts the guarded class from a guard-returning type:
/// `RwLockReadGuard < StreamingWarehouse >` → `StreamingWarehouse` (the
/// first concrete type after the guard head). Returns `None` for
/// non-guard types.
pub fn guard_class(ret: &str) -> Option<String> {
    let words: Vec<&str> = ret.split_whitespace().collect();
    let at = words
        .iter()
        .position(|w| *w == "RwLockReadGuard" || *w == "RwLockWriteGuard" || *w == "MutexGuard")?;
    const TRANSPARENT: &[&str] = &[
        "Box", "Arc", "Rc", "Vec", "Option", "dyn", "mut", "&", "<", ">", ",",
    ];
    words
        .iter()
        .skip(at + 1)
        .find(|w| {
            !TRANSPARENT.contains(*w)
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .map(|w| w.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_free_and_impl_fns() {
        let src = r#"
            fn free_one(a: u32, b: &str) -> Result<(), Error> { a; }
            struct Holder { pool: Mutex<Inner>, n: usize }
            impl Holder {
                pub fn method(&self, x: Option<&QueryBudget>) -> bool { true }
            }
            trait Store {
                fn sync(&mut self) -> Result<(), Error>;
                fn provided(&self) -> usize { 0 }
            }
        "#;
        let p = parse_file("crates/x/src/lib.rs", src);
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            vec![
                "free_one",
                "Holder::method",
                "Store::sync",
                "Store::provided"
            ]
        );
        let free = &p.fns[0];
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].name, "a");
        assert_eq!(free.params[1].ty, "& str");
        assert!(free.ret.starts_with("Result"));
        assert!(free.body.is_some());
        let method = &p.fns[1];
        assert!(method.has_self);
        assert_eq!(method.params[0].ty, "Option < & QueryBudget >");
        let sync = &p.fns[2];
        assert!(sync.body.is_none());
        assert_eq!(sync.owner_kind, OwnerKind::Trait);
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.fields[0].ty, "Mutex < Inner >");
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let src = "impl fmt::Display for Report { fn fmt(&self) -> bool { true } }\n\
                   impl<S: Store> Engine<S> { fn run(&self) {} }";
        let p = parse_file("x.rs", src);
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["Report::fmt", "Engine::run"]);
    }

    #[test]
    fn cfg_test_fns_are_flagged() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} }";
        let p = parse_file("x.rs", src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn lock_and_guard_classes() {
        assert_eq!(lock_class("Vec < Mutex < Shard > >"), Some("Shard".into()));
        assert_eq!(
            lock_class("RwLock < Box < dyn PageStore > >"),
            Some("PageStore".into())
        );
        assert_eq!(
            lock_class("RwLock < StreamingWarehouse >"),
            Some("StreamingWarehouse".into())
        );
        assert_eq!(lock_class("usize"), None);
        assert_eq!(
            guard_class("RwLockWriteGuard < Box < dyn PageStore > >"),
            Some("PageStore".into())
        );
        assert_eq!(guard_class("Result < ( ) , Error >"), None);
    }

    #[test]
    fn where_clauses_and_tuple_structs_do_not_derail() {
        let src = "struct T(u32, String);\n\
                   struct W<S> where S: Clone { inner: S }\n\
                   fn g<T>(x: T) -> T where T: Clone { x }\n\
                   fn after() {}";
        let p = parse_file("x.rs", src);
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["g", "after"]);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.fields[0].owner, "W");
    }
}
