//! `sma-lint` — the architectural lint wall for the SMA workspace.
//!
//! A std-only, dependency-free static-analysis pass that tokenizes every
//! Rust source in the workspace with a small hand-rolled lexer
//! ([`lexer`]) and enforces the codified layering, panic-freedom,
//! determinism, and hygiene rules ([`rules`]) that the SMA consistency
//! argument rests on. See DESIGN.md §9 for the rule catalog and rationale.
//!
//! Run it as `cargo run -p sma-lint` (add `--json` for a machine-readable
//! report). Exit codes are script-friendly: `0` clean, `1` violations,
//! `2` internal error.
//!
//! Violations are suppressed only by an inline
//! `// sma-lint: allow(rule-id) -- justification` directive; a bare allow
//! without justification is itself a violation (`W1-bare-allow`), and a
//! justified allow that no longer suppresses anything is stale
//! (`W2-stale-allow`).
//!
//! `--analyze` runs the call-graph + dataflow passes ([`analyze`], built
//! on the item parser [`parse`] and the approximate call graph [`graph`]):
//! lock-order consistency (A1), QueryBudget completeness (A2),
//! error-swallowing (A3), and fsync confinement v2 (A4). See DESIGN.md
//! §14 for the engine design and each rule's invariant.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use analyze::{analyze_workspace, AnalyzeConfig, Finding};
pub use rules::{classify, lint_source, Diagnostic, RuleInfo, Severity, RULES};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".github",
    // The linter's own sources and fixtures contain deliberate rule
    // violations (fixtures assert each rule fires) — linting them would
    // make the workspace permanently dirty.
    "crates/sma-lint",
];

/// Walks `root` and lints every `.rs` file, returning diagnostics sorted
/// by file then line.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", f.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?;
        diags.extend(lint_source(&rel, &src));
    }
    diags.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(diags)
}

pub(crate) fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = dir
        .strip_prefix(root)
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .unwrap_or_default();
    if SKIP_DIRS.iter().any(|s| rel == *s) {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let ty = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if ty.is_dir() {
            collect_rs(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: ascends from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Renders diagnostics as a JSON report:
/// `{"clean":bool,"errors":n,"total":n,"counts":{rule:n},"diagnostics":[...]}`.
///
/// Every diagnostic is `{rule, severity, file, line, msg}` plus an
/// `allow_reason` key when an inline allow downgraded it — the same
/// normalized shape `--analyze --json` emits, so one consumer parses
/// both reports. `clean` means no *error*-severity diagnostics (allowed
/// findings stay visible at `warn`).
///
/// Hand-rolled (std-only crate); all emitted strings are escaped.
pub fn json_report(diags: &[Diagnostic]) -> String {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"clean\": {},\n", errors == 0));
    s.push_str(&format!("  \"errors\": {errors},\n"));
    s.push_str(&format!("  \"total\": {},\n", diags.len()));
    s.push_str("  \"counts\": {");
    let mut first = true;
    for (rule, n) in &counts {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{}\": {}", json_escape(rule), n));
    }
    if !counts.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("},\n");
    s.push_str("  \"diagnostics\": [");
    let mut first = true;
    for d in diags {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"",
            json_escape(d.rule),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
        if let Some(r) = &d.allow_reason {
            s.push_str(&format!(", \"allow_reason\": \"{}\"", json_escape(r)));
        }
        s.push('}');
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
