//! Call-graph + dataflow analysis passes (`sma-lint --analyze`).
//!
//! Four rule classes run over the [`crate::graph`] call graph — properties
//! a token-level lexer cannot see because they are facts about *who calls
//! whom while holding what*:
//!
//! - **A1-lock-order** — derives each function's lock acquisitions
//!   (RwLock/Mutex/shard locks, see [`crate::graph`]), propagates them
//!   through the call graph, and rejects (a) inconsistent acquisition
//!   orders between two lock classes anywhere in the workspace and
//!   (b) any fsync or blocking socket I/O reachable while a lock guard
//!   is live.
//! - **A2-budget-charging** — every query-serving function that reaches a
//!   page-read primitive must thread a `QueryBudget` (parameter, field on
//!   its type, or constructing one) or sit on the explicit
//!   ingest/recovery allowlist. Reachability is cut at budgeted and
//!   allowlisted functions, so the obligation lands on the outermost
//!   function that drops the budget, not its whole call chain.
//! - **A3-error-swallowing** — `let _ =` over a `Result`-returning call,
//!   `Err(_) =>` match arms discarding error payloads, and `.ok();`
//!   without a consumer. Intentional sinks carry an inline
//!   `// sma-lint: allow(A3-error-swallowing) -- reason` directive; the
//!   reason is surfaced as `allow_reason` in the report.
//! - **A4-fsync-confinement** — replaces token rule D3 with a call-graph
//!   proof: raw `sync_all`/`sync_data` may appear only inside the
//!   approved primitive wrappers, and in the residual graph (commit
//!   points removed) no function may reach a wrapper — i.e. every
//!   durability barrier goes through a WAL/flush/compaction commit point.
//!
//! Plus **W2-stale-allow**: config allowlist entries and inline analysis
//! allows that no longer match anything are themselves errors, so the
//! allowlist can only shrink toward live code.
//!
//! The allowlist policy: every entry is `(function, reason)`; an
//! allowlisted finding is still reported (severity `warn`, with
//! `allow_reason`) so the exemption stays auditable, but does not fail
//! the run or enter the baseline diff.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::graph::{effects, Effects, Graph};
use crate::lexer::Tok;
use crate::parse::{parse_file, ParsedFile};
use crate::rules::{classify, Severity, Target};

/// Rule IDs owned by the analysis passes (inline allows naming these are
/// validated here, not by the token linter).
pub const ANALYSIS_RULE_IDS: &[&str] = &[
    "A1-lock-order",
    "A2-budget-charging",
    "A3-error-swallowing",
    "A4-fsync-confinement",
];

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule ID (`A1-lock-order`, ..., `W2-stale-allow`).
    pub rule: &'static str,
    /// `Error` fails the run; allowlisted findings are downgraded to
    /// `Warn` and reported for audit.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Qualified function the finding is about (empty for config-level
    /// findings).
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
    /// The allowlist justification, when the finding is allowlisted.
    pub allow_reason: Option<String>,
}

/// An allowlist entry: a qualified function name plus the reason the
/// exemption is sound. Reasonless entries cannot be constructed — the
/// type makes the policy structural.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Qualified function (`Owner::name` or bare name).
    pub func: &'static str,
    /// Why the exemption is sound (surfaced as `allow_reason`).
    pub reason: &'static str,
}

/// Configuration for the analysis passes. Injectable so fixtures can run
/// tiny synthetic workspaces; [`AnalyzeConfig::workspace`] is the real
/// one.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeConfig {
    /// Page-read primitive names (bare): a call to one of these is a
    /// direct page read for A2.
    pub page_read_primitives: Vec<&'static str>,
    /// Crates whose library code is query-serving (A2 scope).
    pub a2_scope_crates: Vec<&'static str>,
    /// A2 exemptions: ingest/recovery/DDL paths that legitimately read
    /// pages without a budget.
    pub a2_allow: Vec<Allow>,
    /// A1 exemptions: functions that deliberately hold a guard across
    /// fsync/socket I/O (each must say why that cannot deadlock/stall).
    pub a1_allow: Vec<Allow>,
    /// A4: the only functions allowed to contain raw `sync_all`/
    /// `sync_data` tokens (the durability primitive wrappers).
    pub a4_wrappers: Vec<&'static str>,
    /// A4: blessed commit points — cut from the residual graph; every
    /// legitimate path to a wrapper goes through one of these.
    pub a4_commit_points: Vec<&'static str>,
    /// A4 exemptions (rare; prefer adding a commit point).
    pub a4_allow: Vec<Allow>,
}

impl AnalyzeConfig {
    /// The workspace configuration: primitives, scopes, commit points,
    /// and the audited exemption list for the SMA codebase.
    pub fn workspace() -> AnalyzeConfig {
        AnalyzeConfig {
            page_read_primitives: vec![
                "read_page",
                "for_each_on_page",
                "scan_page_into",
                "scan_bucket",
                "with_page",
                "columnar_bucket",
                "read_chunk",
            ],
            a2_scope_crates: vec!["sma-exec", "sma-server", "smadb"],
            a2_allow: vec![
                Allow {
                    func: "StreamingWarehouse::flush_until",
                    reason: "ingest flush path: sealing buckets re-reads pages to export segments; bounded by memtable size, not query traffic",
                },
                Allow {
                    func: "StreamingWarehouse::compact_until",
                    reason: "background compaction rewrites whole tables; page reads are the merge itself, budgeted by CompactionPolicy cadence",
                },
                Allow {
                    func: "Warehouse::scrub",
                    reason: "recovery scrub verifies every page by design; runs at open, never on the query path",
                },
                Allow {
                    func: "Warehouse::open_with_recovery",
                    reason: "recovery path: page reads rebuild committed state before any query is admitted",
                },
                Allow {
                    func: "Warehouse::save_to_dir",
                    reason: "bulk persistence exports every page once; DDL-time operation, not query-serving",
                },
                Allow {
                    func: "Warehouse::query",
                    reason: "documented unbudgeted convenience API for embedded use; the server path uses query_with_budget",
                },
                Allow {
                    func: "StreamingWarehouse::query",
                    reason: "documented unbudgeted convenience API; the server path uses query_with_budget",
                },
                Allow {
                    func: "export_merged_segment",
                    reason: "compaction helper: re-reads the tables it is merging; bounded by segment size and CompactionPolicy cadence, not query traffic",
                },
                Allow {
                    func: "StreamingWarehouse::create",
                    reason: "one-time warehouse creation seals the initial generation; runs before any query is admitted",
                },
                Allow {
                    func: "StreamingWarehouse::create_with_wal_store",
                    reason: "one-time warehouse creation seals the initial generation; runs before any query is admitted",
                },
                Allow {
                    func: "StreamingWarehouse::open_with_recovery",
                    reason: "recovery path: WAL replay and segment verification read pages to rebuild committed state before queries start",
                },
                Allow {
                    func: "seal_initial_generation",
                    reason: "create-time helper: exports the empty base generation exactly once",
                },
                Allow {
                    func: "StreamingWarehouse::define_sma",
                    reason: "DDL: building a new SMA scans the sealed segments once; administrative, not query-serving",
                },
                Allow {
                    func: "Warehouse::define_sma",
                    reason: "DDL: building a new SMA scans the table once; administrative, not query-serving",
                },
                Allow {
                    func: "Warehouse::insert",
                    reason: "ingest: appending re-reads the tail page to pack tuples and refreshes the tail SMA entry; write-path cost, not query-serving",
                },
                Allow {
                    func: "Warehouse::delete",
                    reason: "ingest: deletion locates the victim tuple and refreshes affected SMA entries; write-path cost, not query-serving",
                },
                Allow {
                    func: "Warehouse::refresh_smas",
                    reason: "maintenance: recomputing stale SMA entries rescans dirty buckets by design (the paper's §5 update discussion)",
                },
                Allow {
                    func: "Warehouse::heal",
                    reason: "maintenance: healing a damaged SMA entry rescans its bucket; administrative repair, not query-serving",
                },
                Allow {
                    func: "Warehouse::heal_all",
                    reason: "maintenance: full-set repair over heal(); administrative, not query-serving",
                },
                Allow {
                    func: "Warehouse::save_generation",
                    reason: "bulk persistence: exporting a generation reads every live page once; checkpoint-time operation",
                },
                Allow {
                    func: "Warehouse::save_delta_generation",
                    reason: "bulk persistence: delta export reads the appended page range once; checkpoint-time operation",
                },
                Allow {
                    func: "recover_sma",
                    reason: "recovery helper: rebuilds an SMA from table pages when its image fails CRC; runs under open_with_recovery",
                },
            ],
            a1_allow: vec![],
            a4_wrappers: vec!["FileStore::sync", "sync_dir", "atomic_write_file"],
            a4_commit_points: vec![
                // WAL durability points: append-group fsync, header init,
                // post-truncate sync.
                "Wal::sync",
                "Wal::create",
                "Wal::open",
                "Wal::truncate",
                // Buffer-pool write-back barriers: flush_all and its
                // cache-dropping sibling both end in a store sync.
                "BufferPool::flush_all",
                "BufferPool::clear_cache",
                // Segment export: pages are copied into the export store
                // and synced before the manifest ever names the segment.
                "Table::export_page_range",
                // SMA image write: allocate → write pages → sync, with a
                // stream-level CRC; the sync is the image's commit.
                "save_sma",
                // Manifest-last generation commits.
                "commit_manifest",
                "Warehouse::save_generation",
                "Warehouse::save_delta_generation",
                "Warehouse::save_to_dir",
                // The atomic SMA-image write (tmp + rename + dir sync) is
                // itself the per-file commit protocol.
                "save_sma_file",
            ],
            a4_allow: vec![],
        }
    }
}

/// Wall-time and size stats for the run (reported in JSON; the CI
/// bench-smoke job asserts the pass stays under its time budget).
#[derive(Debug, Clone, Default)]
pub struct AnalyzeStats {
    /// Files parsed.
    pub files: usize,
    /// Functions in the graph.
    pub functions: usize,
    /// Call edges (deduplicated name pairs).
    pub edges: usize,
    /// Wall time of the full pass, in milliseconds.
    pub elapsed_ms: u128,
}

/// Runs all passes over pre-loaded sources (fixture entry point; the
/// workspace walker filters to product library code before calling this).
pub fn analyze_sources(sources: &[(String, String)], cfg: &AnalyzeConfig) -> Vec<Finding> {
    let files: Vec<ParsedFile> = sources
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let g = Graph::build(&files);
    let mut findings = Vec::new();
    let full = effects(&g, &BTreeSet::new());
    let mut used_allows: BTreeSet<&'static str> = BTreeSet::new();
    pass_a1(&g, &files, cfg, &full, &mut findings, &mut used_allows);
    pass_a2(&g, &files, cfg, &mut findings, &mut used_allows);
    pass_a3(&g, &files, &mut findings);
    pass_a4(&g, &files, cfg, &mut findings, &mut used_allows);
    stale_config_allows(cfg, &used_allows, &mut findings);
    stale_inline_allows(&files, &findings.clone(), &mut findings);
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    findings
}

/// Walks the workspace and runs all passes over product library code.
pub fn analyze_workspace(root: &Path) -> Result<(Vec<Finding>, AnalyzeStats), String> {
    let started = std::time::Instant::now();
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    crate::collect_rs(root, root, &mut paths)?;
    paths.sort();
    let mut sources: Vec<(String, String)> = Vec::new();
    for p in &paths {
        let rel = p
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", p.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let c = classify(&rel);
        if !(c.product && c.target == Target::Lib && !c.test_support) {
            continue;
        }
        let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        sources.push((rel, src));
    }
    let cfg = AnalyzeConfig::workspace();
    let files: Vec<ParsedFile> = sources
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let g = Graph::build(&files);
    let stats_edges = g.edge_names().len();
    let stats_fns = g.fns.len();
    let findings = analyze_sources(&sources, &cfg);
    let stats = AnalyzeStats {
        files: sources.len(),
        functions: stats_fns,
        edges: stats_edges,
        elapsed_ms: started.elapsed().as_millis(),
    };
    Ok((findings, stats))
}

/// Looks up an allowlist entry for `func`, marking it used.
fn allow_for(
    allows: &[Allow],
    func: &str,
    used: &mut BTreeSet<&'static str>,
) -> Option<&'static str> {
    for a in allows {
        if a.func == func {
            used.insert(a.func);
            return Some(a.reason);
        }
    }
    None
}

/// A1: lock-order inversions and fsync/socket I/O under a live guard.
fn pass_a1(
    g: &Graph,
    files: &[ParsedFile],
    cfg: &AnalyzeConfig,
    full: &Effects,
    findings: &mut Vec<Finding>,
    used_allows: &mut BTreeSet<&'static str>,
) {
    // (outer class, inner class) → first (file, line, func) observed.
    let mut pairs: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();

    for f in &g.fns {
        let rel = &files[f.file].rel;
        let func = f.qualified();
        let allow = allow_for(&cfg.a1_allow, &func, used_allows);
        // Deduplicate per (class, kind) within one function.
        let mut reported: BTreeSet<(String, &'static str)> = BTreeSet::new();
        for a in &f.acquires {
            // Raw fsync tokens inside the guard span.
            let toks = &files[f.file].tokens;
            for (ti, t) in toks.iter().enumerate().take(a.live_end).skip(a.tok + 1) {
                if let Tok::Ident(n) = &t.tok {
                    if (n == "sync_all" || n == "sync_data")
                        && reported.insert((a.class.clone(), "raw-fsync"))
                    {
                        let _ = ti;
                        push_a1(
                            findings,
                            rel,
                            t.line,
                            &func,
                            format!(
                                "raw fsync while the `{}` lock guard ({}) is live — write back first, drop the guard, then sync",
                                a.class, a.via
                            ),
                            allow,
                        );
                    }
                }
            }
            for c in &f.calls {
                if c.tok <= a.tok || c.tok >= a.live_end {
                    continue;
                }
                // A method invoked *on* this guard operates on the
                // synchronized object under its own lock — inherent to a
                // synchronized type, not I/O under an unrelated guard.
                if c.recv_guard.as_deref() == Some(a.class.as_str()) {
                    continue;
                }
                let reaches_fsync = c.targets.iter().any(|&t| full.reaches_fsync[t]);
                let reaches_socket = c.targets.iter().any(|&t| full.reaches_socket[t]);
                if reaches_fsync && reported.insert((a.class.clone(), "fsync")) {
                    push_a1(
                        findings,
                        rel,
                        c.line,
                        &func,
                        format!(
                            "call to `{}` reaches fsync while the `{}` lock guard ({}) is live",
                            c.name, a.class, a.via
                        ),
                        allow,
                    );
                }
                if reaches_socket && reported.insert((a.class.clone(), "socket")) {
                    push_a1(
                        findings,
                        rel,
                        c.line,
                        &func,
                        format!(
                            "call to `{}` reaches blocking socket I/O while the `{}` lock guard ({}) is live",
                            c.name, a.class, a.via
                        ),
                        allow,
                    );
                }
                // Lock-order pairs: classes acquired transitively by the
                // callee while `a` is live.
                for &t in &c.targets {
                    for inner in &full.acquires[t] {
                        if *inner != a.class {
                            pairs
                                .entry((a.class.clone(), inner.clone()))
                                .or_insert_with(|| (rel.clone(), c.line, func.clone()));
                        }
                    }
                }
            }
            // Direct nested acquisitions in the same body.
            for b in &f.acquires {
                if b.tok > a.tok && b.tok < a.live_end && b.class != a.class {
                    pairs
                        .entry((a.class.clone(), b.class.clone()))
                        .or_insert_with(|| (rel.clone(), b.line, func.clone()));
                }
            }
        }
    }

    // Inversions: both (A,B) and (B,A) observed.
    let keys: Vec<(String, String)> = pairs.keys().cloned().collect();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (a, b) in keys {
        let rev = (b.clone(), a.clone());
        if pairs.contains_key(&rev) {
            let canon = if a < b {
                (a.clone(), b.clone())
            } else {
                rev.clone()
            };
            if !seen.insert(canon) {
                continue;
            }
            let (f1, l1, fn1) = &pairs[&(a.clone(), b.clone())];
            let (f2, l2, fn2) = &pairs[&rev];
            findings.push(Finding {
                rule: "A1-lock-order",
                severity: Severity::Error,
                file: f1.clone(),
                line: *l1,
                func: fn1.clone(),
                message: format!(
                    "inconsistent lock order: `{a}` then `{b}` here, but `{b}` then `{a}` at {f2}:{l2} (in {fn2}) — pick one order workspace-wide"
                ),
                allow_reason: None,
            });
        }
    }
}

fn push_a1(
    findings: &mut Vec<Finding>,
    file: &str,
    line: u32,
    func: &str,
    message: String,
    allow: Option<&'static str>,
) {
    findings.push(Finding {
        rule: "A1-lock-order",
        severity: if allow.is_some() {
            Severity::Warn
        } else {
            Severity::Error
        },
        file: file.to_string(),
        line,
        func: func.to_string(),
        message,
        allow_reason: allow.map(str::to_string),
    });
}

/// A2: budget-charging completeness.
fn pass_a2(
    g: &Graph,
    files: &[ParsedFile],
    cfg: &AnalyzeConfig,
    findings: &mut Vec<Finding>,
    used_allows: &mut BTreeSet<&'static str>,
) {
    let n = g.fns.len();
    let budgeted: Vec<bool> = g
        .fns
        .iter()
        .map(|f| {
            f.budget_param
                || f.budget_in_body
                || f.item
                    .owner
                    .as_deref()
                    .is_some_and(|o| g.owner_has_budget_field(o))
        })
        .collect();
    let allowed: Vec<Option<&'static str>> = g
        .fns
        .iter()
        .map(|f| allow_for(&cfg.a2_allow, &f.qualified(), used_allows))
        .collect();
    // Direct page-read call sites (by primitive name).
    let mut direct: Vec<Option<(String, u32)>> = vec![None; n];
    for (i, f) in g.fns.iter().enumerate() {
        // The primitives themselves (and their same-named overloads)
        // don't charge themselves.
        if cfg.page_read_primitives.contains(&f.item.name.as_str()) {
            continue;
        }
        for c in &f.calls {
            if cfg.page_read_primitives.contains(&c.name.as_str()) {
                direct[i] = Some((c.name.clone(), c.line));
                break;
            }
        }
    }
    // Fixpoint: unbudgeted reach, cut at budgeted/allowlisted functions.
    let mut reach: Vec<Option<(String, u32)>> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if reach[i].is_some() {
                continue;
            }
            let mut hit: Option<(String, u32)> = None;
            for c in &g.fns[i].calls {
                for &t in &c.targets {
                    if t == i {
                        continue;
                    }
                    if reach[t].is_some() && !budgeted[t] && allowed[t].is_none() {
                        hit = Some((c.name.clone(), c.line));
                        break;
                    }
                }
                if hit.is_some() {
                    break;
                }
            }
            if hit.is_some() {
                reach[i] = hit;
                changed = true;
            }
        }
    }
    for (i, f) in g.fns.iter().enumerate() {
        let rel = &files[f.file].rel;
        let crate_name = classify(rel).crate_name;
        if !cfg.a2_scope_crates.contains(&crate_name.as_str()) {
            continue;
        }
        let Some((via, line)) = &reach[i] else {
            continue;
        };
        if budgeted[i] {
            continue;
        }
        let func = f.qualified();
        let allow = allowed[i];
        findings.push(Finding {
            rule: "A2-budget-charging",
            severity: if allow.is_some() {
                Severity::Warn
            } else {
                Severity::Error
            },
            file: rel.clone(),
            line: *line,
            func: func.clone(),
            message: format!(
                "`{func}` reaches a page-read primitive (via `{via}`) without threading a QueryBudget — add a budget parameter/field or an ingest/recovery allowlist entry"
            ),
            allow_reason: allow.map(str::to_string),
        });
    }
}

/// A3: error swallowing. Inline allows (with reasons) are the sink
/// allowlist; they downgrade the finding to `Warn` and attach the reason.
fn pass_a3(g: &Graph, files: &[ParsedFile], findings: &mut Vec<Finding>) {
    // Function-name → returns-Result lookup (any candidate counts).
    let returns_result = |name: &str| -> bool {
        g.by_name(name)
            .iter()
            .any(|&i| crate::parse::ty_contains(&g.fns[i].item.ret, "Result"))
    };
    for f in &g.fns {
        let Some((start, end)) = f.item.body else {
            continue;
        };
        let rel = &files[f.file].rel;
        let toks = &files[f.file].tokens;
        let func = f.qualified();
        let allows = &files[f.file].allows;
        let allow_at = |line: u32| -> Option<String> {
            allows
                .iter()
                .find(|a| {
                    a.justified
                        && (a.line == line || a.line + 1 == line)
                        && a.rules.iter().any(|r| r == "A3-error-swallowing")
                })
                .map(|a| a.reason.clone())
        };
        let mut emit = |line: u32, message: String| {
            let allow = allow_at(line);
            findings.push(Finding {
                rule: "A3-error-swallowing",
                severity: if allow.is_some() {
                    Severity::Warn
                } else {
                    Severity::Error
                },
                file: rel.clone(),
                line,
                func: func.clone(),
                message,
                allow_reason: allow,
            });
        };
        let mut i = start;
        while i < end {
            match &toks[i].tok {
                // `let _ = <expr calling a Result-returning fn>;`
                Tok::Ident(k) if k == "let" => {
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(u)) if u == "_")
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('=')))
                    {
                        // Scan the RHS to `;` for a call to a known
                        // Result-returning function.
                        let mut j = i + 3;
                        let mut culprit: Option<String> = None;
                        while j < end && !matches!(toks[j].tok, Tok::Punct(';')) {
                            if let Tok::Ident(n) = &toks[j].tok {
                                if matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                                    && returns_result(n)
                                {
                                    culprit = Some(n.clone());
                                    break;
                                }
                            }
                            j += 1;
                        }
                        if let Some(n) = culprit {
                            emit(
                                toks[i].line,
                                format!(
                                    "`let _ =` discards the Result of `{n}` — handle it, propagate it, or allowlist the sink with a reason"
                                ),
                            );
                        }
                    }
                    i += 1;
                }
                // `Err(_) =>` — wildcard arm discarding the payload.
                Tok::Ident(k) if k == "Err" => {
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(u)) if u == "_")
                        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(')')))
                        && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct('=')))
                        && matches!(toks.get(i + 5).map(|t| &t.tok), Some(Tok::Punct('>')))
                    {
                        emit(
                            toks[i].line,
                            "`Err(_) =>` discards the error payload — bind it (log, wrap, or count it) or allowlist the sink with a reason"
                                .to_string(),
                        );
                    }
                    i += 1;
                }
                // `.ok();` — Result converted to Option and dropped.
                Tok::Ident(k) if k == "ok" => {
                    if i > start
                        && matches!(toks[i - 1].tok, Tok::Punct('.'))
                        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')))
                        && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(';')))
                    {
                        emit(
                            toks[i].line,
                            "`.ok();` silences a Result with no consumer — handle the error or allowlist the sink with a reason"
                                .to_string(),
                        );
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
}

/// A4: fsync confinement v2.
fn pass_a4(
    g: &Graph,
    files: &[ParsedFile],
    cfg: &AnalyzeConfig,
    findings: &mut Vec<Finding>,
    used_allows: &mut BTreeSet<&'static str>,
) {
    let is_wrapper = |func: &str| -> bool { cfg.a4_wrappers.contains(&func) };
    let is_commit = |func: &str| -> bool { cfg.a4_commit_points.contains(&func) };

    // Part 1: raw sync tokens only inside approved wrappers.
    for f in &g.fns {
        let func = f.qualified();
        if f.raw_sync_lines.is_empty() || is_wrapper(&func) {
            continue;
        }
        let rel = &files[f.file].rel;
        for &line in &f.raw_sync_lines {
            findings.push(Finding {
                rule: "A4-fsync-confinement",
                severity: Severity::Error,
                file: rel.clone(),
                line,
                func: func.clone(),
                message: format!(
                    "raw sync_all/sync_data in `{func}` — only the approved wrappers ({}) may fsync directly",
                    cfg.a4_wrappers.join(", ")
                ),
                allow_reason: None,
            });
        }
    }

    // Part 2: in the residual graph (commit points cut), nothing may
    // reach a wrapper.
    let n = g.fns.len();
    let wrapper_idx: Vec<bool> = g.fns.iter().map(|f| is_wrapper(&f.qualified())).collect();
    let commit_idx: Vec<bool> = g.fns.iter().map(|f| is_commit(&f.qualified())).collect();
    let mut reach: Vec<Option<(String, u32)>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if reach[i].is_some() || commit_idx[i] {
                continue;
            }
            let mut hit: Option<(String, u32)> = None;
            for c in &g.fns[i].calls {
                for &t in &c.targets {
                    if t == i {
                        continue;
                    }
                    if commit_idx[t] {
                        continue; // path is blessed past this point
                    }
                    if wrapper_idx[t] || reach[t].is_some() {
                        hit = Some((c.name.clone(), c.line));
                        break;
                    }
                }
                if hit.is_some() {
                    break;
                }
            }
            if hit.is_some() {
                reach[i] = hit;
                changed = true;
            }
        }
    }
    for (i, f) in g.fns.iter().enumerate() {
        let func = f.qualified();
        if wrapper_idx[i] || commit_idx[i] {
            continue;
        }
        let Some((via, line)) = &reach[i] else {
            continue;
        };
        let allow = allow_for(&cfg.a4_allow, &func, used_allows);
        let rel = &files[f.file].rel;
        findings.push(Finding {
            rule: "A4-fsync-confinement",
            severity: if allow.is_some() {
                Severity::Warn
            } else {
                Severity::Error
            },
            file: rel.clone(),
            line: *line,
            func: func.clone(),
            message: format!(
                "`{func}` can reach a raw-fsync wrapper (via `{via}`) without passing a WAL/flush/compaction commit point — route the barrier through one"
            ),
            allow_reason: allow.map(str::to_string),
        });
    }
}

/// W2: config allowlist entries that matched no finding are stale.
fn stale_config_allows(
    cfg: &AnalyzeConfig,
    used: &BTreeSet<&'static str>,
    findings: &mut Vec<Finding>,
) {
    for (list, rule) in [
        (&cfg.a1_allow, "A1"),
        (&cfg.a2_allow, "A2"),
        (&cfg.a4_allow, "A4"),
    ] {
        for a in list {
            if !used.contains(a.func) {
                findings.push(Finding {
                    rule: "W2-stale-allow",
                    severity: Severity::Error,
                    file: "(analyze-config)".to_string(),
                    line: 0,
                    func: a.func.to_string(),
                    message: format!(
                        "{rule} allowlist entry for `{}` matches no finding — the code it excused is gone; drop the entry",
                        a.func
                    ),
                    allow_reason: None,
                });
            }
        }
    }
}

/// W2: inline allows naming analysis rules that suppressed nothing.
fn stale_inline_allows(files: &[ParsedFile], produced: &[Finding], findings: &mut Vec<Finding>) {
    for pf in files {
        for a in &pf.allows {
            if !a.justified {
                continue; // W1's problem, reported by the token linter
            }
            let analysis_rules: Vec<&String> = a
                .rules
                .iter()
                .filter(|r| ANALYSIS_RULE_IDS.contains(&r.as_str()))
                .collect();
            for rule in analysis_rules {
                let used = produced.iter().any(|f| {
                    f.rule == rule.as_str()
                        && f.file == pf.rel
                        && (f.line == a.line || f.line == a.line + 1)
                        && f.allow_reason.is_some()
                });
                if !used {
                    findings.push(Finding {
                        rule: "W2-stale-allow",
                        severity: Severity::Error,
                        file: pf.rel.clone(),
                        line: a.line,
                        func: String::new(),
                        message: format!(
                            "inline allow({rule}) suppresses nothing — the finding it excused is gone; drop the directive"
                        ),
                        allow_reason: None,
                    });
                }
            }
        }
    }
}

/// Renders the analysis report as JSON:
/// `{"clean":…,"stats":{…},"findings":[{rule,severity,file,line,func,msg,allow_reason?}]}`.
pub fn analyze_json_report(findings: &[Finding], stats: &AnalyzeStats) -> String {
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"clean\": {},\n", errors == 0));
    s.push_str(&format!("  \"errors\": {errors},\n"));
    s.push_str(&format!("  \"total\": {},\n", findings.len()));
    s.push_str(&format!(
        "  \"stats\": {{\"files\": {}, \"functions\": {}, \"edges\": {}, \"elapsed_ms\": {}}},\n",
        stats.files, stats.functions, stats.edges, stats.elapsed_ms
    ));
    s.push_str("  \"findings\": [");
    let mut first = true;
    for f in findings {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"func\": \"{}\", \"msg\": \"{}\"",
            crate::json_escape(f.rule),
            f.severity.label(),
            crate::json_escape(&f.file),
            f.line,
            crate::json_escape(&f.func),
            crate::json_escape(&f.message),
        ));
        if let Some(r) = &f.allow_reason {
            s.push_str(&format!(
                ", \"allow_reason\": \"{}\"",
                crate::json_escape(r)
            ));
        }
        s.push('}');
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Stable identity of a finding for baseline comparison: line numbers
/// churn with unrelated edits, so the key is `rule|file|func`.
pub fn finding_key(f: &Finding) -> String {
    format!("{}|{}|{}", f.rule, f.file, f.func)
}

/// Renders the committed-baseline file: the keys of every error-severity
/// finding, sorted.
pub fn baseline_json(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(finding_key)
        .collect();
    keys.sort();
    keys.dedup();
    let mut s = String::new();
    s.push_str("{\n  \"findings\": [");
    let mut first = true;
    for k in &keys {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{}\"", crate::json_escape(k)));
    }
    if !keys.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Parses a baseline file (the exact format [`baseline_json`] writes —
/// a JSON object with a `findings` array of strings).
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    // Tolerant extraction: every quoted string that contains two `|`
    // separators is a key; the format has no other such strings.
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let s = &after[..end];
        if s.matches('|').count() == 2 {
            keys.insert(s.to_string());
        }
        rest = &after[end + 1..];
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], cfg: &AnalyzeConfig) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&sources, cfg)
    }

    fn errors<'a>(fs: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
        fs.iter()
            .filter(|f| f.rule == rule && f.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn baseline_roundtrip() {
        let f = Finding {
            rule: "A1-lock-order",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            func: "Pool::flush".into(),
            message: "m".into(),
            allow_reason: None,
        };
        let text = baseline_json(std::slice::from_ref(&f));
        let keys = parse_baseline(&text);
        assert!(keys.contains(&finding_key(&f)));
        assert_eq!(keys.len(), 1);
        assert!(parse_baseline("{\n  \"findings\": []\n}\n").is_empty());
    }

    #[test]
    fn stale_config_allow_fires_w2() {
        let cfg = AnalyzeConfig {
            a1_allow: vec![Allow {
                func: "Ghost::gone",
                reason: "excuses nothing",
            }],
            ..AnalyzeConfig::default()
        };
        let fs = run(&[("crates/sma-core/src/lib.rs", "fn live() {}")], &cfg);
        let w2 = errors(&fs, "W2-stale-allow");
        assert_eq!(w2.len(), 1);
        assert!(w2[0].message.contains("Ghost::gone"));
    }
}
