//! A small hand-rolled Rust lexer.
//!
//! The lexer understands just enough Rust to make lexical rules sound:
//! line and (nested) block comments, plain and raw strings, byte strings,
//! char literals vs. lifetimes, raw identifiers, and numeric literals.
//! Everything a rule matches on is a real code token — never text inside a
//! string or comment.
//!
//! Comments are not emitted as tokens, but their text is scanned for
//! `sma-lint: allow(...)` directives, which are collected per line so the
//! rule engine can honor (or reject) them.

/// A single lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`foo`, `as`, `unwrap`). Raw identifiers
    /// (`r#type`) are normalized to their bare name.
    Ident(String),
    /// Integer literal, verbatim (`0`, `0xFF_u32`).
    Int(String),
    /// Float literal, verbatim.
    Float(String),
    /// Any string, raw-string, byte-string, or char literal (content dropped).
    Literal,
    /// A lifetime such as `'a` (name dropped).
    Lifetime,
    /// Single punctuation character (`.`, `(`, `[`, `!`, `#`, ...).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// An `// sma-lint: allow(rule-id) -- justification` directive found in a
/// comment. The directive suppresses matching diagnostics on its own line
/// and on the following line (so it can sit above the offending code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Rule IDs listed inside `allow(...)`, comma separated.
    pub rules: Vec<String>,
    /// Whether a non-empty justification follows the closing paren
    /// (after a `--` separator). Bare allows are themselves a violation.
    pub justified: bool,
    /// The justification text (empty when `justified` is false). Carried
    /// into reports as `allow_reason`.
    pub reason: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow directives harvested from comments.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src` into tokens and allow directives.
///
/// The lexer is total: unexpected bytes are skipped rather than reported,
/// because the compiler — not this tool — owns syntax errors.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Returns the char at `i + k`, if any.
    let peek = |i: usize, k: usize| -> Option<char> { bytes.get(i + k).copied() };

    while i < bytes.len() {
        let c = match bytes.get(i) {
            Some(&c) => c,
            None => break,
        };
        // --- whitespace -------------------------------------------------
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // --- comments ---------------------------------------------------
        if c == '/' && peek(i, 1) == Some('/') {
            let start = i;
            while i < bytes.len() && bytes.get(i) != Some(&'\n') {
                i += 1;
            }
            let text: String = bytes.get(start..i).unwrap_or(&[]).iter().collect();
            scan_allow(&text, line, &mut out.allows);
            continue;
        }
        if c == '/' && peek(i, 1) == Some('*') {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1u32;
            while i < bytes.len() && depth > 0 {
                match (bytes.get(i), peek(i, 1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        i += 2;
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        i += 2;
                    }
                    (Some('\n'), _) => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            let text: String = bytes.get(start..i).unwrap_or(&[]).iter().collect();
            scan_allow(&text, start_line, &mut out.allows);
            continue;
        }
        // --- raw strings & raw identifiers ------------------------------
        if c == 'r' || c == 'b' {
            // br"..." / rb is not legal; handle r"...", r#"..."#, b"...",
            // br"...", b'...' and raw identifiers r#name.
            let mut j = i;
            let mut saw_b = false;
            if bytes.get(j) == Some(&'b') {
                saw_b = true;
                j += 1;
            }
            let saw_r = bytes.get(j) == Some(&'r');
            if saw_r {
                j += 1;
            }
            if saw_r {
                // Count hashes.
                let mut hashes = 0usize;
                while bytes.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
                if bytes.get(j + hashes) == Some(&'"') {
                    // Raw (byte) string: scan to `"` followed by `hashes` #s.
                    i = j + hashes + 1;
                    loop {
                        match bytes.get(i) {
                            None => break,
                            Some('\n') => {
                                line += 1;
                                i += 1;
                            }
                            Some('"') => {
                                let mut k = 0usize;
                                while k < hashes && bytes.get(i + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                i += 1 + k;
                                if k == hashes {
                                    break;
                                }
                            }
                            Some(_) => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                    continue;
                }
                if !saw_b && hashes == 1 && bytes.get(j + 1).is_some_and(|&c| is_ident_start(c)) {
                    // Raw identifier r#name.
                    let mut k = j + 1;
                    while bytes.get(k).is_some_and(|&c| is_ident_continue(c)) {
                        k += 1;
                    }
                    let name: String = bytes.get(j + 1..k).unwrap_or(&[]).iter().collect();
                    out.tokens.push(Token {
                        tok: Tok::Ident(name),
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            if saw_b && bytes.get(i + 1) == Some(&'"') {
                // Byte string b"..."
                i = consume_quoted(&bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
                continue;
            }
            if saw_b && bytes.get(i + 1) == Some(&'\'') {
                // Byte char b'x'
                i = consume_char_literal(&bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // --- identifiers ------------------------------------------------
        if is_ident_start(c) {
            let start = i;
            while bytes.get(i).is_some_and(|&c| is_ident_continue(c)) {
                i += 1;
            }
            let name: String = bytes.get(start..i).unwrap_or(&[]).iter().collect();
            out.tokens.push(Token {
                tok: Tok::Ident(name),
                line,
            });
            continue;
        }
        // --- strings ----------------------------------------------------
        if c == '"' {
            i = consume_quoted(&bytes, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Literal,
                line,
            });
            continue;
        }
        // --- char literal vs lifetime -----------------------------------
        if c == '\'' {
            let next = peek(i, 1);
            let after = peek(i, 2);
            let is_lifetime = next.is_some_and(is_ident_start) && after != Some('\'');
            if is_lifetime {
                i += 1;
                while bytes.get(i).is_some_and(|&c| is_ident_continue(c)) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
            } else {
                i = consume_char_literal(&bytes, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
            }
            continue;
        }
        // --- numbers ----------------------------------------------------
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while bytes
                .get(i)
                .is_some_and(|&ch| ch.is_ascii_alphanumeric() || ch == '_')
            {
                i += 1;
            }
            let mut is_float = false;
            // A `.` continues the number only when followed by a digit
            // (so `0..10` stays two ints and a range).
            if bytes.get(i) == Some(&'.') && peek(i, 1).is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                i += 1;
                while bytes
                    .get(i)
                    .is_some_and(|&ch| ch.is_ascii_alphanumeric() || ch == '_')
                {
                    i += 1;
                }
            }
            let text: String = bytes.get(start..i).unwrap_or(&[]).iter().collect();
            let tok = if is_float || text.contains('e') && !text.starts_with("0x") {
                // `1e3` floats; hex like 0xE3 stays Int via the prefix check.
                Tok::Float(text)
            } else {
                Tok::Int(text)
            };
            out.tokens.push(Token { tok, line });
            continue;
        }
        // --- punctuation ------------------------------------------------
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consumes a `"`-delimited string starting at `i` (which must point at the
/// opening quote). Returns the index one past the closing quote.
fn consume_quoted(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < bytes.len() {
        match bytes.get(i) {
            Some('\\') => {
                // An escaped newline (string line-continuation) still ends
                // a source line — count it or every later line drifts.
                if bytes.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            Some('\n') => {
                *line += 1;
                i += 1;
            }
            Some('"') => return i + 1,
            Some(_) => i += 1,
            None => break,
        }
    }
    i
}

/// Consumes a `'`-delimited char literal starting at `i`. Returns the index
/// one past the closing quote.
fn consume_char_literal(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < bytes.len() {
        match bytes.get(i) {
            Some('\\') => {
                if bytes.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            Some('\n') => {
                *line += 1;
                i += 1;
            }
            Some('\'') => return i + 1,
            Some(_) => i += 1,
            None => break,
        }
    }
    i
}

/// Scans comment text for `sma-lint: allow(id[, id]) -- justification`.
fn scan_allow(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let Some(pos) = comment.find("sma-lint:") else {
        return;
    };
    let rest = comment
        .get(pos + "sma-lint:".len()..)
        .unwrap_or("")
        .trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = body.find(')') else {
        return;
    };
    let ids: Vec<String> = body
        .get(..close)
        .unwrap_or("")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let tail = body.get(close + 1..).unwrap_or("").trim_start();
    // A justification is required: `-- <non-empty text>`.
    let reason = tail
        .strip_prefix("--")
        .map(|j| j.trim().trim_end_matches("*/").trim().to_string())
        .unwrap_or_default();
    if !ids.is_empty() {
        out.push(AllowDirective {
            line,
            rules: ids,
            justified: !reason.is_empty(),
            reason,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // unwrap() in a comment
            /* panic!() in /* nested */ block */
            let s = "unwrap() inside string";
            let r = r#"expect( in raw string "quoted" here"#;
            let c = '"';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Literal)
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_directives_parsed() {
        let src = "\n// sma-lint: allow(P1-unwrap) -- init-only, len checked above\nx.unwrap();\n// sma-lint: allow(U2-debug-output)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        let a = lexed.allows.first().expect("first directive");
        assert_eq!(a.line, 2);
        assert_eq!(a.rules, vec!["P1-unwrap".to_string()]);
        assert!(a.justified);
        let b = lexed.allows.get(1).expect("second directive");
        assert!(!b.justified);
    }

    #[test]
    fn raw_idents_and_numbers() {
        let src = "let r#type = 0xFF_u32; let x = 1.5e3; let y = 0..10;";
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Ident("type".into())));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Int(s) if s == "0xFF_u32")));
        // `0..10` is two ints, not a float.
        let ints = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Int(_)))
            .count();
        assert!(ints >= 3);
    }
}
