//! Workspace symbol table and approximate call graph.
//!
//! [`Graph::build`] flattens every parsed file's functions into one symbol
//! table, then extracts call sites and lock/fsync/budget facts from each
//! body. Resolution is deliberately approximate and *conservative in the
//! direction each rule needs*:
//!
//! - `free_fn(...)` resolves to every free function of that name (usually
//!   exactly one across the workspace).
//! - `Type::method(...)` resolves to that type's method when known.
//! - `recv.method(...)` resolves through the receiver when it is `self`,
//!   `self.field` (struct-field type registry), a typed parameter, or the
//!   result of a guard-returning lock wrapper. When the receiver class is
//!   a trait — or the class is unknown — the call fans out to **every**
//!   function of that name: dyn dispatch and generics are treated as
//!   worst case, so "does anything reachable fsync?" errs toward yes.
//! - A bare identifier in argument position naming a known function
//!   (`.map(lock_shard)`) adds an edge too — higher-order acquisition
//!   sites like `shards.iter().map(lock_shard)` must not disappear.
//!
//! Lock acquisitions are recognized three ways: `.read()`/`.write()`/
//! `.lock()` on a receiver whose field/param type holds a `RwLock`/
//! `Mutex` (the lock class is the protected type, see
//! [`crate::parse::lock_class`]), calls to *lock-wrapper* functions whose
//! return type is a guard ([`crate::parse::guard_class`]), and bare
//! references to such wrappers in argument position. Each acquisition
//! carries a liveness span: to the end of the enclosing block for
//! let-bound guards (shortened by an explicit `drop(name)`), to the end
//! of the statement for temporaries.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::parse::{guard_class, lock_class, FnItem, OwnerKind, Param, ParsedFile};

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Candidate callee indexes into [`Graph::fns`] (worst-case set).
    pub targets: Vec<usize>,
    /// The callee name as written.
    pub name: String,
    /// Token index of the callee name (into the owning file's stream).
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// When the receiver is a lock *guard*, the guarded class: the call is
    /// an operation on the synchronized object under its own lock, which
    /// A1 treats as inherent rather than as I/O under an unrelated guard.
    pub recv_guard: Option<String>,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// The lock class (protected type name), e.g. `Shard`.
    pub class: String,
    /// Token index of the acquisition site.
    pub tok: usize,
    /// Token index one past the guard's liveness (end of statement for
    /// temporaries, end of enclosing block or `drop(..)` for let-bound).
    pub live_end: usize,
    /// 1-based source line.
    pub line: u32,
    /// How the guard is held (for diagnostics): `let <name>` or `temp`.
    pub via: String,
}

/// One function in the graph, with extracted facts.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the input slice.
    pub file: usize,
    /// The parsed item (signature, body span).
    pub item: FnItem,
    /// Call sites found in the body.
    pub calls: Vec<Call>,
    /// Lock acquisitions found in the body.
    pub acquires: Vec<Acquire>,
    /// Lines of raw `sync_all` / `sync_data` tokens in the body.
    pub raw_sync_lines: Vec<u32>,
    /// Whether a parameter is a socket type (`TcpStream`, ...): the
    /// function performs blocking socket I/O by construction.
    pub socket_primitive: bool,
    /// Lock class this function hands out, when its return type is a
    /// guard (`read_warehouse` → `StreamingWarehouse`).
    pub lock_wrapper: Option<String>,
    /// Whether a parameter type names `QueryBudget`.
    pub budget_param: bool,
    /// Whether the body names `QueryBudget` (constructs or forwards one).
    pub budget_in_body: bool,
}

impl FnNode {
    /// `Owner::name` or bare `name`.
    pub fn qualified(&self) -> String {
        self.item.qualified()
    }
}

/// The workspace-wide approximate call graph.
#[derive(Debug)]
pub struct Graph {
    /// All non-test functions, in file order.
    pub fns: Vec<FnNode>,
    /// name → fn indexes (methods and free functions alike).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → fn indexes.
    by_qual: BTreeMap<(String, String), Vec<usize>>,
    /// (trait, method name) → fn indexes of the implementing methods
    /// (from `impl Trait for Type` blocks).
    by_trait_impl: BTreeMap<(String, String), Vec<usize>>,
    /// (struct, field) → normalized type text.
    field_ty: BTreeMap<(String, String), String>,
    /// Every type name that owns a method or field in the workspace.
    owners: BTreeSet<String>,
    /// Struct/trait names with a `QueryBudget`-typed field (their methods
    /// count as budget-threading).
    budget_owners: BTreeSet<String>,
}

/// Socket parameter types that make a function a blocking-I/O primitive.
const SOCKET_TYPES: &[&str] = &[
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
];

/// Identifiers that look like calls but never are.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "let", "in", "as", "move", "else",
    "Some", "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc", "Cell", "RefCell",
];

/// Ubiquitous std method names. A method call on an *unresolved* receiver
/// with one of these names is overwhelmingly a std-library call
/// (collections, iterators, options, I/O), so worst-casing it onto every
/// same-named workspace method would drown the graph in false edges.
/// These calls are dropped instead — a documented approximation limit
/// (DESIGN.md §14): a workspace method sharing a std name is only linked
/// when its receiver resolves (self, typed field/param, or lock-wrapper
/// result).
const STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "clone",
    "fmt",
    "next",
    "collect",
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "for_each",
    "count",
    "sum",
    "min",
    "max",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "flat_map",
    "flatten",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "last",
    "first",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "extend",
    "drain",
    "clear",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "split",
    "split_at",
    "join",
    "concat",
    "trim",
    "starts_with",
    "ends_with",
    "replace",
    "parse",
    "to_string",
    "to_owned",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "into",
    "cmp",
    "partial_cmp",
    "eq",
    "ne",
    "hash",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "windows",
    "chunks",
    "copy_from_slice",
    "swap",
    "binary_search",
    "binary_search_by",
    "abs",
    "pow",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "wrapping_add",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "expect",
    "unwrap",
    "display",
    "path",
    "file_name",
    "extension",
    "exists",
    "read",
    "write",
    "flush",
    "read_exact",
    "write_all",
    "read_to_string",
    "read_to_end",
    "seek",
    "lines",
    "bytes",
    "chars",
    "strip_prefix",
    "strip_suffix",
    "to_lowercase",
    "to_uppercase",
    "get_or_insert_with",
    "or_insert",
    "or_insert_with",
    "or_default",
    "push_str",
    "step_by",
    "peekable",
    "peek",
    "max_key",
    "contains_key",
    "splitn",
    "repeat",
    "chunks_exact",
    "to_le_bytes",
    "from_le_bytes",
    "spawn",
    "update",
];

impl Graph {
    /// Builds the graph over parsed files. Test-gated functions are
    /// excluded from the symbol table and get no nodes.
    pub fn build(files: &[ParsedFile]) -> Graph {
        let mut g = Graph {
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            by_trait_impl: BTreeMap::new(),
            field_ty: BTreeMap::new(),
            owners: BTreeSet::new(),
            budget_owners: BTreeSet::new(),
        };
        for (fi, pf) in files.iter().enumerate() {
            for field in &pf.fields {
                g.owners.insert(field.owner.clone());
                g.field_ty
                    .insert((field.owner.clone(), field.name.clone()), field.ty.clone());
                if crate::parse::ty_contains(&field.ty, "QueryBudget") {
                    g.budget_owners.insert(field.owner.clone());
                }
            }
            for item in &pf.fns {
                if item.in_test {
                    continue;
                }
                let idx = g.fns.len();
                g.by_name.entry(item.name.clone()).or_default().push(idx);
                if let Some(o) = &item.owner {
                    g.owners.insert(o.clone());
                    g.by_qual
                        .entry((o.clone(), item.name.clone()))
                        .or_default()
                        .push(idx);
                }
                if let Some(t) = &item.trait_impl {
                    g.by_trait_impl
                        .entry((t.clone(), item.name.clone()))
                        .or_default()
                        .push(idx);
                }
                let socket_primitive = item.params.iter().any(|p| {
                    SOCKET_TYPES
                        .iter()
                        .any(|s| crate::parse::ty_contains(&p.ty, s))
                });
                let budget_param = item
                    .params
                    .iter()
                    .any(|p| crate::parse::ty_contains(&p.ty, "QueryBudget"));
                g.fns.push(FnNode {
                    file: fi,
                    item: item.clone(),
                    calls: Vec::new(),
                    acquires: Vec::new(),
                    raw_sync_lines: Vec::new(),
                    socket_primitive,
                    lock_wrapper: guard_class(&item.ret),
                    budget_param,
                    budget_in_body: false,
                });
            }
        }
        // Second pass: extract calls and lock facts from each body.
        for idx in 0..g.fns.len() {
            g.extract_body_facts(idx, files);
        }
        g
    }

    /// All function indexes with the given bare name.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Function indexes for `Owner::name`.
    pub fn by_qual(&self, owner: &str, name: &str) -> &[usize] {
        self.by_qual
            .get(&(owner.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `owner` has a `QueryBudget`-typed field.
    pub fn owner_has_budget_field(&self, owner: &str) -> bool {
        self.budget_owners.contains(owner)
    }

    /// All qualified symbol names, sorted (fixture assertions).
    pub fn symbol_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.fns.iter().map(|f| f.qualified()).collect();
        v.sort();
        v
    }

    /// All edges as (caller, callee) qualified-name pairs, sorted and
    /// deduplicated (fixture assertions).
    pub fn edge_names(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = Vec::new();
        for f in &self.fns {
            for c in &f.calls {
                for &t in &c.targets {
                    v.push((f.qualified(), self.fns[t].qualified()));
                }
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// Resolves a method call on a receiver class per the worst-case
    /// policy: concrete struct class → its method only (if present);
    /// trait class → every function with the name (dyn dispatch);
    /// known class with no workspace method → a std method, no edge;
    /// unknown receiver → every same-named method, unless the name is a
    /// ubiquitous std method ([`STD_METHODS`]).
    fn resolve_method(&self, class: Option<&str>, name: &str) -> Vec<usize> {
        if let Some(c) = class {
            let exact = self.by_qual(c, name);
            if !exact.is_empty() {
                let is_trait = exact
                    .iter()
                    .any(|&i| self.fns[i].item.owner_kind == OwnerKind::Trait);
                if !is_trait {
                    return exact.to_vec();
                }
                // Trait method: worst-case dyn dispatch — the trait's
                // declaration/default plus every *implementor's* method
                // (fan-out restricted to `impl Trait for Type` blocks; an
                // unrelated same-named method is not a dispatch target).
                let mut all: Vec<usize> = exact.to_vec();
                if let Some(impls) = self.by_trait_impl.get(&(c.to_string(), name.to_string())) {
                    all.extend(impls.iter().copied());
                }
                all.sort_unstable();
                all.dedup();
                return all;
            }
            // The receiver type is known and the workspace defines no such
            // method on it: a std-library call (Vec::push, BTreeMap::get).
            return Vec::new();
        }
        if STD_METHODS.contains(&name) {
            return Vec::new();
        }
        self.by_name(name).to_vec()
    }

    /// Extracts calls, acquisitions, and raw-sync facts for `fns[idx]`.
    fn extract_body_facts(&mut self, idx: usize, files: &[ParsedFile]) {
        let (file_idx, body, owner, params) = {
            let f = &self.fns[idx];
            let Some(body) = f.item.body else { return };
            (f.file, body, f.item.owner.clone(), f.item.params.clone())
        };
        let toks = &files[file_idx].tokens;
        let (start, end) = body;
        let locals = collect_locals(self, toks, start, end, owner.as_deref(), &params);
        let mut calls: Vec<Call> = Vec::new();
        let mut acquires: Vec<Acquire> = Vec::new();
        let mut raw_sync_lines: Vec<u32> = Vec::new();
        let mut budget_in_body = false;

        let mut i = start;
        while i < end {
            let Tok::Ident(name) = &toks[i].tok else {
                i += 1;
                continue;
            };
            let line = toks[i].line;
            if name == "QueryBudget" {
                budget_in_body = true;
            }
            if name == "sync_all" || name == "sync_data" {
                raw_sync_lines.push(line);
            }
            let next_open = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
            let prev_dot = i > start && matches!(toks[i - 1].tok, Tok::Punct('.'));
            let prev_colons = i >= start + 2
                && matches!(toks[i - 1].tok, Tok::Punct(':'))
                && matches!(toks[i - 2].tok, Tok::Punct(':'));

            if next_open && prev_dot {
                // Method call `recv.name(...)`.
                let recv = receiver_class(
                    self,
                    toks,
                    start,
                    i - 1,
                    owner.as_deref(),
                    &params,
                    &locals,
                    0,
                );
                // Lock acquisition via `.read()/.write()/.lock()` on a
                // lock-typed receiver.
                if matches!(name.as_str(), "read" | "write" | "lock") {
                    if let ReceiverClass::Lock(class) = &recv {
                        acquires.push(make_acquire(toks, start, end, i, class.clone(), line));
                        i += 1;
                        continue;
                    }
                }
                let class = match &recv {
                    ReceiverClass::Known(c) | ReceiverClass::Guard(c) => Some(c.as_str()),
                    _ => None,
                };
                let recv_guard = match &recv {
                    ReceiverClass::Guard(c) => Some(c.clone()),
                    _ => None,
                };
                let targets = self.resolve_method(class, name);
                if !targets.is_empty() {
                    // Calls to lock wrappers are acquisition sites too.
                    push_wrapper_acquires(self, &targets, toks, start, end, i, line, &mut acquires);
                    calls.push(Call {
                        targets,
                        name: name.clone(),
                        tok: i,
                        line,
                        recv_guard,
                    });
                }
            } else if next_open && prev_colons {
                // Qualified call `Path::name(...)`: the segment before
                // `::` narrows the owner.
                let qual = match toks.get(i.wrapping_sub(3)).map(|t| &t.tok) {
                    Some(Tok::Ident(q)) => Some(q.clone()),
                    _ => None,
                };
                let targets = match &qual {
                    Some(q) if q == "Self" => match &owner {
                        Some(o) => self.by_qual(o, name).to_vec(),
                        None => Vec::new(),
                    },
                    Some(q) => {
                        let exact = self.by_qual(q, name);
                        if exact.is_empty() {
                            // A module path (`ingest::flush(..)`) resolves
                            // to the free function; a std type path
                            // (`File::create`) matches nothing and gets no
                            // edge — falling back to same-named *methods*
                            // here would invent edges from std calls.
                            self.by_name(name)
                                .iter()
                                .copied()
                                .filter(|&t| self.fns[t].item.owner.is_none())
                                .collect()
                        } else {
                            exact.to_vec()
                        }
                    }
                    None => Vec::new(),
                };
                if !targets.is_empty() {
                    push_wrapper_acquires(self, &targets, toks, start, end, i, line, &mut acquires);
                    calls.push(Call {
                        targets,
                        name: name.clone(),
                        tok: i,
                        line,
                        recv_guard: None,
                    });
                }
            } else if next_open {
                // Bare call `name(...)` — free functions, or an inherent
                // method called without `self.` does not exist in Rust, so
                // restrict to free fns; fall back to same-owner method
                // (macro-expanded style) when no free fn matches.
                if !NOT_CALLS.contains(&name.as_str()) {
                    let free: Vec<usize> = self
                        .by_name(name)
                        .iter()
                        .copied()
                        .filter(|&t| self.fns[t].item.owner.is_none())
                        .collect();
                    let targets = if free.is_empty() {
                        match &owner {
                            Some(o) => self.by_qual(o, name).to_vec(),
                            None => Vec::new(),
                        }
                    } else {
                        free
                    };
                    if !targets.is_empty() {
                        push_wrapper_acquires(
                            self,
                            &targets,
                            toks,
                            start,
                            end,
                            i,
                            line,
                            &mut acquires,
                        );
                        calls.push(Call {
                            targets,
                            name: name.clone(),
                            tok: i,
                            line,
                            recv_guard: None,
                        });
                    }
                }
            } else if !next_open && !prev_dot && !prev_colons {
                // Bare identifier in argument position naming a known
                // free function: a higher-order reference (`map(f)`).
                let arg_pos = i > start
                    && matches!(toks[i - 1].tok, Tok::Punct('(') | Tok::Punct(','))
                    && matches!(
                        toks.get(i + 1).map(|t| &t.tok),
                        Some(Tok::Punct(')') | Tok::Punct(','))
                    );
                if arg_pos && !NOT_CALLS.contains(&name.as_str()) {
                    let free: Vec<usize> = self
                        .by_name(name)
                        .iter()
                        .copied()
                        .filter(|&t| self.fns[t].item.owner.is_none())
                        .collect();
                    if !free.is_empty() {
                        push_wrapper_acquires(
                            self,
                            &free,
                            toks,
                            start,
                            end,
                            i,
                            line,
                            &mut acquires,
                        );
                        calls.push(Call {
                            targets: free,
                            name: name.clone(),
                            tok: i,
                            line,
                            recv_guard: None,
                        });
                    }
                }
            }
            i += 1;
        }

        let f = &mut self.fns[idx];
        f.calls = calls;
        f.acquires = acquires;
        f.raw_sync_lines = raw_sync_lines;
        f.budget_in_body = budget_in_body;
    }
}

/// Scans a body for `let [mut] name = <expr>;` / `let name: Ty = ...`
/// statements and records each binding's class when it resolves: via the
/// ascribed type, a struct literal (`= Shape { .. }`), or by typing the
/// right-hand-side expression with [`receiver_class`] (constructor calls,
/// lock-wrapper calls, guard-returning `.write()` chains). Sequential, so
/// later bindings can reference earlier ones. Flow-insensitive: one class
/// per name, last recorded wins.
fn collect_locals(
    g: &Graph,
    toks: &[crate::lexer::Token],
    start: usize,
    end: usize,
    owner: Option<&str>,
    params: &[Param],
) -> Locals {
    let mut locals: Locals = BTreeMap::new();
    let mut k = start;
    while k < end {
        if !matches!(&toks[k].tok, Tok::Ident(w) if w == "let") {
            k += 1;
            continue;
        }
        let mut m = k + 1;
        if matches!(toks.get(m).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "mut") {
            m += 1;
        }
        let name = match toks.get(m).map(|t| &t.tok) {
            Some(Tok::Ident(n)) => n.clone(),
            _ => {
                k += 1;
                continue;
            }
        };
        // Type ascription: `let name : TYPE =` — the declared type wins.
        let mut eq = m + 1;
        if matches!(toks.get(eq).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            let ty_start = eq + 1;
            let mut d = 0i32;
            let mut p = ty_start;
            while p < end {
                match &toks[p].tok {
                    Tok::Punct('<') => d += 1,
                    Tok::Punct('>') => d -= 1,
                    Tok::Punct('=') if d <= 0 => break,
                    Tok::Punct(';') => break,
                    _ => {}
                }
                p += 1;
            }
            if p < end && matches!(toks[p].tok, Tok::Punct('=')) {
                let ty_text = tokens_text(&toks[ty_start..p]);
                if let c @ (ReceiverClass::Known(_)
                | ReceiverClass::Guard(_)
                | ReceiverClass::Lock(_)) = class_of_type(&ty_text)
                {
                    locals.insert(name.clone(), c);
                }
                eq = p;
            } else {
                k = m + 1;
                continue;
            }
        } else if !matches!(toks.get(eq).map(|t| &t.tok), Some(Tok::Punct('='))) {
            // `if let Some(x) = ...` patterns, `for` desugars, etc.
            k = m + 1;
            continue;
        }
        // Struct literal `= Shape { .. }`.
        let rhs = eq + 1;
        if let (Some(Tok::Ident(t)), Some(Tok::Punct('{'))) = (
            toks.get(rhs).map(|t| &t.tok),
            toks.get(rhs + 1).map(|t| &t.tok),
        ) {
            if t.chars().next().is_some_and(char::is_uppercase) {
                locals.insert(name.clone(), ReceiverClass::Known(t.clone()));
                k = m + 1;
                continue;
            }
        }
        // General RHS: find the statement's `;` at bracket depth 0 and
        // type the expression ending there.
        let mut d = 0i32;
        let mut p = rhs;
        let mut semi = None;
        while p < end {
            match &toks[p].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    d -= 1;
                    if d < 0 {
                        break;
                    }
                }
                Tok::Punct(';') if d == 0 => {
                    semi = Some(p);
                    break;
                }
                _ => {}
            }
            p += 1;
        }
        if !locals.contains_key(&name) {
            if let Some(s) = semi {
                if let c @ (ReceiverClass::Known(_)
                | ReceiverClass::Guard(_)
                | ReceiverClass::Lock(_)) =
                    receiver_class(g, toks, start, s, owner, params, &locals, 0)
                {
                    locals.insert(name, c);
                }
            }
        }
        k = m + 1;
    }
    locals
}

/// Rebuilds source-ish text from a token slice (space-separated), matching
/// the normalized type format [`crate::parse`] stores for fields/params.
fn tokens_text(toks: &[crate::lexer::Token]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        match &t.tok {
            Tok::Ident(w) | Tok::Int(w) => s.push_str(w),
            Tok::Punct(c) => s.push(*c),
            _ => {}
        }
    }
    s
}

/// What the receiver of a method call resolved to.
#[derive(Clone)]
enum ReceiverClass {
    /// A concrete type or trait name.
    Known(String),
    /// A lock *guard* over this class: dispatch works like [`Known`], but
    /// calls through it are operations under the object's own lock
    /// (recorded in [`Call::recv_guard`]).
    Guard(String),
    /// A field/param whose type holds a lock — `.read()/.write()/.lock()`
    /// on it is an acquisition of this class.
    Lock(String),
    /// Could not resolve (call chains, literals).
    Unknown,
}

/// Method names that return (a view of) their receiver: resolution sees
/// through them to the inner expression's class
/// (`self.warehouse.write().unwrap()` types as the lock's guard).
const TRANSPARENT_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "as_ref",
    "as_mut",
    "as_deref",
    "as_deref_mut",
    "borrow",
    "borrow_mut",
];

/// Typed local bindings collected from `let` statements, name → class.
type Locals = BTreeMap<String, ReceiverClass>;

/// Resolves the receiver expression ending just before `dot`: walks back
/// over `ident`, `self`, balanced `(...)`/`[...]` groups, `?`, and `.`
/// separators. `dot` may also point at a statement terminator (`;`) — the
/// same walk then types the whole right-hand-side expression, which is how
/// let-bound locals get their classes.
#[allow(clippy::too_many_arguments)] // internal walker; the args are one lexical context
fn receiver_class(
    g: &Graph,
    toks: &[crate::lexer::Token],
    start: usize,
    dot: usize,
    owner: Option<&str>,
    params: &[Param],
    locals: &Locals,
    depth: u32,
) -> ReceiverClass {
    if depth > 8 || dot <= start {
        return ReceiverClass::Unknown;
    }
    let mut j = dot - 1; // last token of the receiver expression
    loop {
        match &toks[j].tok {
            Tok::Punct('?') => {
                if j == start {
                    return ReceiverClass::Unknown;
                }
                j -= 1;
            }
            Tok::Punct(']') => {
                // Index group — transparent (`shards[i].lock()` dispatches
                // on the element, which the field's type already names).
                let mut d = 0i32;
                loop {
                    match &toks[j].tok {
                        Tok::Punct(']') => d += 1,
                        Tok::Punct('[') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == start {
                        return ReceiverClass::Unknown;
                    }
                    j -= 1;
                }
                if j == start {
                    return ReceiverClass::Unknown;
                }
                j -= 1;
            }
            Tok::Punct(')') => {
                let mut d = 0i32;
                loop {
                    match &toks[j].tok {
                        Tok::Punct(')') => d += 1,
                        Tok::Punct('(') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == start {
                        return ReceiverClass::Unknown;
                    }
                    j -= 1;
                }
                if j == start {
                    return ReceiverClass::Unknown;
                }
                // A call group: the ident before `(` names the callee.
                let Some(Tok::Ident(m)) = toks.get(j - 1).map(|t| &t.tok) else {
                    return ReceiverClass::Unknown;
                };
                let m = m.clone();
                let m_idx = j - 1;
                let after_dot = m_idx > start && matches!(toks[m_idx - 1].tok, Tok::Punct('.'));
                if after_dot && TRANSPARENT_METHODS.contains(&m.as_str()) {
                    if m_idx < start + 2 {
                        return ReceiverClass::Unknown;
                    }
                    j = m_idx - 2; // keep walking the inner expression
                    continue;
                }
                return call_result_class(g, toks, start, m_idx, &m, owner, params, locals, depth);
            }
            _ => break,
        }
    }
    // Now at the last token of a name chain `a.b.c` — collect it.
    let mut chain: Vec<String> = Vec::new();
    while let Tok::Ident(s) = &toks[j].tok {
        chain.push(s.clone());
        if j < start + 2 || !matches!(toks[j - 1].tok, Tok::Punct('.')) {
            break;
        }
        j -= 2;
    }
    chain.reverse();
    match chain.as_slice() {
        [one] if one == "self" => match owner {
            Some(o) => ReceiverClass::Known(o.to_string()),
            None => ReceiverClass::Unknown,
        },
        [one] => {
            // A parameter with a known type, else a typed local binding.
            match params
                .iter()
                .find(|p| &p.name == one)
                .map(|p| p.ty.as_str())
            {
                Some(ty) => class_of_type(ty),
                None => locals
                    .get(one.as_str())
                    .cloned()
                    .unwrap_or(ReceiverClass::Unknown),
            }
        }
        [maybe_self, field] if maybe_self == "self" => {
            let Some(o) = owner else {
                return ReceiverClass::Unknown;
            };
            match field_type(g, o, field) {
                Some(ty) => class_of_type(&ty),
                None => ReceiverClass::Unknown,
            }
        }
        _ => ReceiverClass::Unknown,
    }
}

/// Types the result of a call whose callee name token sits at `m_idx`:
/// lock wrappers yield their guard's class; `.read()/.write()/.lock()` on
/// a lock-typed receiver yields the protected class; everything else uses
/// the callee's declared return type ([`ret_class`]).
#[allow(clippy::too_many_arguments)]
fn call_result_class(
    g: &Graph,
    toks: &[crate::lexer::Token],
    start: usize,
    m_idx: usize,
    m: &str,
    owner: Option<&str>,
    params: &[Param],
    locals: &Locals,
    depth: u32,
) -> ReceiverClass {
    let after_dot = m_idx > start && matches!(toks[m_idx - 1].tok, Tok::Punct('.'));
    let after_colons = m_idx >= start + 2
        && matches!(toks[m_idx - 1].tok, Tok::Punct(':'))
        && matches!(toks[m_idx - 2].tok, Tok::Punct(':'));
    let cands: Vec<usize> = if after_dot {
        // `recv.m(...)` — type the inner receiver first.
        match receiver_class(g, toks, start, m_idx - 1, owner, params, locals, depth + 1) {
            ReceiverClass::Lock(c) => {
                if matches!(m, "read" | "write" | "lock") {
                    return ReceiverClass::Guard(c);
                }
                Vec::new()
            }
            ReceiverClass::Known(c) | ReceiverClass::Guard(c) => g.by_qual(&c, m).to_vec(),
            ReceiverClass::Unknown => {
                if STD_METHODS.contains(&m) {
                    Vec::new()
                } else {
                    match owner {
                        Some(o) if !g.by_qual(o, m).is_empty() => g.by_qual(o, m).to_vec(),
                        _ => g.by_name(m).to_vec(),
                    }
                }
            }
        }
    } else if after_colons {
        // `T::m(...)` — a constructor or associated call.
        let t = match toks.get(m_idx.wrapping_sub(3)).map(|t| &t.tok) {
            Some(Tok::Ident(q)) => Some(q.clone()),
            _ => None,
        };
        let Some(q) = t else {
            return ReceiverClass::Unknown;
        };
        let qn = if q == "Self" {
            match owner {
                Some(o) => o.to_string(),
                None => return ReceiverClass::Unknown,
            }
        } else {
            q
        };
        let exact = g.by_qual(&qn, m);
        if exact.is_empty() {
            // A derived/std constructor on a workspace type
            // (`Params::default()`) still yields that type.
            if g.owners.contains(&qn) {
                return ReceiverClass::Known(qn);
            }
            return ReceiverClass::Unknown;
        }
        exact.to_vec()
    } else {
        // Bare `m(...)`: free functions only.
        g.by_name(m)
            .iter()
            .copied()
            .filter(|&t| g.fns[t].item.owner.is_none())
            .collect()
    };
    for &c in &cands {
        if let Some(class) = &g.fns[c].lock_wrapper {
            return ReceiverClass::Guard(class.clone());
        }
    }
    for &c in &cands {
        if let Some(class) = ret_class(g, c) {
            return ReceiverClass::Known(class);
        }
    }
    ReceiverClass::Unknown
}

/// The class a function's return type names, unwrapping `Result`/`Option`
/// (Ok type), smart pointers, references, and `Self`.
fn ret_class(g: &Graph, idx: usize) -> Option<String> {
    let f = &g.fns[idx];
    type_result_class(&f.item.ret, f.item.owner.as_deref())
}

/// First concrete type head of `ty` after seeing through wrappers:
/// `io::Result<SmaScan>` → `SmaScan`, `Self` → the owner, `&mut T` → `T`.
fn type_result_class(ty: &str, owner: Option<&str>) -> Option<String> {
    let mut words: Vec<String> = Vec::new();
    let mut cur = String::new();
    for ch in ty.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                words.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    class_from_words(&words, owner)
}

fn class_from_words(words: &[String], owner: Option<&str>) -> Option<String> {
    let mut i = 0;
    while i < words.len() {
        match words[i].as_str() {
            "&" | "mut" | "dyn" | "const" | "impl" => i += 1,
            "'" => i += 2, // lifetime: tick + name
            "Result" | "Option" | "Box" | "Arc" | "Rc" => {
                // Unwrap to the first generic argument.
                if words.get(i + 1).map(String::as_str) != Some("<") {
                    return Some(words[i].clone());
                }
                let mut d = 1i32;
                let s = i + 2;
                let mut k = s;
                while k < words.len() {
                    match words[k].as_str() {
                        "<" => d += 1,
                        ">" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        "," if d == 1 => break,
                        _ => {}
                    }
                    k += 1;
                }
                return class_from_words(&words[s..k], owner);
            }
            "Self" => return owner.map(str::to_string),
            w if w
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_') =>
            {
                // `module :: Type` path: skip lowercase segments.
                if w.chars().next().is_some_and(char::is_lowercase)
                    && words.get(i + 1).map(String::as_str) == Some(":")
                {
                    i += 3;
                    continue;
                }
                return Some(w.to_string());
            }
            _ => return None, // tuples, slices, fn pointers, numbers
        }
    }
    None
}

/// Classifies a receiver's declared type: a lock type is an acquisition
/// target; otherwise method dispatch sees through the deref-transparent
/// smart pointers (`Box<dyn Store>` dispatches on `Store`, not `Box`).
fn class_of_type(ty: &str) -> ReceiverClass {
    if let Some(class) = lock_class(ty) {
        return ReceiverClass::Lock(class);
    }
    if let Some(class) = guard_class(ty) {
        return ReceiverClass::Guard(class);
    }
    let head = ty
        .split_whitespace()
        .filter(|w| !w.is_empty() && w.chars().all(|c| c.is_alphanumeric() || c == '_'))
        .find(|w| !matches!(*w, "mut" | "dyn" | "const" | "impl" | "Box" | "Arc" | "Rc"));
    match head {
        Some(h) => ReceiverClass::Known(h.to_string()),
        None => ReceiverClass::Unknown,
    }
}

/// Looks up a struct field's type.
fn field_type(g: &Graph, owner: &str, field: &str) -> Option<String> {
    g.field_ty
        .get(&(owner.to_string(), field.to_string()))
        .cloned()
}

/// If any call target is a lock-wrapper function, records an acquisition
/// at the call site.
#[allow(clippy::too_many_arguments)]
fn push_wrapper_acquires(
    g: &Graph,
    targets: &[usize],
    toks: &[crate::lexer::Token],
    start: usize,
    end: usize,
    site: usize,
    line: u32,
    out: &mut Vec<Acquire>,
) {
    let mut classes: BTreeSet<String> = BTreeSet::new();
    for &t in targets {
        if let Some(c) = &g.fns[t].lock_wrapper {
            classes.insert(c.clone());
        }
    }
    for class in classes {
        out.push(make_acquire(toks, start, end, site, class, line));
    }
}

/// Builds an [`Acquire`] with its liveness span: let-bound guards live to
/// the end of the enclosing block (or an explicit `drop(name)`);
/// temporaries live to the end of the statement.
fn make_acquire(
    toks: &[crate::lexer::Token],
    start: usize,
    end: usize,
    site: usize,
    class: String,
    line: u32,
) -> Acquire {
    // Scan back to the statement start: the token after the previous
    // `;`, `{`, or `}` — then look for `let <name>`.
    let mut s = site;
    while s > start {
        match toks[s - 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            _ => s -= 1,
        }
    }
    let mut bound: Option<String> = None;
    if matches!(&toks[s].tok, Tok::Ident(k) if k == "let") {
        // `let [mut] name` — also covers `let (a, b)` poorly (first ident).
        for t in toks.iter().take(site).skip(s + 1) {
            match &t.tok {
                Tok::Ident(k) if k == "mut" => continue,
                Tok::Ident(n) => {
                    bound = Some(n.clone());
                    break;
                }
                _ => break,
            }
        }
    }
    // The binding holds the guard only when the acquisition call is the
    // outermost postfix of the right-hand side. In
    // `let no = self.write_store().allocate()?;` the binding holds
    // `allocate`'s result — the guard is a temporary that dies at the `;`.
    if bound.is_some() && matches!(toks.get(site + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
        let mut d = 0i32;
        let mut k = site + 1;
        while k < end {
            match &toks[k].tok {
                Tok::Punct('(') => d += 1,
                Tok::Punct(')') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let mut after = k + 1;
        while matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('?'))) {
            after += 1;
        }
        if matches!(toks.get(after).map(|t| &t.tok), Some(Tok::Punct('.'))) {
            bound = None;
        }
    }
    let live_end = match &bound {
        Some(name) => {
            // End of enclosing block: first `}` that drops brace depth
            // below zero relative to the site; shortened by `drop(name)`.
            let mut depth = 0i32;
            let mut j = site;
            let mut stop = end;
            while j < end {
                match &toks[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            stop = j;
                            break;
                        }
                    }
                    Tok::Ident(d)
                        if d == "drop"
                            && depth >= 0
                            && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                            && matches!(
                                toks.get(j + 2).map(|t| &t.tok),
                                Some(Tok::Ident(n)) if n == name
                            ) =>
                    {
                        stop = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            stop
        }
        None => {
            // Temporary: end of statement (`;` at relative depth 0, or
            // enclosing block end).
            let mut depth = 0i32;
            let mut j = site;
            let mut stop = end;
            while j < end {
                match &toks[j].tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            stop = j;
                            break;
                        }
                    }
                    Tok::Punct(';') if depth <= 0 => {
                        stop = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            stop
        }
    };
    Acquire {
        class,
        tok: site,
        live_end,
        line,
        via: bound
            .map(|n| format!("let {n}"))
            .unwrap_or_else(|| "temp".into()),
    }
}

/// Transitive effects computed over the graph by fixpoint.
#[derive(Debug)]
pub struct Effects {
    /// Reaches a raw `sync_all`/`sync_data` (full graph, no cuts).
    pub reaches_fsync: Vec<bool>,
    /// Reaches blocking socket I/O.
    pub reaches_socket: Vec<bool>,
    /// Lock classes transitively acquired (direct + callees).
    pub acquires: Vec<BTreeSet<String>>,
}

/// Computes transitive effects. `cut` names functions (qualified) whose
/// outgoing edges are ignored — used by A4's residual-graph check; pass
/// an empty set for the full graph.
pub fn effects(g: &Graph, cut: &BTreeSet<String>) -> Effects {
    let n = g.fns.len();
    let mut reaches_fsync: Vec<bool> = g.fns.iter().map(|f| !f.raw_sync_lines.is_empty()).collect();
    let mut reaches_socket: Vec<bool> = g.fns.iter().map(|f| f.socket_primitive).collect();
    let mut acquires: Vec<BTreeSet<String>> = g
        .fns
        .iter()
        .map(|f| f.acquires.iter().map(|a| a.class.clone()).collect())
        .collect();
    let is_cut: Vec<bool> = g.fns.iter().map(|f| cut.contains(&f.qualified())).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if is_cut[i] {
                continue;
            }
            for c in &g.fns[i].calls {
                for &t in &c.targets {
                    if reaches_fsync[t] && !reaches_fsync[i] {
                        reaches_fsync[i] = true;
                        changed = true;
                    }
                    if reaches_socket[t] && !reaches_socket[i] {
                        reaches_socket[i] = true;
                        changed = true;
                    }
                    if !acquires[t].is_empty() {
                        let extra: Vec<String> = acquires[t]
                            .iter()
                            .filter(|c| !acquires[i].contains(*c))
                            .cloned()
                            .collect();
                        if !extra.is_empty() {
                            acquires[i].extend(extra);
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    Effects {
        reaches_fsync,
        reaches_socket,
        acquires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, Graph) {
        let files: Vec<ParsedFile> = srcs.iter().map(|(p, s)| parse_file(p, s)).collect();
        let g = Graph::build(&files);
        (files, g)
    }

    #[test]
    fn diamond_call_graph_exact_edges() {
        let src = r#"
            fn a() { b(); c(); }
            fn b() { d(); }
            fn c() { d(); }
            fn d() {}
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(g.symbol_names(), vec!["a", "b", "c", "d"]);
        assert_eq!(
            g.edge_names(),
            vec![
                ("a".to_string(), "b".to_string()),
                ("a".to_string(), "c".to_string()),
                ("b".to_string(), "d".to_string()),
                ("c".to_string(), "d".to_string()),
            ]
        );
    }

    #[test]
    fn trait_object_dispatch_is_worst_case() {
        let src = r#"
            trait Store { fn sync(&mut self); }
            struct FileStore;
            impl Store for FileStore { fn sync(&mut self) { sync_all(); } }
            struct MemStore;
            impl Store for MemStore { fn sync(&mut self) {} }
            struct Pool { store: Box<dyn Store> }
            impl Pool { fn flush(&mut self) { self.store.sync(); } }
            fn sync_all() {}
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let edges = g.edge_names();
        // Pool::flush must fan out to every `sync` — the trait decl and
        // both impls — because dyn dispatch is approximated worst-case.
        assert!(edges.contains(&("Pool::flush".into(), "Store::sync".into())));
        assert!(edges.contains(&("Pool::flush".into(), "FileStore::sync".into())));
        assert!(edges.contains(&("Pool::flush".into(), "MemStore::sync".into())));
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let a = "pub fn read_page(n: usize) -> usize { n }";
        let b = r#"
            fn scan() { read_page(0); }
        "#;
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]);
        assert_eq!(
            g.edge_names(),
            vec![("scan".to_string(), "read_page".to_string())]
        );
    }

    #[test]
    fn field_narrowing_beats_name_collision() {
        let src = r#"
            struct Wal;
            impl Wal { fn sync(&mut self) {} }
            struct FileStore;
            impl FileStore { fn sync(&mut self) {} }
            struct Ingest { wal: Wal }
            impl Ingest { fn commit(&mut self) { self.wal.sync(); } }
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let edges = g.edge_names();
        assert!(edges.contains(&("Ingest::commit".into(), "Wal::sync".into())));
        assert!(!edges.contains(&("Ingest::commit".into(), "FileStore::sync".into())));
    }

    #[test]
    fn lock_acquisitions_and_liveness() {
        let src = r#"
            struct Shard;
            struct Pool { shards: Vec<Mutex<Shard>>, store: RwLock<Store> }
            struct Store;
            impl Pool {
                fn scoped(&self) {
                    let g = self.shards[0].lock();
                    use_it(&g);
                    drop(g);
                    after();
                }
                fn temp(&self) {
                    self.store.read().do_thing();
                    after();
                }
            }
            fn use_it(x: &u32) {}
            fn after() {}
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let scoped = &g.fns[g.by_qual("Pool", "scoped")[0]];
        assert_eq!(scoped.acquires.len(), 1);
        assert_eq!(scoped.acquires[0].class, "Shard");
        assert!(scoped.acquires[0].via.contains("let g"));
        let temp = &g.fns[g.by_qual("Pool", "temp")[0]];
        assert_eq!(temp.acquires.len(), 1);
        assert_eq!(temp.acquires[0].class, "Store");
        assert_eq!(temp.acquires[0].via, "temp");
    }

    #[test]
    fn lock_wrapper_fn_and_higher_order_reference() {
        let src = r#"
            struct W;
            struct Shared { inner: RwLock<W> }
            impl Shared {
                fn read_w(&self) -> RwLockReadGuard<W> { self.inner.read() }
                fn user(&self) { let w = self.read_w(); touch(&w); }
            }
            struct Shard;
            fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<Shard> { m.lock() }
            struct Pool { shards: Vec<Mutex<Shard>> }
            impl Pool {
                fn all(&self) { let guards = self.shards.iter().map(lock_shard); }
            }
            fn touch(w: &W) {}
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let read_w = &g.fns[g.by_qual("Shared", "read_w")[0]];
        assert_eq!(read_w.lock_wrapper.as_deref(), Some("W"));
        let user = &g.fns[g.by_qual("Shared", "user")[0]];
        assert!(user.acquires.iter().any(|a| a.class == "W"));
        let all = &g.fns[g.by_qual("Pool", "all")[0]];
        assert!(
            all.acquires.iter().any(|a| a.class == "Shard"),
            "{:?}",
            all.acquires
        );
        let wrapper = &g.fns[g.by_name("lock_shard")[0]];
        assert_eq!(wrapper.lock_wrapper.as_deref(), Some("Shard"));
    }

    #[test]
    fn effects_propagate_and_cuts_stop_them() {
        let src = r#"
            fn leaf() { file.sync_all(); }
            fn blessed() { leaf(); }
            fn caller() { blessed(); }
        "#;
        let (_f, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let full = effects(&g, &BTreeSet::new());
        let li = g.by_name("leaf")[0];
        let ci = g.by_name("caller")[0];
        assert!(full.reaches_fsync[li]);
        assert!(full.reaches_fsync[ci]);
        let mut cut = BTreeSet::new();
        cut.insert("blessed".to_string());
        let resid = effects(&g, &cut);
        assert!(resid.reaches_fsync[li]);
        assert!(!resid.reaches_fsync[ci]);
    }
}
