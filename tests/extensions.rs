//! Cross-crate tests of the §4 extensions: hierarchical SMAs and join
//! SMAs over TPC-D data, plus the data-cube and B+-tree comparators
//! agreeing with the SMA-based answers.

use smadb::cube::{page_sized_order, BPlusTree, Query1Cube};
use smadb::exec::{collect, SemiJoin};
use smadb::sma::{
    col, AggFn, BucketPred, CmpOp, Grade, HierarchicalMinMax, Sma, SmaDefinition, SmaSet,
};
use smadb::tpcd::{
    generate, generate_lineitem_table, q1_cutoff, q1_reference_table, schema::lineitem as li,
    schema::orders as o, start_date, Clustering, GenConfig,
};
use smadb::types::{Date, Value};

#[test]
fn hierarchical_smas_agree_with_flat_grading_on_tpcd() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::diagonal_default()));
    let min = Sma::build(
        &table,
        SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
    )
    .unwrap();
    let max = Sma::build(
        &table,
        SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
    )
    .unwrap();
    let set = SmaSet::build(
        &table,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
            SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
        ],
    )
    .unwrap();
    let hier = HierarchicalMinMax::from_smas(&min, &max, 16).expect("well-formed inputs");
    for delta in [30, 90, 500, 1500] {
        let pred = BucketPred::cmp(li::SHIPDATE, CmpOp::Le, Value::Date(q1_cutoff(delta)));
        let flat: Vec<Grade> = (0..table.bucket_count())
            .map(|b| pred.grade(b, &set))
            .collect();
        let pruned = hier.prune(&pred);
        assert_eq!(pruned.grades, flat, "delta {delta}");
        // Clustered data: level 2 must save level-1 inspections for
        // selective predicates.
        if delta >= 500 {
            assert!(
                pruned.l1_skipped > pruned.l1_inspected,
                "delta {delta}: skipped {} vs inspected {}",
                pruned.l1_skipped,
                pruned.l1_inspected
            );
        }
    }
}

#[test]
fn join_sma_semijoin_on_tpcd_dates() {
    // LINEITEMs shipped on or before some ORDERS order date — an
    // existential date join, SMA-reduced on LINEITEM's shipdate bounds.
    let cfg = GenConfig::tiny(Clustering::SortedByShipdate);
    let (orders, _) = generate(&cfg);
    let lineitem = generate_lineitem_table(&cfg);
    // Keep only early orders so the reduction actually prunes.
    let early: Vec<_> = orders
        .iter()
        .filter(|ord| ord.orderdate <= start_date().add_days(120))
        .cloned()
        .collect();
    assert!(!early.is_empty());
    let orders_table = smadb::tpcd::load_orders(&early, 1, 1 << 12);
    let smas = SmaSet::build(
        &lineitem,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(li::SHIPDATE)),
            SmaDefinition::new("max", AggFn::Max, col(li::SHIPDATE)),
        ],
    )
    .unwrap();

    let mut naive = SemiJoin::new(
        &lineitem,
        li::SHIPDATE,
        CmpOp::Le,
        &orders_table,
        o::ORDERDATE,
        None,
    );
    let naive_rows = collect(&mut naive).unwrap();

    let mut reduced = SemiJoin::new(
        &lineitem,
        li::SHIPDATE,
        CmpOp::Le,
        &orders_table,
        o::ORDERDATE,
        Some(&smas),
    );
    let reduced_rows = collect(&mut reduced).unwrap();
    assert_eq!(naive_rows, reduced_rows);
    let c = reduced.counters();
    assert!(
        c.disqualified > c.total() / 2,
        "sorted shipdates let the reduction skip most buckets: {c:?}"
    );
}

#[test]
fn data_cube_and_sma_plan_agree() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
    let cube =
        Query1Cube::build(&table, start_date(), Date::from_ymd(1998, 12, 31).unwrap()).unwrap();
    let smas = SmaSet::build_query1_set(&table).unwrap();
    for delta in [60, 90, 120] {
        let cutoff = q1_cutoff(delta);
        let from_cube = cube.answer(cutoff);
        let oracle = q1_reference_table(&table, cutoff).unwrap();
        let run = smadb::exec::run_query1(
            &table,
            Some(&smas),
            &smadb::exec::Query1Config {
                delta,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(from_cube.len(), oracle.len());
        assert_eq!(run.rows.len(), oracle.len());
        for ((f, s, cell), ora) in from_cube.iter().zip(&oracle) {
            assert_eq!(*f, ora.returnflag);
            assert_eq!(*s, ora.linestatus);
            assert_eq!(cell.count, ora.count_order);
        }
    }
}

#[test]
fn btree_on_shipdate_vs_sma_space() {
    // §2.4's space comparison: a B+ tree on shipdate vs all eight SMAs.
    // Needs enough data that the 26 SMA files' one-page minimum stops
    // dominating (the paper's gap — 230 MB vs 33.8 MB — is at SF 1).
    let cfg = GenConfig {
        orders: 4000,
        ..GenConfig::tiny(Clustering::SortedByShipdate)
    };
    let table = generate_lineitem_table(&cfg);
    let rows = table.scan().unwrap();
    let pairs: Vec<(i32, u64)> = rows
        .iter()
        .map(|(tid, t)| {
            (
                t[li::SHIPDATE].as_date().unwrap().days(),
                ((tid.page as u64) << 16) | tid.slot as u64,
            )
        })
        .collect();
    let mut sorted = pairs.clone();
    sorted.sort_by_key(|&(k, _)| k);
    let tree = BPlusTree::bulk_load(page_sized_order(4, 8), sorted);
    tree.check_invariants();
    assert_eq!(tree.len(), rows.len());

    let smas = SmaSet::build_query1_set(&table).unwrap();
    // The tree indexes every tuple; the SMAs summarize every bucket, so
    // the whole 26-file set still undercuts it (the paper: 230 MB tree vs
    // 33.8 MB of SMAs; our tuples and tree entries are leaner, so the
    // ratio is smaller but the direction is the same)…
    assert!(
        tree.node_count() > smas.total_pages(),
        "B+ tree {} nodes vs SMA {} pages",
        tree.node_count(),
        smas.total_pages()
    );
    // …and the apples-to-apples comparison for *selection support* — the
    // tree vs just the min/max SMAs that replace it — is lopsided.
    let selection_pages: usize = [
        smas.min_sma_for(li::SHIPDATE),
        smas.max_sma_for(li::SHIPDATE),
    ]
    .into_iter()
    .flatten()
    .map(|s| s.total_pages())
    .sum();
    assert!(
        tree.node_count() > selection_pages * 20,
        "B+ tree {} nodes vs min/max SMA {} pages",
        tree.node_count(),
        selection_pages
    );
    // And a range lookup still works, for the queries where a tree IS the
    // right tool (high selectivity).
    let day = q1_cutoff(90).days();
    let narrow = tree.range(&(day - 1), &day);
    let expected = rows
        .iter()
        .filter(|(_, t)| {
            let d = t[li::SHIPDATE].as_date().unwrap().days();
            d >= day - 1 && d <= day
        })
        .count();
    assert_eq!(narrow.len(), expected);
}
