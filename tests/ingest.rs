//! Durable streaming ingest: crash sweeps and streamed-vs-bulk equivalence.
//!
//! The contract under test, from the ingest design:
//!
//! * **No acknowledged tuple is ever lost.** An insert is acknowledged only
//!   after its WAL frame is written and fsynced; recovery replays every
//!   acknowledged record a crash left unflushed.
//! * **No tuple is ever applied twice.** The committed watermark makes WAL
//!   replay idempotent — a crash between manifest commit and WAL
//!   truncation must not double-apply.
//! * **Streaming is invisible to queries.** Any interleaving of inserts
//!   and flushes answers every query byte-identically to one bulk load of
//!   the same tuples.
//!
//! The sweeps are exhaustive where the state space allows: every byte
//! offset of the WAL (simulated power cut mid-write) and every stage of
//! the flush protocol (via [`StreamingWarehouse::flush_until`]).

use std::sync::Arc;
use std::time::Duration;

use smadb::compact::CompactionPolicy;
use smadb::exec::{AggSpec, AggregateQuery};
use smadb::ingest::{CommitPolicy, FlushStage, StreamingWarehouse, WAL_FILE};
use smadb::sma::{col, BucketPred, CmpOp};
use smadb::storage::test_util::{scratch_path, CrashStore, FaultConfig};
use smadb::storage::{Table, Wal, PAGE_SIZE};
use smadb::tpcd::{generate_lineitem_table, lineitem_schema, Clustering, GenConfig};
use smadb::types::{Column, DataType, Schema, StdRng, Tuple, Value, WalRecord};
use smadb::Warehouse;

/// The fixed seed sweep, extended by `CHAOS_SEED` when CI sets it.
fn seeds() -> Vec<u64> {
    let mut s = vec![0xC0FFEE, 17, 4242];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.parse::<u64>() {
            if !s.contains(&n) {
                s.push(n);
            }
        }
    }
    s
}

fn small_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("G", DataType::Char),
        Column::new("X", DataType::Int),
    ]))
}

fn small_tuple(i: i64) -> Tuple {
    vec![Value::Char(b'A' + (i % 3) as u8), Value::Int(i)]
}

/// A warehouse over one empty table `S` with the full SMA complement, so
/// the fast path is in play and online maintenance is exercised.
fn small_warehouse() -> Warehouse {
    let mut w = Warehouse::new();
    w.register(Table::in_memory("S", small_schema(), 1))
        .unwrap();
    for stmt in [
        "define sma s_min select min(X) from S",
        "define sma s_max select max(X) from S",
        "define sma s_cnt select count(*) from S group by G",
        "define sma s_sum select sum(X) from S group by G",
    ] {
        w.define_sma(stmt).unwrap();
    }
    w
}

/// Group by flag, count + sum + avg over the rows with `X <= hi`.
fn small_query(hi: i64) -> AggregateQuery {
    AggregateQuery {
        pred: BucketPred::cmp(1, CmpOp::Le, hi),
        group_by: vec![0],
        specs: vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(1)),
            AggSpec::Avg(col(1)),
        ],
    }
}

/// The reference answer: the same tuples bulk-loaded in the same order.
fn bulk_reference(rows: &[Tuple], hi: i64) -> Vec<Tuple> {
    let mut w = small_warehouse();
    for t in rows {
        w.insert("S", t).unwrap();
    }
    w.query("S", small_query(hi)).unwrap().rows
}

// ----------------------------------------------------------------- close()

/// `close()` commits the open group-commit batch and flushes, so staged
/// rows a plain drop would abandon become durable, sealed rows — and the
/// reopened warehouse has nothing to replay.
#[test]
fn close_commits_the_open_group_and_flushes() {
    let dir = scratch_path("ingest-close");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 100,
        max_delay: Duration::ZERO,
    });
    for i in 0..7 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    assert_eq!(sw.staged_rows(), 7, "the group is still open");
    assert_eq!(sw.durable_seq(), 0, "nothing acknowledged yet");
    sw.close().unwrap();

    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.replayed, 0, "close sealed everything");
    assert_eq!(sw.buffered(), 0);
    assert_eq!(sw.staged_rows(), 0);
    let seven: Vec<Tuple> = (0..7).map(small_tuple).collect();
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&seven, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A streaming query under a generous budget answers identically to the
/// unbudgeted path (overlay included); an exhausted budget degrades into
/// a structured error instead of a wrong answer.
#[test]
fn streaming_query_respects_budgets() {
    use smadb::storage::QueryBudget;
    let dir = scratch_path("ingest-budget");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    for i in 0..20 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    sw.flush().unwrap();
    for i in 20..25 {
        sw.insert("S", &small_tuple(i)).unwrap(); // live overlay rows
    }

    let generous = QueryBudget::unbounded().with_page_cap(1_000_000);
    let budgeted = sw
        .query_with_budget("S", small_query(i64::MAX), &generous)
        .unwrap();
    let bare = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(budgeted.rows, bare.rows);
    assert_eq!(budgeted.plan_kind, bare.plan_kind);

    let exhausted = QueryBudget::unbounded().with_deadline(Duration::ZERO);
    let err = sw
        .query_with_budget("S", small_query(i64::MAX), &exhausted)
        .unwrap_err();
    assert!(err.to_string().contains("deadline exceeded"), "{err}");
    sw.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------- WAL sweep

/// Power cut at EVERY byte offset of the WAL file: recovery yields exactly
/// the longest prefix of appended records that the persisted bytes fully
/// contain — never a torn record, never a reordering, never a phantom.
#[test]
fn wal_crash_at_every_byte_offset_recovers_the_exact_prefix() {
    let mut wal = Wal::create(CrashStore::new(), 7).unwrap();
    let mut appended = Vec::new();
    // Byte offset (absolute, including the header page) one past each
    // record's frame: the acknowledgement point of that record.
    let mut frame_ends = Vec::new();
    for seq in 1..=20u64 {
        let rec = WalRecord {
            epoch: 7,
            seq,
            relation: "S".into(),
            row: vec![seq as u8; 17 + (seq as usize * 13) % 400],
        };
        wal.append(&rec).unwrap();
        wal.sync().unwrap();
        frame_ends.push(PAGE_SIZE as u64 + wal.tail_bytes());
        appended.push(rec);
    }
    let full = wal.into_store();
    let total = full.len_bytes();
    assert!(total > PAGE_SIZE as u64, "records span pages");

    for cut in 0..=total {
        let mut crashed = full.clone();
        crashed.truncate_at(cut);
        let (wal, replay) = Wal::open(crashed, 7).expect("open never fails on a torn log");
        let expect = frame_ends.iter().take_while(|&&e| e <= cut).count();
        assert_eq!(
            replay.records,
            appended[..expect],
            "cut at byte {cut}: must recover exactly the {expect}-record prefix"
        );
        // The header CRC covers its first 12 bytes; any cut inside them
        // reinitializes the log instead of trusting garbage.
        if cut < 12 {
            assert!(replay.header_reset, "cut at byte {cut}");
        }
        assert_eq!(wal.epoch(), 7, "cut at byte {cut}");
    }
}

// ----------------------------------------------------------- group commit

/// Power cut at EVERY byte offset of a group-committed WAL (batch = 4):
/// recovery yields exactly the longest frame prefix the bytes contain, and
/// — the group-commit ack rule — every row acknowledged behind a group
/// fsync the cut preserves must be in that prefix. Rows of the open group
/// were never acknowledged, so losing them is legal at any cut.
#[test]
fn group_commit_crash_at_every_wal_byte_offset() {
    let dir = scratch_path("ingest-group-sweep");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw =
        StreamingWarehouse::create_with_wal_store(&dir, small_warehouse(), 0, CrashStore::new())
            .unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 4,
        max_delay: Duration::ZERO,
    });
    let mut appended_seqs = Vec::new();
    // (absolute byte offset the group's fsync covered, seq it acked through)
    let mut group_ends = Vec::new();
    for i in 0..22 {
        let seq = sw.insert("S", &small_tuple(i)).unwrap();
        appended_seqs.push(seq);
        if sw.staged_rows() == 0 {
            group_ends.push((PAGE_SIZE as u64 + sw.wal_tail_bytes(), sw.durable_seq()));
            assert_eq!(sw.durable_seq(), seq, "group boundary acks through {seq}");
        } else {
            assert!(
                sw.durable_seq() < seq,
                "row {i} is staged, must not be acked"
            );
        }
    }
    assert_eq!(
        sw.staged_rows(),
        2,
        "22 rows at batch 4 leave an open group"
    );
    assert_eq!(sw.durable_seq(), 20);
    // Staged rows are not query-visible: only the five committed groups.
    let visible: Vec<Tuple> = (0..20).map(small_tuple).collect();
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&visible, i64::MAX));

    let full = sw.into_wal_store();
    let total = full.len_bytes();
    for cut in 0..=total {
        let mut crashed = full.clone();
        crashed.truncate_at(cut);
        let (_, replay) = Wal::open(crashed, 0).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            appended_seqs[..seqs.len()],
            "cut at byte {cut}: an exact frame prefix, never torn or reordered"
        );
        let acked = group_ends
            .iter()
            .filter(|&&(end, _)| end <= cut)
            .map(|&(_, s)| s)
            .max()
            .unwrap_or(0);
        assert!(
            seqs.len() as u64 >= acked,
            "cut at byte {cut}: acked through seq {acked}, only {} records survive",
            seqs.len()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The group-commit visibility contract end to end: staged rows are
/// invisible and unacknowledged until `commit`; `flush` closes the open
/// group before truncating anything; a restart finds a pristine log.
#[test]
fn group_commit_acks_and_publishes_only_at_the_group_boundary() {
    let dir = scratch_path("ingest-group-basic");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 10,
        max_delay: Duration::ZERO,
    });
    for i in 0..3 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    assert_eq!(sw.staged_rows(), 3);
    assert_eq!(sw.buffered(), 0, "staged rows are not in the memtable");
    assert_eq!(sw.durable_seq(), 0, "nothing acknowledged yet");
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(
        got.rows,
        bulk_reference(&[], i64::MAX),
        "staged is invisible"
    );

    sw.commit().unwrap();
    assert_eq!(sw.staged_rows(), 0);
    assert_eq!(sw.durable_seq(), 3);
    let three: Vec<Tuple> = (0..3).map(small_tuple).collect();
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&three, i64::MAX));

    // flush() must close the open group before the WAL truncation at the
    // end of the protocol could destroy its un-synced frames.
    for i in 3..5 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    assert_eq!(sw.staged_rows(), 2);
    sw.flush().unwrap();
    assert_eq!(sw.staged_rows(), 0);
    assert_eq!(sw.buffered(), 0);
    assert_eq!(sw.durable_seq(), 5);
    assert_eq!(sw.watermark(), 5, "the flush sealed the whole group");
    let five: Vec<Tuple> = (0..5).map(small_tuple).collect();
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&five, i64::MAX));

    drop(sw);
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean());
    assert_eq!(
        report.replayed, 0,
        "everything was sealed before the restart"
    );
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&five, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A failed group fsync drops the WHOLE group — none of its rows are
/// durable or visible — and burns every sequence number it staged, so the
/// log replays every acknowledged record despite the half-written frames.
#[test]
fn failed_group_sync_drops_the_group_and_burns_its_seqs() {
    for seed in seeds() {
        let config = FaultConfig::seeded(seed).with_sync_faults(30);
        let dir = scratch_path(&format!("ingest-groupstorm-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let sw = StreamingWarehouse::create_with_wal_store(
            &dir,
            small_warehouse(),
            0,
            CrashStore::with_config(config),
        );
        let mut sw = match sw {
            Ok(sw) => sw,
            Err(_) => {
                // The device failed the WAL's very first fsync. Legal.
                std::fs::remove_dir_all(&dir).unwrap();
                continue;
            }
        };
        sw.set_commit_policy(CommitPolicy {
            batch_rows: 3,
            max_delay: Duration::ZERO,
        });
        let epoch = sw.epoch();
        let mut group: Vec<(u64, Tuple)> = Vec::new();
        let mut acked: Vec<(u64, Tuple)> = Vec::new();
        let mut dropped_groups = 0usize;
        for i in 0..60 {
            let t = small_tuple(i);
            match sw.insert("S", &t) {
                Ok(seq) => {
                    group.push((seq, t));
                    if sw.staged_rows() == 0 {
                        // The boundary fsync landed: the group is acked.
                        assert_eq!(sw.durable_seq(), seq, "seed {seed}");
                        acked.append(&mut group);
                    }
                }
                Err(_) => {
                    // Only a boundary insert syncs, so the error means the
                    // group sync failed: all staged rows must be gone.
                    assert_eq!(sw.staged_rows(), 0, "seed {seed}");
                    group.clear();
                    dropped_groups += 1;
                }
            }
        }
        assert!(
            dropped_groups > 0,
            "seed {seed}: the storm must drop a group"
        );
        assert!(!acked.is_empty(), "seed {seed}: some groups must land");

        // Queries see exactly the acknowledged groups, nothing staged or
        // dropped.
        let acked_tuples: Vec<Tuple> = acked.iter().map(|(_, t)| t.clone()).collect();
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(
            got.rows,
            bulk_reference(&acked_tuples, i64::MAX),
            "seed {seed}"
        );

        // Replay the raw store: burned seqs keep the log strictly
        // increasing, so every acknowledged record survives the storm.
        let (_, replay) = Wal::open(sw.into_wal_store(), epoch).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "seed {seed}: replay seqs strictly increase");
        }
        for (seq, _) in &acked {
            assert!(
                seqs.contains(seq),
                "seed {seed}: acked seq {seq} lost in replay (got {seqs:?})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ------------------------------------------------------------- flush sweep

/// Crash after every stage of the flush protocol: recovery restores
/// exactly the acknowledged tuples — zero lost, zero duplicated — and a
/// query over the recovered warehouse matches the bulk-loaded reference.
#[test]
fn flush_crash_at_every_stage_loses_nothing_and_duplicates_nothing() {
    let sealed = 20i64; // tuples flushed into the starting generation
    let streamed = 25i64; // tuples acknowledged but unflushed at the crash
    let all: Vec<Tuple> = (0..sealed + streamed).map(small_tuple).collect();
    let expected = bulk_reference(&all, i64::MAX);
    let expected_lo = bulk_reference(&all, 11);

    for stage in [
        FlushStage::Applied,
        FlushStage::SegmentsWritten,
        FlushStage::Committed,
        FlushStage::Cleaned,
        FlushStage::Complete,
    ] {
        let dir = scratch_path(&format!("ingest-stage-{stage:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
        for t in &all[..sealed as usize] {
            sw.insert("S", t).unwrap();
        }
        sw.flush().unwrap();
        assert_eq!(sw.epoch(), 1, "first flush commits generation 1");
        for t in &all[sealed as usize..] {
            sw.insert("S", t).unwrap();
        }
        sw.flush_until(stage).unwrap();
        drop(sw); // the crash

        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(
            report.warehouse.is_clean(),
            "{stage:?}: sealed data must scrub clean: {}",
            report.warehouse
        );
        let committed = matches!(
            stage,
            FlushStage::Committed | FlushStage::Cleaned | FlushStage::Complete
        );
        if committed {
            // The generation committed before the crash: the WAL records
            // are all at or below the watermark and must NOT re-apply.
            assert_eq!(sw.epoch(), 2, "{stage:?}");
            assert_eq!(report.replayed, 0, "{stage:?}: nothing past the watermark");
            assert_eq!(sw.buffered(), 0, "{stage:?}");
        } else {
            // The generation never committed: every unflushed acked tuple
            // comes back through WAL replay.
            assert_eq!(sw.epoch(), 1, "{stage:?}");
            assert_eq!(report.replayed, streamed as usize, "{stage:?}");
            assert_eq!(report.skipped, 0, "{stage:?}");
            assert_eq!(sw.buffered(), streamed as usize, "{stage:?}");
        }
        if stage == FlushStage::Complete {
            assert!(report.is_clean(), "{stage:?}: a finished flush is pristine");
        }

        // Zero lost, zero duplicated, exact aggregates — overlay or not.
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?}");
        let got = sw.query("S", small_query(11)).unwrap();
        assert_eq!(got.rows, expected_lo, "{stage:?}");

        // Recovery composes: finish the interrupted flush, crash again,
        // reopen — still exact, and now pristine.
        let mut sw = sw;
        sw.flush().unwrap();
        drop(sw);
        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(report.is_clean(), "{stage:?}: after completing the flush");
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?} after re-flush");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The flush-stage crash sweep over a *mixed row+columnar* generation:
/// with the columnar policy on, the first flush seals enough rows that
/// the conversion rewrites several buckets to the PAX layout while the
/// append tail stays row-major. Crashing at every stage of the next
/// flush must recover that mixed layout from the page markers alone
/// (the policy flag is runtime state and is NOT persisted), lose
/// nothing, duplicate nothing, and answer overlay queries exactly.
#[test]
fn columnar_flush_crash_at_every_stage_recovers_the_mixed_layout() {
    let sealed = 900i64; // enough pages that non-tail buckets convert
    let streamed = 25i64;
    let all: Vec<Tuple> = (0..sealed + streamed).map(small_tuple).collect();
    let expected = bulk_reference(&all, i64::MAX);
    let expected_lo = bulk_reference(&all, 450);

    for stage in [
        FlushStage::Applied,
        FlushStage::SegmentsWritten,
        FlushStage::Committed,
        FlushStage::Cleaned,
        FlushStage::Complete,
    ] {
        let dir = scratch_path(&format!("ingest-columnar-stage-{stage:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
        sw.set_columnar(true);
        for t in &all[..sealed as usize] {
            sw.insert("S", t).unwrap();
        }
        sw.flush().unwrap();
        let table = sw.warehouse().table("S").unwrap();
        assert!(
            !table.columnar_buckets().is_empty(),
            "{stage:?}: the sealed generation must hold columnar buckets"
        );
        assert!(
            !table.is_columnar_bucket(table.bucket_count() - 1),
            "{stage:?}: the append tail must stay row-major"
        );
        for t in &all[sealed as usize..] {
            sw.insert("S", t).unwrap();
        }
        sw.flush_until(stage).unwrap();
        drop(sw); // the crash

        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(
            report.warehouse.is_clean(),
            "{stage:?}: mixed-layout generation must scrub clean: {}",
            report.warehouse
        );
        let table = sw.warehouse().table("S").unwrap();
        assert!(
            !table.columnar_buckets().is_empty(),
            "{stage:?}: recovery must rediscover the columnar buckets"
        );
        assert!(
            !table.is_columnar_bucket(table.bucket_count() - 1),
            "{stage:?}: the recovered tail must be row-major"
        );
        let committed = matches!(
            stage,
            FlushStage::Committed | FlushStage::Cleaned | FlushStage::Complete
        );
        if committed {
            assert_eq!(report.replayed, 0, "{stage:?}");
        } else {
            assert_eq!(report.replayed, streamed as usize, "{stage:?}");
        }

        // Exact answers through the mixed layout, with and without the
        // replayed overlay in play.
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?}");
        let got = sw.query("S", small_query(450)).unwrap();
        assert_eq!(got.rows, expected_lo, "{stage:?}");

        // Recovery composes: finish the interrupted flush (policy is off
        // again after reopen — already-converted buckets must stay
        // columnar), crash, reopen, still exact.
        let mut sw = sw;
        assert!(
            !sw.columnar(),
            "{stage:?}: the policy flag is not persisted"
        );
        sw.flush().unwrap();
        drop(sw);
        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(report.is_clean(), "{stage:?}: after completing the flush");
        let table = sw.warehouse().table("S").unwrap();
        assert!(
            !table.columnar_buckets().is_empty(),
            "{stage:?}: conversion survives a flush under the row policy"
        );
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?} after re-flush");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The satellite regression: replaying the same WAL twice (crash between
/// segment write and WAL truncation, then recover, crash again without
/// writing, recover again) yields identical warehouse state, identical
/// on-disk SMA images, and never a double-applied tuple.
#[test]
fn wal_replay_after_partial_flush_is_idempotent() {
    for stage in [FlushStage::SegmentsWritten, FlushStage::Committed] {
        let dir = scratch_path(&format!("ingest-idem-{stage:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let all: Vec<Tuple> = (0..30).map(small_tuple).collect();
        let expected = bulk_reference(&all, i64::MAX);

        let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
        for t in &all {
            sw.insert("S", t).unwrap();
        }
        sw.flush_until(stage).unwrap();
        drop(sw);

        let snapshot = |tag: &str| {
            let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
            let rows = sw.query("S", small_query(i64::MAX)).unwrap().rows;
            assert_eq!(rows, expected, "{stage:?} {tag}: exactly once");
            drop(sw); // crash again, having written nothing new
            let mut images: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "sma" || e == "tbl"))
                .map(|p| {
                    (
                        p.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&p).unwrap(),
                    )
                })
                .collect();
            images.sort();
            (report.replayed, images)
        };

        // (The second recovery may legitimately skip fewer records than
        // the first — recovering from a post-commit crash realigns the
        // WAL, so the already-covered records are gone, not re-skipped.)
        let (replayed1, images1) = snapshot("first recovery");
        let (replayed2, images2) = snapshot("second recovery");
        assert_eq!(replayed1, replayed2, "{stage:?}: replay count is stable");
        assert_eq!(
            images1.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            images2.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{stage:?}: recovery must not create or drop segment files"
        );
        for ((name, a), (_, b)) in images1.iter().zip(&images2) {
            assert_eq!(a, b, "{stage:?}: {name} changed across an idle recovery");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Regression: an error (or early stop) AFTER the commit point used to
/// strand the post-commit cleanup until a restart — the memtable is empty,
/// so the next `flush()` early-returned and the superseded generation's
/// files plus the stale WAL tail survived indefinitely. The `pending`
/// checkpoint makes the next flush finish stages 4 and 5 in-process.
#[test]
fn interrupted_post_commit_cleanup_resumes_on_the_next_flush() {
    let dir = scratch_path("ingest-resume-cleanup");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    for i in 0..12 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    sw.flush().unwrap(); // generation 1: SMA images named *.e1.sma
    for i in 12..20 {
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    // Stop right after the commit point: generation 2 is live, but the
    // superseded images and the now-covered WAL records are still there.
    sw.flush_until(FlushStage::Committed).unwrap();
    assert_eq!(sw.pending_stage(), Some(FlushStage::Committed));
    assert_eq!(sw.buffered(), 0, "nothing left to announce the debt");
    assert!(
        dir.join("S.s_min.e1.sma").exists(),
        "superseded image still on disk"
    );
    assert!(sw.wal_tail_bytes() > 0, "WAL not yet truncated");

    sw.flush().unwrap();
    assert_eq!(sw.pending_stage(), None);
    assert!(
        !dir.join("S.s_min.e1.sma").exists(),
        "cleanup resumed from the checkpoint"
    );
    assert_eq!(sw.wal_tail_bytes(), 0, "WAL truncated");

    // Nothing left for recovery to repair.
    drop(sw);
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let all: Vec<Tuple> = (0..20).map(small_tuple).collect();
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&all, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression: `query` must not wrap an empty overlay around the plan — a
/// fully-flushed streaming warehouse must choose the same plan kind and
/// produce the same rows (including the Avg→Sum/Count rewrite) as a
/// bulk-loaded warehouse over the same tuples.
#[test]
fn fully_flushed_streaming_plans_identically_to_bulk() {
    let dir = scratch_path("ingest-plan-identity");
    std::fs::create_dir_all(&dir).unwrap();
    let all: Vec<Tuple> = (0..40).map(small_tuple).collect();
    let mut bulk = small_warehouse();
    for t in &all {
        bulk.insert("S", t).unwrap();
    }
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    for t in &all {
        sw.insert("S", t).unwrap();
    }
    sw.flush().unwrap();
    assert_eq!(sw.buffered(), 0);
    for hi in [i64::MIN, 7, 19, i64::MAX] {
        let want = bulk.query("S", small_query(hi)).unwrap();
        let got = sw.query("S", small_query(hi)).unwrap();
        assert_eq!(
            got.plan_kind, want.plan_kind,
            "hi={hi}: an empty overlay must not change the plan"
        );
        assert_eq!(got.rows, want.rows, "hi={hi}");
        assert_eq!(
            format!("{}", got.degradation),
            format!("{}", want.degradation),
            "hi={hi}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------- streamed == bulk

/// Property test: streaming the TPC-D lineitem rows through the WAL with
/// flushes at seeded random thresholds answers Query-1-shaped aggregates
/// byte-identically to one bulk load — across all four clustering models,
/// both mid-stream (memtable overlay live) and after the final flush,
/// when the physical layout must match the bulk load bucket for bucket.
#[test]
fn streamed_inserts_match_bulk_load_across_clusterings() {
    let schema = lineitem_schema();
    let shipdate = schema.index_of("L_SHIPDATE").unwrap();
    let flag = schema.index_of("L_RETURNFLAG").unwrap();
    let qty = schema.index_of("L_QUANTITY").unwrap();
    let defs = [
        "define sma li_min select min(L_SHIPDATE) from LINEITEM",
        "define sma li_max select max(L_SHIPDATE) from LINEITEM",
        "define sma li_cnt select count(*) from LINEITEM group by L_RETURNFLAG",
        "define sma li_qty select sum(L_QUANTITY) from LINEITEM group by L_RETURNFLAG",
    ];
    for clustering in [
        Clustering::SortedByShipdate,
        Clustering::diagonal_default(),
        Clustering::Uniform,
        Clustering::Shuffled,
    ] {
        let generated = generate_lineitem_table(&GenConfig {
            orders: 60,
            ..GenConfig::tiny(clustering)
        });
        let rows: Vec<Tuple> = generated
            .scan()
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let cutoff = match &rows[rows.len() / 2][shipdate] {
            Value::Date(d) => *d,
            other => panic!("L_SHIPDATE is a date, got {other:?}"),
        };
        let query = AggregateQuery {
            pred: BucketPred::cmp(shipdate, CmpOp::Le, Value::Date(cutoff)),
            group_by: vec![flag],
            specs: vec![
                AggSpec::CountStar,
                AggSpec::Sum(col(qty)),
                AggSpec::Avg(col(qty)),
            ],
        };

        // Bulk reference: every row inserted into a sealed warehouse.
        let mut bulk = Warehouse::new();
        bulk.register(Table::in_memory(
            "LINEITEM",
            lineitem_schema(),
            generated.bucket_pages(),
        ))
        .unwrap();
        for stmt in defs {
            bulk.define_sma(stmt).unwrap();
        }
        for t in &rows {
            bulk.insert("LINEITEM", t).unwrap();
        }
        let want = bulk.query("LINEITEM", query.clone()).unwrap();

        for seed in seeds() {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1A7E57);
            let dir = scratch_path(&format!("ingest-prop-{seed}"));
            std::fs::create_dir_all(&dir).unwrap();
            let mut w = Warehouse::new();
            w.register(Table::in_memory(
                "LINEITEM",
                lineitem_schema(),
                generated.bucket_pages(),
            ))
            .unwrap();
            for stmt in defs {
                w.define_sma(stmt).unwrap();
            }
            let mut sw = StreamingWarehouse::create(&dir, w, 0).unwrap();
            // Group commit and automatic compaction on: the equivalence
            // must hold with rows acknowledged in batches and the
            // compactor merging segments mid-stream.
            sw.set_commit_policy(CommitPolicy {
                batch_rows: 4,
                max_delay: Duration::ZERO,
            });
            sw.set_compaction_policy(CompactionPolicy { max_segments: 2 });
            let mut checked_mid_stream = false;
            for (i, t) in rows.iter().enumerate() {
                sw.insert("LINEITEM", t).unwrap();
                // Seeded flush points: on average every ~40 inserts.
                if rng.next_u64().is_multiple_of(40) {
                    sw.flush().unwrap();
                }
                // One seeded mid-stream probe per run: the sealed segments
                // plus live memtable must answer like a bulk load of the
                // prefix streamed so far.
                if !checked_mid_stream && i >= rows.len() / 2 && rng.next_u64().is_multiple_of(8) {
                    // Staged rows are invisible by contract: close the
                    // open group so the whole prefix is queryable.
                    sw.commit().unwrap();
                    let mut prefix = Warehouse::new();
                    prefix
                        .register(Table::in_memory(
                            "LINEITEM",
                            lineitem_schema(),
                            generated.bucket_pages(),
                        ))
                        .unwrap();
                    for stmt in defs {
                        prefix.define_sma(stmt).unwrap();
                    }
                    for t in &rows[..=i] {
                        prefix.insert("LINEITEM", t).unwrap();
                    }
                    let want_prefix = prefix.query("LINEITEM", query.clone()).unwrap();
                    let got = sw.query("LINEITEM", query.clone()).unwrap();
                    assert_eq!(
                        got.rows, want_prefix.rows,
                        "{clustering:?} seed {seed}: mid-stream at row {i}"
                    );
                    checked_mid_stream = true;
                }
            }
            sw.flush().unwrap();

            // Fully flushed: answers, plan choice, degradation, and the
            // physical layout all match the bulk load exactly.
            let got = sw.query("LINEITEM", query.clone()).unwrap();
            assert_eq!(got.rows, want.rows, "{clustering:?} seed {seed}");
            assert_eq!(got.plan_kind, want.plan_kind, "{clustering:?} seed {seed}");
            assert_eq!(
                format!("{}", got.degradation),
                format!("{}", want.degradation),
                "{clustering:?} seed {seed}"
            );
            assert!(
                sw.warehouse().segment_count("LINEITEM") <= 2,
                "{clustering:?} seed {seed}: the compaction policy bounds the segment list"
            );
            let streamed_table = sw.warehouse().table("LINEITEM").unwrap();
            let bulk_table = bulk.table("LINEITEM").unwrap();
            assert_eq!(
                streamed_table.page_count(),
                bulk_table.page_count(),
                "{clustering:?} seed {seed}: page-for-page identical layout"
            );
            assert_eq!(
                streamed_table.bucket_count(),
                bulk_table.bucket_count(),
                "{clustering:?} seed {seed}"
            );

            // And it all survives a restart.
            drop(sw);
            let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
            assert!(report.is_clean(), "{clustering:?} seed {seed}");
            let got = sw.query("LINEITEM", query.clone()).unwrap();
            assert_eq!(got.rows, want.rows, "{clustering:?} seed {seed}: reopened");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

// ------------------------------------------------------------ torn tail

/// A bit flip inside the last WAL frame (a torn final record) costs
/// exactly that record — which was never fsync-acknowledged in the torn
/// scenario — and nothing before it.
#[test]
fn torn_wal_tail_loses_only_the_final_record() {
    let dir = scratch_path("ingest-torn");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 0).unwrap();
    let mut last_start = 0;
    for i in 0..10 {
        last_start = sw.wal_tail_bytes();
        sw.insert("S", &small_tuple(i)).unwrap();
    }
    drop(sw);
    // Corrupt the last frame's payload, as a power cut mid-write would.
    smadb::storage::test_util::flip_bit_in_file(
        &dir.join(WAL_FILE),
        PAGE_SIZE as u64 + last_start + 9,
        3,
    )
    .unwrap();
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.torn_tail, "the cut must be detected");
    assert_eq!(report.replayed, 9, "everything before the tear survives");
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    let expected: Vec<Tuple> =
        bulk_reference(&(0..9).map(small_tuple).collect::<Vec<_>>(), i64::MAX);
    assert_eq!(got.rows, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------- sync storms

/// Regression: an insert whose fsync fails must burn its sequence
/// number. The failed frame may already sit (durably, even) in the WAL
/// tail, so a later insert reusing the seq would write a duplicate frame
/// — and replay stops at the first non-increasing seq, silently cutting
/// off every acknowledged record behind it.
#[test]
fn failed_sync_burns_its_sequence_number() {
    for seed in seeds() {
        let config = FaultConfig::seeded(seed).with_sync_faults(30);
        let dir = scratch_path(&format!("ingest-syncstorm-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let sw = StreamingWarehouse::create_with_wal_store(
            &dir,
            small_warehouse(),
            0,
            CrashStore::with_config(config),
        );
        let mut sw = match sw {
            Ok(sw) => sw,
            Err(_) => {
                // The device failed the WAL's very first fsync: the log
                // was never born, nothing was ever acknowledged. Legal.
                std::fs::remove_dir_all(&dir).unwrap();
                continue;
            }
        };
        let epoch = sw.epoch();
        let mut acked: Vec<(u64, Tuple)> = Vec::new();
        let mut failed = 0usize;
        for i in 0..60 {
            match sw.insert("S", &small_tuple(i)) {
                Ok(seq) => acked.push((seq, small_tuple(i))),
                Err(_) => failed += 1,
            }
        }
        assert!(failed > 0, "seed {seed}: 30% over 60 draws must fire");
        assert!(!acked.is_empty(), "seed {seed}: some syncs must land");

        // Despite the storm, queries see exactly the acknowledged tuples.
        let acked_tuples: Vec<Tuple> = acked.iter().map(|(_, t)| t.clone()).collect();
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(
            got.rows,
            bulk_reference(&acked_tuples, i64::MAX),
            "seed {seed}"
        );

        // The crash: replay the raw WAL store. Every acknowledged record
        // must survive — a reused seq would end replay at the duplicate
        // frame and lose everything acknowledged after it.
        let (_, replay) = Wal::open(sw.into_wal_store(), epoch).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        for (seq, _) in &acked {
            assert!(
                seqs.contains(seq),
                "seed {seed}: acked seq {seq} lost in replay (got {seqs:?})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Auto-flush by threshold: inserts trigger flushes on their own, epochs
/// advance, the WAL stays bounded, and answers never change.
#[test]
fn threshold_flushes_are_transparent() {
    let dir = scratch_path("ingest-thresh");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, small_warehouse(), 8).unwrap();
    let all: Vec<Tuple> = (0..50).map(small_tuple).collect();
    for t in &all {
        sw.insert("S", t).unwrap();
    }
    assert!(sw.epoch() >= 5, "50 inserts at threshold 8 must flush");
    assert!(sw.buffered() < 8, "memtable stays under the threshold");
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&all, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}
