//! SMA maintenance under inserts, deletes and updates: after any sequence
//! of table mutations mirrored into the SMA set, grading must stay sound
//! and query answers must stay exact.

use std::sync::Arc;

use smadb::exec::{collect, AggSpec, Filter, HashGAggr, SeqScan, SmaGAggr};
use smadb::sma::{col, AggFn, BucketPred, CmpOp, Grade, SmaDefinition, SmaSet};
use smadb::storage::{Table, TupleId};
use smadb::types::{Column, DataType, Schema, StdRng, Value};

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("G", DataType::Char),
        Column::new("PAD", DataType::Str),
    ]))
}

fn tuple(k: i64, g: u8) -> Vec<Value> {
    vec![Value::Int(k), Value::Char(g), Value::Str("p".repeat(1700))]
}

fn defs() -> Vec<SmaDefinition> {
    vec![
        SmaDefinition::new("min", AggFn::Min, col(0)),
        SmaDefinition::new("max", AggFn::Max, col(0)),
        SmaDefinition::count("count").group_by(vec![1]),
        SmaDefinition::new("sum", AggFn::Sum, col(0)).group_by(vec![1]),
    ]
}

/// Checks that an answer computed through the (maintained) SMAs equals the
/// naive answer over the current table state.
fn check_answers(t: &Table, smas: &SmaSet) {
    for c in [10i64, 50, 90] {
        let pred = BucketPred::cmp(0, CmpOp::Le, c);
        let specs = vec![AggSpec::CountStar, AggSpec::Sum(col(0))];
        let mut fast = SmaGAggr::new(t, pred.clone(), vec![1], specs.clone(), smas).unwrap();
        let fast_rows = collect(&mut fast).unwrap();
        let mut slow = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(t)), pred)),
            vec![1],
            specs,
        );
        assert_eq!(fast_rows, collect(&mut slow).unwrap(), "cutoff {c}");
    }
}

fn check_grading_sound(t: &Table, smas: &SmaSet) {
    for c in [10i64, 50, 90] {
        let pred = BucketPred::cmp(0, CmpOp::Le, c);
        for b in 0..t.bucket_count() {
            let tuples = t.scan_bucket(b).unwrap();
            let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
            match pred.grade(b, smas) {
                Grade::Qualifies => assert_eq!(passing, tuples.len()),
                Grade::Disqualifies => assert_eq!(passing, 0),
                Grade::Ambivalent => {}
            }
        }
    }
}

#[test]
fn inserts_keep_smas_exact() {
    let mut t = Table::in_memory("t", schema(), 1);
    let mut smas = SmaSet::build(&t, defs()).unwrap();
    for k in 0..60i64 {
        let tu = tuple((k * 13) % 100, b'A' + (k % 2) as u8);
        let tid = t.append(&tu).unwrap();
        smas.note_insert(t.bucket_of_page(tid.page), &tu).unwrap();
    }
    check_grading_sound(&t, &smas);
    check_answers(&t, &smas);
    // Maintained set equals a from-scratch rebuild.
    let rebuilt = SmaSet::build(&t, defs()).unwrap();
    for c in [10i64, 50, 90] {
        let pred = BucketPred::cmp(0, CmpOp::Le, c);
        for b in 0..t.bucket_count() {
            assert_eq!(pred.grade(b, &smas), pred.grade(b, &rebuilt));
        }
    }
}

#[test]
fn deletes_leave_sound_but_loose_bounds() {
    let mut t = Table::in_memory("t", schema(), 1);
    let mut ids: Vec<(TupleId, Vec<Value>)> = Vec::new();
    for k in 0..40i64 {
        let tu = tuple(k, b'A' + (k % 2) as u8);
        let tid = t.append(&tu).unwrap();
        ids.push((tid, tu));
    }
    let mut smas = SmaSet::build(&t, defs()).unwrap();
    // Delete every third tuple.
    for (tid, tu) in ids.iter().step_by(3) {
        t.delete(*tid).unwrap();
        smas.note_delete(t.bucket_of_page(tid.page), tu).unwrap();
    }
    check_grading_sound(&t, &smas);
    check_answers(&t, &smas);
    // Refresh tightens the stale buckets; answers stay identical.
    let mut refreshed = smas.clone();
    for b in 0..t.bucket_count() {
        refreshed.refresh_bucket(&t, b).unwrap();
    }
    check_grading_sound(&t, &refreshed);
    check_answers(&t, &refreshed);
}

#[test]
fn updates_combine_delete_and_insert() {
    let mut t = Table::in_memory("t", schema(), 1);
    let mut ids: Vec<(TupleId, Vec<Value>)> = Vec::new();
    for k in 0..40i64 {
        let tu = tuple(k, b'A');
        let tid = t.append(&tu).unwrap();
        ids.push((tid, tu));
    }
    let mut smas = SmaSet::build(&t, defs()).unwrap();
    for (tid, old) in ids.iter().take(20) {
        let new = tuple(old[0].as_int().unwrap() + 100, b'B');
        let new_tid = t.update(*tid, &new).unwrap();
        assert_eq!(
            t.bucket_of_page(new_tid.page),
            t.bucket_of_page(tid.page),
            "updates stay in their bucket"
        );
        smas.note_update(t.bucket_of_page(tid.page), old, &new)
            .unwrap();
    }
    check_grading_sound(&t, &smas);
    check_answers(&t, &smas);
}

/// Random workload of inserts/deletes/updates mirrored into the SMAs:
/// grading soundness and exact answers must survive any interleaving.
#[test]
fn random_workload_stays_consistent() {
    let mut rng = StdRng::seed_from_u64(0x3A17_0001);
    for _ in 0..24 {
        let n_ops = rng.random_range(1..80usize);
        let mut t = Table::in_memory("t", schema(), 1);
        let mut smas = SmaSet::build(&t, defs()).unwrap();
        let mut live: Vec<(TupleId, Vec<Value>)> = Vec::new();
        for _ in 0..n_ops {
            let kind = rng.random_range(0..10u8);
            let k = rng.random_range(0i64..100);
            let pick = rng.random_range(0..64usize);
            match kind {
                // 60 % inserts, 20 % deletes, 20 % updates.
                0..=5 => {
                    let tu = tuple(k, b'A' + (k % 3) as u8);
                    let tid = t.append(&tu).unwrap();
                    smas.note_insert(t.bucket_of_page(tid.page), &tu).unwrap();
                    live.push((tid, tu));
                }
                6 | 7 => {
                    if live.is_empty() {
                        continue;
                    }
                    let (tid, tu) = live.swap_remove(pick % live.len());
                    t.delete(tid).unwrap();
                    smas.note_delete(t.bucket_of_page(tid.page), &tu).unwrap();
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = pick % live.len();
                    let (tid, old) = live[idx].clone();
                    let new = tuple(k, b'A' + (k % 3) as u8);
                    // Fixed-width tuple: same size, update stays in place.
                    let new_tid = t.update(tid, &new).unwrap();
                    smas.note_update(t.bucket_of_page(tid.page), &old, &new)
                        .unwrap();
                    live[idx] = (new_tid, new);
                }
            }
        }
        check_grading_sound(&t, &smas);
        check_answers(&t, &smas);
    }
}
