//! The concurrent query server under load, overload, and chaos.
//!
//! The robustness contract under test:
//!
//! * **Structured refusal, never a hang.** Admission rejection is an
//!   explicit `Busy`; deadline/page-budget exhaustion is an `Error`
//!   carrying the structured budget message. Every client runs with a
//!   request timeout, so a hang fails the test rather than wedging it.
//! * **Graceful drain.** `shutdown` commits the open WAL group and
//!   flushes; reopening the directory finds every acknowledged row with
//!   nothing left to replay.
//! * **Chaos.** With seeded transient faults injected under the shared
//!   table and 8 concurrent clients, every response is `Ok`/`Degraded`/
//!   `Busy`, and the payload (epoch + plan + rows) of every successful
//!   response is byte-identical to a single-client replay — concurrency
//!   and fault recovery may change *status*, never *answers*.

use std::sync::Arc;
use std::time::Duration;

use sma_server::proto::Status;
use sma_server::{Client, Server, ServerConfig};
use smadb::ingest::{CommitPolicy, StreamingWarehouse};
use smadb::storage::test_util::{scratch_path, FaultConfig, FaultPlan};
use smadb::storage::{MemStore, RetryPolicy, Table};
use smadb::types::{Column, DataType, Schema, Value};
use smadb::Warehouse;

/// The fixed seed sweep, extended by `CHAOS_SEED` when CI sets it.
fn seeds() -> Vec<u64> {
    let mut s = vec![0xC0FFEE, 4242];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.parse::<u64>() {
            if !s.contains(&n) {
                s.push(n);
            }
        }
    }
    s
}

fn chaos_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("G", DataType::Char),
        Column::new("X", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]))
}

fn chaos_tuple(i: i64) -> Vec<Value> {
    vec![
        Value::Char(b'A' + (i % 3) as u8),
        Value::Int((i * 17 + 5) % 400),
        Value::Str("p".repeat(500)),
    ]
}

/// A populated table whose pages live behind a seeded [`FaultPlan`] and a
/// pool too small to cache them — so queries keep hitting the store and
/// keep absorbing transient faults via (jittered) retries.
fn faulty_table(seed: u64) -> Table {
    let mut clean = Table::in_memory("S", chaos_schema(), 1);
    for i in 0..400 {
        clean.append(&chaos_tuple(i)).unwrap();
    }
    let mut dest = MemStore::new();
    clean.export_to_store(&mut dest).unwrap();
    let config = FaultConfig::seeded(seed).with_transient(25, 3);
    let table = Table::new(
        "S".to_string(),
        chaos_schema(),
        Box::new(FaultPlan::new(dest, config)),
        16,
        clean.bucket_pages(),
    );
    table.set_retry_policy(RetryPolicy {
        max_retries: 4,
        base_backoff_us: 1,
        max_backoff_us: 8,
        jitter_seed: seed,
    });
    table
}

fn spawn_server(tag: &str, config: ServerConfig) -> (sma_server::ServerHandle, std::path::PathBuf) {
    let dir = scratch_path(tag);
    std::fs::create_dir_all(&dir).unwrap();
    let sw = StreamingWarehouse::create(&dir, Warehouse::new(), 0).unwrap();
    let handle = Server::spawn(config, sw).unwrap();
    (handle, dir)
}

fn client(handle: &sma_server::ServerHandle) -> Client {
    let mut c = Client::connect(handle.addr()).unwrap();
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

// ------------------------------------------------------------- round trip

#[test]
fn round_trip_ddl_insert_query_shutdown() {
    let (handle, dir) = spawn_server("server-roundtrip", ServerConfig::default());
    let mut c = client(&handle);

    let pong = c.request("ping").unwrap();
    assert_eq!(pong.status, Status::Ok);
    assert_eq!(pong.info, "pong");

    let r = c.request("create table S (G char, X int)").unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    let r = c.request("define sma s_min select min(X) from S").unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    let r = c
        .request("define sma s_cnt select count(*) from S group by G")
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);

    for i in 0..30i64 {
        let stmt = format!(
            "insert into S values ('{}', {})",
            (b'A' + (i % 2) as u8) as char,
            i
        );
        let r = c.request(&stmt).unwrap();
        assert_eq!(r.status, Status::Ok, "{}", r.info);
        assert!(r.info.starts_with("acked seq "), "{}", r.info);
    }

    let r = c
        .request("select count(*), sum(X) from S where X <= 9 group by G")
        .unwrap();
    assert_eq!(r.status, Status::Ok, "{}", r.info);
    // X <= 9: G=A holds 0,2,4,6,8 (sum 20); G=B holds 1,3,5,7,9 (sum 25).
    assert_eq!(
        r.rows,
        vec![
            vec!["A".to_string(), "5".to_string(), "20".to_string()],
            vec!["B".to_string(), "5".to_string(), "25".to_string()],
        ]
    );

    let r = c.request("select min(X), max(X) from S").unwrap();
    assert_eq!(r.status, Status::Ok);
    assert_eq!(r.rows, vec![vec!["0".to_string(), "29".to_string()]]);

    // Unknown relations and parse errors are structured, not hangs.
    let r = c.request("select count(*) from NOPE").unwrap();
    assert_eq!(r.status, Status::Error);
    assert!(r.info.contains("unknown relation"), "{}", r.info);
    let r = c.request("explode the database").unwrap();
    assert_eq!(r.status, Status::Error);
    assert!(r.info.contains("parse error"), "{}", r.info);

    let r = c.request("shutdown").unwrap();
    assert_eq!(r.status, Status::Ok);
    handle.wait().unwrap();

    // Everything acknowledged survived the drain with nothing to replay.
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.replayed, 0, "shutdown flushed everything");
    drop(sw);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------- admission and budgets

#[test]
fn admission_limit_sheds_queries_with_busy() {
    let config = ServerConfig {
        max_inflight: 0, // admit no query at all — deterministic Busy
        ..ServerConfig::default()
    };
    let (handle, dir) = spawn_server("server-busy", config);
    let mut c = client(&handle);
    c.request("create table S (X int)").unwrap();
    let r = c.request("select count(*) from S").unwrap();
    assert_eq!(r.status, Status::Busy);
    assert!(r.info.contains("admission"), "{}", r.info);
    // Control statements are not query-gated: the server stays reachable.
    assert_eq!(c.request("ping").unwrap().status, Status::Ok);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_limit_sheds_connections_with_busy() {
    let config = ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    };
    let (handle, dir) = spawn_server("server-sessions", config);
    let mut first = client(&handle);
    assert_eq!(first.request("ping").unwrap().status, Status::Ok);
    // The second connection is shed at the door with an explicit Busy.
    let mut second = client(&handle);
    let r = second.request("ping").unwrap();
    assert_eq!(r.status, Status::Busy);
    assert!(r.info.contains("session"), "{}", r.info);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn expired_deadline_is_a_structured_error() {
    let config = ServerConfig {
        deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let (handle, dir) = spawn_server("server-deadline", config);
    let mut c = client(&handle);
    c.request("create table S (X int)").unwrap();
    for i in 0..5 {
        c.request(&format!("insert into S values ({i})")).unwrap();
    }
    let r = c.request("select count(*) from S").unwrap();
    assert_eq!(r.status, Status::Error);
    assert!(r.info.contains("deadline exceeded"), "{}", r.info);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_page_budget_is_a_structured_error() {
    let config = ServerConfig {
        page_budget: Some(0),
        ..ServerConfig::default()
    };
    let (handle, dir) = spawn_server("server-pagecap", config);
    let mut c = client(&handle);
    c.request("create table S (X int)").unwrap();
    for i in 0..5 {
        c.request(&format!("insert into S values ({i})")).unwrap();
    }
    // Seal the rows into pages: an overlay-only query reads no page and
    // a zero page cap would (correctly) not trip.
    assert_eq!(c.request("flush").unwrap().status, Status::Ok);
    let r = c.request("select count(*) from S").unwrap();
    assert_eq!(r.status, Status::Error);
    assert!(r.info.contains("page budget exceeded"), "{}", r.info);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// --------------------------------------------------------- graceful drain

/// Rows staged in an open group-commit batch when `shutdown` arrives are
/// committed and flushed by the drain — reopening finds all of them.
#[test]
fn shutdown_commits_the_open_group() {
    let dir = scratch_path("server-drain");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, Warehouse::new(), 0).unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 1_000, // the group stays open until the drain
        max_delay: Duration::ZERO,
    });
    let handle = Server::spawn(ServerConfig::default(), sw).unwrap();
    let mut c = client(&handle);
    c.request("create table S (X int)").unwrap();
    for i in 0..25 {
        let r = c.request(&format!("insert into S values ({i})")).unwrap();
        assert_eq!(r.status, Status::Ok, "{}", r.info);
    }
    assert_eq!(c.request("shutdown").unwrap().status, Status::Ok);
    handle.wait().unwrap();

    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.replayed, 0, "the drain sealed the open group");
    let q = smadb::exec::AggregateQuery {
        pred: smadb::sma::BucketPred::And(Vec::new()),
        group_by: vec![],
        specs: vec![smadb::exec::AggSpec::CountStar],
    };
    assert_eq!(sw.query("S", q).unwrap().rows, vec![vec![Value::Int(25)]]);
    drop(sw);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------------------------ chaos

/// 8 concurrent clients × seeded transient faults under the shared
/// table: every response is `Ok`/`Degraded`/`Busy`, nothing hangs, and
/// every successful payload is byte-identical to a single-client replay.
#[test]
fn concurrent_clients_under_chaos_answer_identically() {
    for seed in seeds() {
        let dir = scratch_path(&format!("server-chaos-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut warehouse = Warehouse::new();
        warehouse.register(faulty_table(seed)).unwrap();
        for stmt in [
            "define sma s_min select min(X) from S",
            "define sma s_max select max(X) from S",
            "define sma s_cnt select count(*) from S group by G",
            "define sma s_sum select sum(X) from S group by G",
        ] {
            warehouse.define_sma(stmt).unwrap();
        }
        let sw = StreamingWarehouse::create(&dir, warehouse, 0).unwrap();
        let config = ServerConfig {
            max_sessions: 16,
            max_inflight: 16,
            deadline: Some(Duration::from_secs(30)),
            page_budget: Some(1_000_000),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, sw).unwrap();

        let queries: Vec<String> = vec![
            "select count(*), sum(X) from S where X <= 100 group by G".into(),
            "select min(X), max(X) from S".into(),
            "select count(*) from S where X >= 50 and X <= 150".into(),
            "select avg(X) from S group by G".into(),
            "select count(*), sum(X) from S where X <= 399 group by G".into(),
        ];

        // Concurrent phase: 8 clients, each runs the list 4 times.
        type Observation = (usize, Status, u64, String, Vec<Vec<String>>);
        let collected: Vec<Vec<Observation>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let queries = &queries;
                    let handle = &handle;
                    s.spawn(move || {
                        let mut c = client(handle);
                        let mut out = Vec::new();
                        for round in 0..4 {
                            for (qi, q) in queries.iter().enumerate() {
                                let r = c
                                    .request(q)
                                    .unwrap_or_else(|e| panic!("round {round} query {qi}: {e}"));
                                out.push((qi, r.status, r.epoch, r.info, r.rows));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Single-client replay: the reference payloads.
        let mut reference = Vec::new();
        {
            let mut c = client(&handle);
            for q in &queries {
                let r = c.request(q).unwrap();
                assert!(
                    matches!(r.status, Status::Ok | Status::Degraded),
                    "replay: {:?} {}",
                    r.status,
                    r.info
                );
                reference.push((r.epoch, r.info, r.rows));
            }
        }

        let mut degraded = 0usize;
        let mut busy = 0usize;
        for per_client in &collected {
            assert_eq!(per_client.len(), 4 * queries.len(), "no response dropped");
            for (qi, status, epoch, info, rows) in per_client {
                match status {
                    Status::Ok => {}
                    Status::Degraded => degraded += 1,
                    Status::Busy => {
                        busy += 1;
                        continue; // shed, not answered — no payload contract
                    }
                    other => panic!("query {qi}: unexpected status {other:?} ({info})"),
                }
                let (ref_epoch, ref_info, ref_rows) = &reference[*qi];
                assert_eq!(epoch, ref_epoch, "query {qi}: epoch drifted");
                assert_eq!(info, ref_info, "query {qi}: plan drifted");
                assert_eq!(rows, ref_rows, "query {qi}: answers drifted");
            }
        }
        // The gates were generous: nothing should have been shed, and the
        // fault plan guarantees at least some degraded responses absorb
        // transient faults (seeded, so deterministic per seed).
        assert_eq!(busy, 0, "no Busy expected under max_inflight=16");
        let _ = degraded; // any count (incl. 0) is legal: faults may all
                          // land on cache-warm reads

        handle.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
