//! Equivalence of the zero-copy view layer with the materializing row
//! codec, and of the view-based scan kernels with their materialized
//! references: answer rows, I/O traces, and scan counters must be
//! byte-identical with or without views, at any parallelism, healthy or
//! degraded.

use smadb::exec::{
    collect, cutoff, query1_query, query6_sma_definitions, run_query1, run_query6, Filter,
    HashGAggr, Parallelism, PlannerConfig, Q6Params, Query1Config, SeqScan, SmaGAggr, SmaScan,
};
use smadb::sma::{Grade, SmaSet};
use smadb::storage::Table;
use smadb::tpcd::{generate_lineitem_table, Clustering, GenConfig};
use smadb::types::row::{decode, encode};
use smadb::types::{Column, DataType, Date, Decimal, Projection, RowLayout, Schema, StdRng, Value};

const TYPES: [DataType; 5] = [
    DataType::Int,
    DataType::Decimal,
    DataType::Date,
    DataType::Char,
    DataType::Str,
];

fn random_value(rng: &mut StdRng, ty: DataType) -> Value {
    if rng.random_range(0i64..8) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Int => Value::Int(rng.random_range(-1_000_000i64..1_000_000)),
        DataType::Decimal => Value::Decimal(Decimal::from_cents(
            rng.random_range(-10_000_000i64..10_000_000),
        )),
        DataType::Date => Value::Date(Date::from_days(rng.random_range(0i64..40_000) as i32)),
        DataType::Char => Value::Char(rng.random_range(32i64..127) as u8),
        DataType::Str => {
            let len = rng.random_range(0i64..40) as usize;
            let s: String = (0..len)
                .map(|_| rng.random_range(32i64..127) as u8 as char)
                .collect();
            Value::Str(s)
        }
    }
}

/// Column-at-a-time view decode equals the full materializing decode for
/// every data type, null pattern, and projection subset.
#[test]
fn views_decode_identically_across_types_nulls_and_projections() {
    let mut rng = StdRng::seed_from_u64(0x51EE7);
    for round in 0..300 {
        let ncols = 1 + rng.random_range(0i64..12) as usize;
        let schema = Schema::new(
            (0..ncols)
                .map(|i| Column::new(format!("C{i}"), TYPES[rng.random_range(0i64..5) as usize]))
                .collect(),
        );
        let tuple: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| random_value(&mut rng, c.ty))
            .collect();
        let mut image = Vec::new();
        encode(&schema, &tuple, &mut image).unwrap();
        let decoded = decode(&schema, &image).unwrap();
        assert_eq!(decoded, tuple, "round {round}: codec round-trip");

        let layout = RowLayout::new(&schema);
        let view = layout.view(&image).unwrap();
        for (c, expect) in decoded.iter().enumerate() {
            assert_eq!(&view.get(c).unwrap(), expect, "round {round} col {c}");
            assert_eq!(
                view.is_null(c),
                *expect == Value::Null,
                "round {round} col {c}"
            );
            // Typed comparison agrees with the materialized semantics for
            // an arbitrary probe value.
            let probe_ty = TYPES[rng.random_range(0i64..5) as usize];
            let probe = random_value(&mut rng, probe_ty);
            assert_eq!(
                view.cmp_value(c, &probe).unwrap(),
                decoded[c].partial_cmp_typed(&probe),
                "round {round} col {c} probe {probe:?}"
            );
        }
        assert_eq!(view.materialize().unwrap(), decoded, "round {round}");

        // A random projection subset decodes identically column-at-a-time,
        // and its fixed-width classification is truthful.
        let proj = Projection::new(
            (0..ncols)
                .filter(|_| rng.random_range(0i64..2) == 0)
                .collect(),
        );
        for &c in proj.columns() {
            assert_eq!(
                view.get(c).unwrap(),
                decoded[c],
                "round {round} proj col {c}"
            );
        }
        assert_eq!(
            proj.is_fixed_width_only(&schema),
            proj.columns()
                .iter()
                .all(|&c| schema.column(c).ty != DataType::Str),
            "round {round}"
        );
    }
}

fn q1_fixture(clustering: Clustering) -> (Table, SmaSet) {
    let table = generate_lineitem_table(&GenConfig::tiny(clustering));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    (table, smas)
}

/// The production zero-copy `SmaScan` kernel against a materialized
/// reference built from public APIs (`scan_bucket` + `eval_tuple` — the
/// pre-view implementation): identical rows AND an identical cold I/O
/// trace, since the views read the very same pages in the very same order.
#[test]
fn zero_copy_scan_matches_materialized_reference_kernel() {
    for clustering in [Clustering::SortedByShipdate, Clustering::Uniform] {
        let (t, smas) = q1_fixture(clustering);
        let mut grades_seen = [0u64; 3];
        for delta in [90, 600, 1500, 2300] {
            let pred = query1_query(&t, cutoff(delta)).unwrap().pred;

            // Materialized reference kernel.
            t.make_cold().unwrap();
            t.reset_io_stats();
            let mut expected = Vec::new();
            for b in 0..t.bucket_count() {
                let g = pred.grade(b, &smas);
                match g {
                    Grade::Disqualifies => grades_seen[0] += 1,
                    Grade::Qualifies => grades_seen[1] += 1,
                    Grade::Ambivalent => grades_seen[2] += 1,
                }
                if g == Grade::Disqualifies {
                    continue;
                }
                for (_, tuple) in t.scan_bucket(b).unwrap() {
                    if g == Grade::Qualifies || pred.eval_tuple(&tuple) {
                        expected.push(tuple);
                    }
                }
            }
            let io_reference = t.io_stats();

            // Production zero-copy kernel.
            t.make_cold().unwrap();
            t.reset_io_stats();
            let mut scan = SmaScan::new(&t, pred, &smas);
            let rows = collect(&mut scan).unwrap();
            let io_views = t.io_stats();

            assert_eq!(rows, expected, "{clustering:?} delta {delta}: rows");
            assert_eq!(
                io_views, io_reference,
                "{clustering:?} delta {delta}: I/O trace"
            );
        }
        assert!(
            grades_seen.iter().all(|&n| n > 0),
            "{clustering:?}: sweep must exercise all three grades, saw {grades_seen:?}"
        );
    }
}

/// Q1 and Q6 answers are identical with and without SMAs — the with-SMA
/// plans run the zero-copy `SmaGAggr`/`SmaScan` kernels, the without-SMA
/// plan runs the fused view-based full scan.
#[test]
fn query1_and_query6_answers_are_plan_independent() {
    for clustering in [Clustering::SortedByShipdate, Clustering::Uniform] {
        let (t, smas) = q1_fixture(clustering);
        let with = run_query1(&t, Some(&smas), &Query1Config::default()).unwrap();
        let without = run_query1(&t, None, &Query1Config::default()).unwrap();
        assert!(!with.rows.is_empty(), "{clustering:?}");
        assert_eq!(with.rows, without.rows, "{clustering:?}");

        let q6_smas = SmaSet::build(&t, query6_sma_definitions(&t).unwrap()).unwrap();
        let planner = PlannerConfig::default();
        let p = Q6Params::default();
        let q6_with = run_query6(&t, Some(&q6_smas), &p, &planner).unwrap();
        let q6_without = run_query6(&t, None, &p, &planner).unwrap();
        assert_eq!(q6_with.revenue, q6_without.revenue, "{clustering:?}");
    }
}

/// The view-based `SmaGAggr` produces byte-identical rows and counters at
/// 1 and 8 threads, including under quarantine damage — which also proves
/// the degrade-to-scan path works through the lending visitor API.
#[test]
fn view_kernels_identical_at_every_parallelism_even_degraded() {
    let (t, smas) = q1_fixture(Clustering::SortedByShipdate);
    let q = query1_query(&t, cutoff(90)).unwrap();

    let mut damaged = smas.clone();
    damaged.quarantine_bucket(0);
    damaged.quarantine_bucket(t.bucket_count() / 2);

    let run = |threads: usize| {
        let mut op = SmaGAggr::new(
            &t,
            q.pred.clone(),
            q.group_by.clone(),
            q.specs.clone(),
            &damaged,
        )
        .unwrap()
        .with_parallelism(Parallelism::new(threads));
        let rows = collect(&mut op).unwrap();
        (rows, op.counters())
    };

    let (expected, counters) = run(1);
    assert!(
        !counters.degradation.is_empty(),
        "quarantine must force demotions through the visitor scan"
    );
    for threads in [2, 8] {
        let (rows, c) = run(threads);
        assert_eq!(rows, expected, "{threads} threads: rows");
        assert_eq!(c, counters, "{threads} threads: counters");
    }

    // The degraded, view-based answer still matches the SMA-less
    // materialized operator chain exactly.
    let mut baseline = HashGAggr::new(
        Box::new(Filter::new(Box::new(SeqScan::new(&t)), q.pred.clone())),
        q.group_by.clone(),
        q.specs.clone(),
    );
    assert_eq!(expected, collect(&mut baseline).unwrap());
}
