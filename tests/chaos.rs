//! Deterministic chaos harness: seeded fault schedules against the
//! self-healing execution path.
//!
//! The invariant under test, from the resilience design: for every seeded
//! [`FaultPlan`] that injects at most retry-budget transient faults or
//! damages only SMA state (never base-table pages), Query 1 / Query 6
//! answers are byte-identical to a fault-free run, the
//! [`DegradationReport`] is non-empty exactly when faults fired, and
//! `heal()` followed by a scrub reports zero remaining quarantined
//! buckets. Only base-table damage may fail a query, and then with the
//! transient/permanent cause preserved in the error source chain.
//!
//! Every schedule is a pure function of a seed (see `FaultConfig`), so a
//! failure reproduces exactly from the seed printed in the assert message.
//! CI sweeps extra seeds via the `CHAOS_SEED` environment variable.

use smadb::exec::{
    collect, cutoff, query1_query, query6_sma_definitions, run_query1, run_query6, AggSpec,
    Parallelism, PlanKind, PlannerConfig, Q6Params, Query1Config, SmaGAggr,
};
use smadb::sma::{col, BucketPred, CmpOp, SmaSet};
use smadb::storage::test_util::{scratch_path, CrashStore, FaultConfig, FaultPlan, SYNC_FAILURE};
use smadb::storage::{MemStore, RetryPolicy, StoreError, Table, Wal, PAGE_SIZE};
use smadb::tpcd::{generate_lineitem_table, lineitem_schema, Clustering, GenConfig};
use smadb::types::{StdRng, Value, WalRecord};
use smadb::Warehouse;

/// The fixed seed sweep, extended by `CHAOS_SEED` when CI sets it.
fn seeds() -> Vec<u64> {
    let mut s = vec![0xC0FFEE, 17, 4242, 0x5EED_0BAD];
    if let Ok(v) = std::env::var("CHAOS_SEED") {
        if let Ok(n) = v.parse::<u64>() {
            if !s.contains(&n) {
                s.push(n);
            }
        }
    }
    s
}

/// All four clustering models of the generator.
fn clusterings() -> [Clustering; 4] {
    [
        Clustering::SortedByShipdate,
        Clustering::diagonal_default(),
        Clustering::Uniform,
        Clustering::Shuffled,
    ]
}

/// An instant-retry policy so chaos sweeps never sleep in backoff.
fn fast_retries(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff_us: 0,
        ..RetryPolicy::default()
    }
}

/// Copies `clean`'s pages into a fresh [`MemStore`] behind a [`FaultPlan`]
/// and opens a table over it with an empty (cold) buffer pool, so every
/// first read during execution goes through the fault schedule.
fn faulty_clone(clean: &Table, config: FaultConfig, max_retries: u32) -> Table {
    let mut dest = MemStore::new();
    clean
        .export_to_store(&mut dest)
        .expect("export clean pages");
    let table = Table::new(
        clean.name().to_string(),
        lineitem_schema(),
        Box::new(FaultPlan::new(dest, config)),
        2048,
        clean.bucket_pages(),
    );
    table.set_retry_policy(fast_retries(max_retries));
    table
}

/// Seeded choice of `1..=3` distinct bucket numbers below `bucket_count`.
fn pick_buckets(seed: u64, bucket_count: u32) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0C7);
    let k = 1 + (rng.next_u64() % 3) as usize;
    let mut picked: Vec<u32> = (0..k)
        .map(|_| (rng.next_u64() % bucket_count.max(1) as u64) as u32)
        .collect();
    picked.sort_unstable();
    picked.dedup();
    picked
}

/// Whether the error chain (via `std::error::Error::source`) reaches a
/// transient [`StoreError`] — proves both the classification and the
/// satellite `source()` plumbing at once.
fn transient_in_chain(err: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(err);
    while let Some(e) = cur {
        if e.downcast_ref::<StoreError>()
            .is_some_and(StoreError::is_transient)
        {
            return true;
        }
        cur = e.source();
    }
    false
}

/// Transient faults within the retry budget are invisible: answers match
/// the fault-free run bit for bit, nothing is demoted, and the pool's
/// retry counters say faults fired iff the schedule planned any.
#[test]
fn transient_faults_within_the_retry_budget_are_invisible() {
    for clustering in clusterings() {
        let clean = generate_lineitem_table(&GenConfig::tiny(clustering));
        let smas = SmaSet::build_query1_set(&clean).unwrap();
        let baseline = run_query1(&clean, None, &Query1Config::default()).unwrap();
        for seed in seeds() {
            let config = FaultConfig::seeded(seed).with_transient(40, 3);
            let probe = FaultPlan::new(MemStore::new(), config);
            let planned = probe.any_fault_planned(clean.page_count());

            // Full scan reads every page, so it meets every planned fault.
            let faulty = faulty_clone(&clean, config, 3);
            let run = run_query1(&faulty, None, &Query1Config::default()).unwrap();
            assert_eq!(run.rows, baseline.rows, "{clustering:?} seed {seed}");
            assert_eq!(run.io.gaveup_reads, 0, "{clustering:?} seed {seed}");
            assert_eq!(
                run.io.retried_reads > 0,
                planned,
                "{clustering:?} seed {seed}: retries fired iff planned"
            );

            // SMA plans over the same faulty device: still exact, no bucket
            // demoted, and the spent retries land in the report.
            let faulty = faulty_clone(&clean, config, 3);
            let run = run_query1(&faulty, Some(&smas), &Query1Config::default()).unwrap();
            assert_eq!(run.rows, baseline.rows, "{clustering:?} seed {seed}");
            assert_eq!(run.io.gaveup_reads, 0);
            assert!(
                run.degradation.demoted_buckets.is_empty(),
                "{clustering:?} seed {seed}: transient faults must not demote: {}",
                run.degradation
            );
            if run.plan_kind != PlanKind::FullScan {
                assert_eq!(
                    run.degradation.retries_spent, run.io.retried_reads,
                    "{clustering:?} seed {seed}: report accounts the pool's retries"
                );
            }
        }
    }
}

/// Damage confined to SMA state (seeded bucket quarantine) degrades the
/// plan but never the answer, for Query 1 and Query 6 across all four
/// clustering models.
#[test]
fn sma_only_damage_degrades_but_never_changes_answers() {
    let q6 = Q6Params::default();
    let planner = PlannerConfig::default();
    for clustering in clusterings() {
        let table = generate_lineitem_table(&GenConfig::tiny(clustering));
        for seed in seeds() {
            let picked = pick_buckets(seed, table.bucket_count());

            let mut smas = SmaSet::build_query1_set(&table).unwrap();
            let healthy = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
            assert!(healthy.degradation.is_empty(), "{}", healthy.degradation);
            for &b in &picked {
                smas.quarantine_bucket(b);
            }
            let degraded = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
            assert_eq!(
                degraded.rows, healthy.rows,
                "{clustering:?} seed {seed}: Q1 answer changed under quarantine"
            );
            if degraded.plan_kind != PlanKind::FullScan {
                assert_eq!(
                    degraded.degradation.quarantined_buckets, picked,
                    "{clustering:?} seed {seed}: every damaged bucket is reported"
                );
                assert_eq!(
                    degraded.degradation.demoted_buckets, picked,
                    "{clustering:?} seed {seed}"
                );
            }

            let mut smas = SmaSet::build(&table, query6_sma_definitions(&table).unwrap()).unwrap();
            let healthy = run_query6(&table, Some(&smas), &q6, &planner).unwrap();
            for &b in &picked {
                smas.quarantine_bucket(b);
            }
            let degraded = run_query6(&table, Some(&smas), &q6, &planner).unwrap();
            assert_eq!(
                degraded.revenue, healthy.revenue,
                "{clustering:?} seed {seed}: Q6 revenue changed under quarantine"
            );
            if degraded.plan_kind != PlanKind::FullScan {
                assert_eq!(degraded.degradation.quarantined_buckets, picked);
            }
        }
    }
}

/// Bursts longer than the retry budget must fail the query — degradation
/// never hides base-table damage — and the error's `source()` chain
/// preserves the transient cause through table and executor layers.
#[test]
fn retry_exhaustion_fails_loudly_with_the_transient_cause() {
    let clean = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let config = FaultConfig::seeded(0xBAD5EED).with_transient(100, 4);

    // Budget ≥ worst burst: the same schedule is fully absorbed.
    let absorbed = faulty_clone(&clean, config, 4);
    absorbed.scan().expect("budget covers every burst");
    let stats = absorbed.io_stats();
    assert!(stats.retried_reads > 0);
    assert_eq!(stats.gaveup_reads, 0);

    // No retries allowed: the very first faulted page read gives up.
    let exhausted = faulty_clone(&clean, config, 0);
    let err = exhausted.scan().unwrap_err();
    assert!(
        transient_in_chain(&err),
        "table error chain lost the transient cause: {err}"
    );
    assert!(exhausted.io_stats().gaveup_reads >= 1);

    // Same through the full query stack: ExecError -> TableError ->
    // StoreError::Transient.
    let exhausted = faulty_clone(&clean, config, 0);
    let err = run_query1(&exhausted, None, &Query1Config::default()).unwrap_err();
    assert!(
        transient_in_chain(&err),
        "query error chain lost the transient cause: {err}"
    );
}

/// Degraded execution is deterministic under parallelism: rows, counters,
/// and the degradation report are identical at 1, 2, 4, and 8 workers.
#[test]
fn degraded_execution_is_identical_at_every_parallelism() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    for seed in seeds() {
        let mut smas = SmaSet::build_query1_set(&table).unwrap();
        for b in pick_buckets(seed, table.bucket_count()) {
            smas.quarantine_bucket(b);
        }
        let query = query1_query(&table, cutoff(90)).unwrap();
        let mut reference: Option<(Vec<_>, _)> = None;
        for threads in [1, 2, 4, 8] {
            let mut op = SmaGAggr::new(
                &table,
                query.pred.clone(),
                query.group_by.clone(),
                query.specs.clone(),
                &smas,
            )
            .unwrap()
            .with_parallelism(Parallelism::new(threads));
            let rows = collect(&mut op).unwrap();
            let counters = op.counters();
            assert!(
                !counters.degradation.is_empty(),
                "seed {seed}: quarantine must surface in the report"
            );
            match &reference {
                None => reference = Some((rows, counters)),
                Some((r_rows, r_counters)) => {
                    assert_eq!(&rows, r_rows, "seed {seed} at {threads} threads");
                    assert_eq!(
                        &counters, r_counters,
                        "seed {seed} at {threads} threads: counters/report diverged"
                    );
                }
            }
        }
    }
}

/// Warehouse end to end: seeded quarantine degrades queries (exactly),
/// the scrub counts the damage, `heal()` rebuilds exactly the damaged
/// buckets, and the post-heal scrub is clean again.
#[test]
fn quarantine_heal_scrub_roundtrip_is_exact() {
    for seed in seeds() {
        let mut w = Warehouse::new();
        w.register(generate_lineitem_table(&GenConfig::tiny(
            Clustering::SortedByShipdate,
        )))
        .unwrap();
        for stmt in [
            "define sma chaos_min_ship select min(L_SHIPDATE) from LINEITEM",
            "define sma chaos_max_ship select max(L_SHIPDATE) from LINEITEM",
            "define sma chaos_cnt select count(*) from LINEITEM group by L_RETURNFLAG",
            "define sma chaos_qty select sum(L_QUANTITY) from LINEITEM group by L_RETURNFLAG",
        ] {
            w.define_sma(stmt).unwrap();
        }
        let schema = lineitem_schema();
        let query = smadb::exec::AggregateQuery {
            pred: BucketPred::cmp(
                schema.index_of("L_SHIPDATE").unwrap(),
                CmpOp::Le,
                Value::Date(cutoff(90)),
            ),
            group_by: vec![schema.index_of("L_RETURNFLAG").unwrap()],
            specs: vec![
                AggSpec::CountStar,
                AggSpec::Sum(col(schema.index_of("L_QUANTITY").unwrap())),
            ],
        };
        let healthy = w.query("LINEITEM", query.clone()).unwrap();
        assert_ne!(
            healthy.plan_kind,
            PlanKind::FullScan,
            "seed {seed}: harness rot — the SMA fast path must be in play"
        );
        assert!(healthy.degradation.is_empty());

        let dir = scratch_path(&format!("chaos-wh-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        w.save_to_dir(&dir).unwrap();

        let picked = pick_buckets(seed, w.table("LINEITEM").unwrap().bucket_count());
        w.quarantine_sma_buckets("LINEITEM", &picked).unwrap();
        assert_eq!(w.quarantined_sma_buckets("LINEITEM"), picked);

        let degraded = w.query("LINEITEM", query.clone()).unwrap();
        assert_eq!(degraded.rows, healthy.rows, "seed {seed}");
        assert_eq!(degraded.degradation.quarantined_buckets, picked);

        let report = w.scrub(&dir).unwrap();
        assert!(!report.is_clean(), "seed {seed}: {report}");
        assert_eq!(report.buckets_quarantined, picked.len() as u64);

        let healed = w.heal("LINEITEM").unwrap();
        assert_eq!(healed, picked.len(), "seed {seed}: heal is surgical");
        assert!(w.quarantined_sma_buckets("LINEITEM").is_empty());
        let report = w.scrub(&dir).unwrap();
        assert!(
            report.is_clean(),
            "seed {seed}: post-heal scrub not clean: {report}"
        );
        assert_eq!(report.buckets_quarantined, 0);

        let after = w.query("LINEITEM", query.clone()).unwrap();
        assert_eq!(after.rows, healthy.rows, "seed {seed}");
        assert!(after.degradation.is_empty(), "{}", after.degradation);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The streaming-ingest WAL under a seeded storm of fsync failures, then
/// a crash at every legal byte offset: an insert counts as acknowledged
/// only when append *and* sync both succeeded, and for every crash point
/// replay returns a duplicate-free prefix of the attempted records that
/// contains every acknowledged one — zero lost, zero double-applied.
///
/// Sync faults are deliberately ambiguous (the bytes may be durable even
/// though the call failed), so recovering *more* than was acknowledged is
/// legal; recovering less, reordering, or inventing records never is.
#[test]
fn ingest_wal_survives_sync_fault_storms_and_crashes_at_every_offset() {
    for seed in seeds() {
        let config = FaultConfig::seeded(seed).with_sync_faults(30);
        let wal = match Wal::create(CrashStore::with_config(config), 1) {
            Ok(w) => w,
            Err(e) => {
                // The device failed the very first fsync: the log was
                // never born, nothing was ever acknowledged. Legal.
                assert!(e.to_string().contains(SYNC_FAILURE), "seed {seed}: {e}");
                continue;
            }
        };
        let mut wal = wal;
        let mut attempted = Vec::new();
        // A successful fsync acknowledges every record appended so far,
        // including ones whose own sync call failed earlier.
        let mut acked = 0usize;
        let mut failed_syncs = 0usize;
        // No acked byte may be cut: fsync success means durability.
        let mut durable_end = PAGE_SIZE as u64;
        for seq in 1..=60u64 {
            let rec = WalRecord {
                epoch: 1,
                seq,
                relation: "S".into(),
                row: vec![seq as u8; 11 + (seq as usize * 7) % 90],
            };
            wal.append(&rec).expect("no write faults in this schedule");
            attempted.push(rec);
            match wal.sync() {
                Ok(()) => {
                    acked = attempted.len();
                    durable_end = PAGE_SIZE as u64 + wal.tail_bytes();
                }
                Err(e) => {
                    assert!(e.to_string().contains(SYNC_FAILURE), "seed {seed}: {e}");
                    failed_syncs += 1;
                }
            }
        }
        assert!(acked > 0, "seed {seed}: 30% faults cannot kill every sync");
        assert!(failed_syncs > 0, "seed {seed}: 30% over 60 draws must fire");

        let full = wal.into_store();
        for cut in durable_end..=full.len_bytes() {
            let mut crashed = full.clone();
            crashed.truncate_at(cut);
            let (_, replay) = match Wal::open(crashed, 1) {
                Ok(ok) => ok,
                Err(e) => {
                    // Truncating the torn tail needs a sync of its own,
                    // which the storm may also fail; recovery reports the
                    // fault instead of trusting the device.
                    assert!(e.to_string().contains(SYNC_FAILURE), "seed {seed}: {e}");
                    continue;
                }
            };
            assert!(
                replay.records.len() >= acked,
                "seed {seed} cut {cut}: lost acknowledged records \
                 ({} recovered < {acked} acked)",
                replay.records.len()
            );
            assert_eq!(
                replay.records,
                attempted[..replay.records.len()],
                "seed {seed} cut {cut}: recovered set must be an exact \
                 prefix of the attempted sequence (no dups, no phantoms)"
            );
        }
    }
}

/// Persistent SMA damage: seeded bit flips across saved `.sma` images are
/// caught on reopen, exactly the flipped images are rebuilt from the base
/// table, and answers never change.
#[test]
fn flipped_sma_files_rebuild_on_reopen_with_identical_answers() {
    for seed in seeds() {
        let mut w = Warehouse::new();
        w.register(generate_lineitem_table(&GenConfig::tiny(
            Clustering::diagonal_default(),
        )))
        .unwrap();
        for stmt in [
            "define sma chaos_min_ship select min(L_SHIPDATE) from LINEITEM",
            "define sma chaos_max_ship select max(L_SHIPDATE) from LINEITEM",
            "define sma chaos_cnt select count(*) from LINEITEM group by L_RETURNFLAG",
        ] {
            w.define_sma(stmt).unwrap();
        }
        let schema = lineitem_schema();
        let query = smadb::exec::AggregateQuery {
            pred: BucketPred::cmp(
                schema.index_of("L_SHIPDATE").unwrap(),
                CmpOp::Le,
                Value::Date(cutoff(90)),
            ),
            group_by: vec![schema.index_of("L_RETURNFLAG").unwrap()],
            specs: vec![AggSpec::CountStar],
        };
        let expected = w.query("LINEITEM", query.clone()).unwrap();

        let dir = scratch_path(&format!("chaos-flip-{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        w.save_to_dir(&dir).unwrap();

        // Seeded single-bit flips in a seeded, non-empty subset of the
        // saved SMA images; base-table pages stay untouched.
        let mut sma_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "sma"))
            .collect();
        sma_files.sort();
        assert_eq!(sma_files.len(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF11B);
        let mut flipped = Vec::new();
        for path in &sma_files {
            if !flipped.is_empty() && rng.next_u64().is_multiple_of(2) {
                continue;
            }
            let len = std::fs::metadata(path).unwrap().len();
            let offset = rng.next_u64() % len;
            let bit = (rng.next_u64() % 8) as u8;
            smadb::storage::test_util::flip_bit_in_file(path, offset, bit).unwrap();
            flipped.push(path.file_stem().unwrap().to_string_lossy().into_owned());
        }
        assert!(!flipped.is_empty());

        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        let mut rebuilt = report.smas_rebuilt.clone();
        rebuilt.sort();
        flipped.sort();
        assert_eq!(
            rebuilt, flipped,
            "seed {seed}: exactly the flipped images are rebuilt"
        );
        assert!(report.pages_corrupt.is_empty(), "seed {seed}");
        let got = reopened.query("LINEITEM", query.clone()).unwrap();
        assert_eq!(got.rows, expected.rows, "seed {seed}");
        assert!(got.degradation.is_empty(), "{}", got.degradation);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
