//! Segment compaction: crash sweeps at every protocol stage and the
//! interactions that make compaction dangerous if gotten wrong.
//!
//! The contract under test, from the compaction design:
//!
//! * **Compaction is invisible to queries.** Merging a table's delta
//!   segments into one full segment changes file layout, never answers.
//! * **Compaction never touches the WAL.** The catalog epoch advances, the
//!   watermark and the WAL epoch do not — rows acknowledged after a
//!   compaction must still replay after a crash.
//! * **Crash anywhere, recover exactly.** The manifest rename is the only
//!   commit point; every [`CompactStage`] prefix recovers to a committed
//!   generation holding every acknowledged row exactly once.

use std::sync::Arc;

use smadb::compact::{CompactStage, CompactionPolicy};
use smadb::exec::{AggSpec, AggregateQuery};
use smadb::ingest::{CommitPolicy, StreamingWarehouse};
use smadb::sma::{col, BucketPred, CmpOp};
use smadb::storage::test_util::scratch_path;
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, Tuple, Value};
use smadb::Warehouse;
use std::path::Path;
use std::time::Duration;

fn padded_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("G", DataType::Char),
        Column::new("X", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]))
}

/// Wide tuples (~1.2 KB) so a handful of rows spans pages and every flush
/// crosses a page boundary — otherwise the delta segments would keep
/// shadowing each other completely and the segment list would never grow.
fn padded_tuple(i: i64) -> Tuple {
    vec![
        Value::Char(b'A' + (i % 3) as u8),
        Value::Int(i),
        Value::Str("x".repeat(1200)),
    ]
}

fn padded_warehouse() -> Warehouse {
    let mut w = Warehouse::new();
    w.register(Table::in_memory("S", padded_schema(), 1))
        .unwrap();
    for stmt in [
        "define sma s_min select min(X) from S",
        "define sma s_max select max(X) from S",
        "define sma s_cnt select count(*) from S group by G",
        "define sma s_sum select sum(X) from S group by G",
    ] {
        w.define_sma(stmt).unwrap();
    }
    w
}

/// Group by flag, count + sum + avg over the rows with `X <= hi`.
fn small_query(hi: i64) -> AggregateQuery {
    AggregateQuery {
        pred: BucketPred::cmp(1, CmpOp::Le, hi),
        group_by: vec![0],
        specs: vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(1)),
            AggSpec::Avg(col(1)),
        ],
    }
}

/// The reference answer: the same tuples bulk-loaded in the same order.
fn bulk_reference(rows: &[Tuple], hi: i64) -> Vec<Tuple> {
    let mut w = padded_warehouse();
    for t in rows {
        w.insert("S", t).unwrap();
    }
    w.query("S", small_query(hi)).unwrap().rows
}

/// Streams `flushes * per_flush` rows through `flushes` separate flush
/// generations, leaving a fragmented (multi-segment) table behind.
fn fragmented(dir: &Path, flushes: usize, per_flush: usize) -> (StreamingWarehouse, Vec<Tuple>) {
    let mut sw = StreamingWarehouse::create(dir, padded_warehouse(), 0).unwrap();
    sw.set_commit_policy(CommitPolicy {
        batch_rows: 16,
        max_delay: Duration::ZERO,
    });
    let mut rows = Vec::new();
    for f in 0..flushes {
        for i in 0..per_flush {
            let t = padded_tuple((f * per_flush + i) as i64);
            sw.insert("S", &t).unwrap();
            rows.push(t);
        }
        sw.flush().unwrap();
    }
    (sw, rows)
}

/// Crash after every stage of the compaction protocol: recovery restores a
/// committed generation holding every acknowledged row exactly once, and a
/// query over it matches the bulk-loaded reference.
#[test]
fn compaction_crash_at_every_stage_preserves_every_row() {
    for stage in [
        CompactStage::SegmentsWritten,
        CompactStage::Committed,
        CompactStage::Complete,
    ] {
        let dir = scratch_path(&format!("compact-stage-{stage:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut sw, rows) = fragmented(&dir, 4, 8);
        let expected = bulk_reference(&rows, i64::MAX);
        let expected_lo = bulk_reference(&rows, 13);
        assert!(
            sw.warehouse().segment_count("S") > 1,
            "{stage:?}: the table must be fragmented before compaction"
        );

        let report = sw.compact_until(stage).unwrap();
        assert!(
            report.segments_before > report.segments_after,
            "{stage:?}: {report}"
        );
        if stage >= CompactStage::Committed {
            assert_eq!(sw.warehouse().segment_count("S"), 1, "{stage:?}");
        }
        drop(sw); // the crash

        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(
            report.warehouse.is_clean(),
            "{stage:?}: sealed data must scrub clean: {}",
            report.warehouse
        );
        assert_eq!(
            report.replayed, 0,
            "{stage:?}: compaction never leaves rows in the WAL"
        );
        match stage {
            CompactStage::SegmentsWritten => {
                // Never committed: the old generation is live and the
                // merged segment is debris recovery must sweep.
                assert!(sw.warehouse().segment_count("S") > 1, "{stage:?}");
                assert!(!report.orphans_removed.is_empty(), "{stage:?}");
            }
            CompactStage::Committed => {
                // Committed: the merged generation is live; the
                // superseded delta files are the debris.
                assert_eq!(sw.warehouse().segment_count("S"), 1, "{stage:?}");
                assert!(!report.orphans_removed.is_empty(), "{stage:?}");
            }
            CompactStage::Complete => {
                assert_eq!(sw.warehouse().segment_count("S"), 1, "{stage:?}");
                assert!(
                    report.is_clean(),
                    "{stage:?}: a finished compaction is pristine"
                );
            }
        }
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?}");
        let got = sw.query("S", small_query(13)).unwrap();
        assert_eq!(got.rows, expected_lo, "{stage:?}");

        // Recovery composes: compact again, restart, still exact.
        let mut sw = sw;
        sw.compact().unwrap();
        assert_eq!(sw.warehouse().segment_count("S"), 1, "{stage:?}");
        drop(sw);
        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(report.is_clean(), "{stage:?}: after re-compaction");
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?}: after re-compaction");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The epoch-split regression: a compaction advances the catalog epoch but
/// must NOT advance the WAL epoch — rows acknowledged after the compaction
/// carry the old WAL epoch, and filtering replay on the catalog epoch
/// would silently drop every one of them after a crash.
/// The same stage-prefix crash sweep with the columnar policy on:
/// compaction is the catch-all conversion point (`convert_buckets_from(0)`
/// over the merged table), so a committed columnar compaction must leave a
/// mixed row+columnar generation that recovery reclassifies from page
/// markers, while an uncommitted one must fall back to the row-major
/// generation — either way every acknowledged row answers exactly once.
#[test]
fn columnar_compaction_crash_at_every_stage_preserves_every_row() {
    for stage in [
        CompactStage::SegmentsWritten,
        CompactStage::Committed,
        CompactStage::Complete,
    ] {
        let dir = scratch_path(&format!("compact-columnar-stage-{stage:?}"));
        std::fs::create_dir_all(&dir).unwrap();
        let (mut sw, rows) = fragmented(&dir, 4, 8);
        let expected = bulk_reference(&rows, i64::MAX);
        sw.set_columnar(true);

        let report = sw.compact_until(stage).unwrap();
        assert!(report.segments_before > report.segments_after, "{stage:?}");
        if stage >= CompactStage::Committed {
            assert!(
                !sw.warehouse()
                    .table("S")
                    .unwrap()
                    .columnar_buckets()
                    .is_empty(),
                "{stage:?}: a committed columnar compaction converts buckets"
            );
        }
        drop(sw); // the crash

        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert!(
            report.warehouse.is_clean(),
            "{stage:?}: must scrub clean: {}",
            report.warehouse
        );
        let table = sw.warehouse().table("S").unwrap();
        if stage >= CompactStage::Committed {
            assert!(
                !table.columnar_buckets().is_empty(),
                "{stage:?}: recovery must rediscover the columnar buckets"
            );
            assert!(
                !table.is_columnar_bucket(table.bucket_count() - 1),
                "{stage:?}: the tail bucket must stay row-major"
            );
        } else {
            assert!(
                table.columnar_buckets().is_empty(),
                "{stage:?}: an uncommitted conversion must leave no trace"
            );
        }
        let got = sw.query("S", small_query(i64::MAX)).unwrap();
        assert_eq!(got.rows, expected, "{stage:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn rows_acknowledged_after_a_compaction_survive_a_crash() {
    let dir = scratch_path("compact-wal-epoch");
    std::fs::create_dir_all(&dir).unwrap();
    let (mut sw, mut rows) = fragmented(&dir, 3, 6);
    let epoch_before = sw.epoch();
    sw.compact().unwrap();
    assert!(sw.epoch() > epoch_before, "compaction commits a generation");

    // Nine rows acknowledged after the compaction, living only in the WAL.
    for i in 18..27 {
        let t = padded_tuple(i);
        sw.insert("S", &t).unwrap();
        rows.push(t);
    }
    sw.commit().unwrap();
    assert_eq!(sw.buffered(), 9);
    drop(sw); // the crash

    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert_eq!(
        report.replayed, 9,
        "rows acked after the compaction must replay: {report:?}"
    );
    assert_eq!(report.skipped, 0, "{report:?}");
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&rows, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Automatic compaction: threshold flushes fragment the table, the policy
/// merges it back, the segment list stays bounded, hierarchical SMAs are
/// rebuilt, and answers never change — in-process and across a restart.
#[test]
fn compaction_policy_keeps_the_segment_list_bounded() {
    let dir = scratch_path("compact-policy");
    std::fs::create_dir_all(&dir).unwrap();
    let mut sw = StreamingWarehouse::create(&dir, padded_warehouse(), 4).unwrap();
    sw.set_compaction_policy(CompactionPolicy { max_segments: 2 });
    assert_eq!(sw.compaction_policy(), CompactionPolicy { max_segments: 2 });
    let all: Vec<Tuple> = (0..64).map(padded_tuple).collect();
    for t in &all {
        sw.insert("S", t).unwrap();
        assert!(sw.take_flush_error().is_none(), "no flush may fail here");
    }
    // 16 threshold flushes happened; without compaction the segment list
    // would be an order of magnitude longer.
    assert!(
        sw.warehouse().segment_count("S") <= 2,
        "got {} segments",
        sw.warehouse().segment_count("S")
    );
    assert!(
        sw.hierarchy_count() >= 1,
        "a compaction ran and rebuilt hierarchies"
    );
    assert!(
        sw.hierarchy("S", "s_min", "s_max").is_some(),
        "the min/max pair over X forms a hierarchy"
    );
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&all, i64::MAX));

    drop(sw);
    let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let got = sw.query("S", small_query(i64::MAX)).unwrap();
    assert_eq!(got.rows, bulk_reference(&all, i64::MAX));
    std::fs::remove_dir_all(&dir).unwrap();
}
