//! Equivalence of the columnar (PAX) bucket layout and its batch kernels
//! with the row-slotted layout and the zero-copy row kernels: answer
//! rows, I/O page counts, and degradation reports must be byte-identical
//! whichever layout holds the data, at any parallelism, healthy or under
//! seeded fault injection.
//!
//! The conversion always leaves the tail bucket row-major (appends land
//! there), so every columnar table here is the *mixed* layout the
//! converter actually produces — the sweep exercises row and columnar
//! buckets inside one plan, not a purely columnar special case.

use smadb::exec::{
    collect, cutoff, query1_query, query6_sma_definitions, run_query1, run_query6, Parallelism,
    PlannerConfig, Q6Params, Query1Config, SmaGAggr, SmaScan,
};
use smadb::sma::SmaSet;
use smadb::storage::test_util::{FaultConfig, FaultPlan};
use smadb::storage::{MemStore, RetryPolicy, Table};
use smadb::tpcd::{generate_lineitem_table, lineitem_schema, Clustering, GenConfig};
use smadb::types::StdRng;

/// All four clustering models of the generator.
fn clusterings() -> [Clustering; 4] {
    [
        Clustering::SortedByShipdate,
        Clustering::diagonal_default(),
        Clustering::Uniform,
        Clustering::Shuffled,
    ]
}

/// An instant-retry policy so fault sweeps never sleep in backoff.
fn fast_retries(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff_us: 0,
        ..RetryPolicy::default()
    }
}

/// Re-seals `clean`'s pages into a fresh table and converts every
/// eligible bucket to the columnar layout — the same data in the mixed
/// row+columnar form, cold and with zeroed I/O counters.
fn columnar_twin(clean: &Table) -> Table {
    let mut dest = MemStore::new();
    clean
        .export_to_store(&mut dest)
        .expect("export clean pages");
    let mut t = Table::new(
        clean.name().to_string(),
        lineitem_schema(),
        Box::new(dest),
        2048,
        clean.bucket_pages(),
    );
    let converted = t.convert_buckets_from(0).expect("convert");
    assert!(!converted.is_empty(), "conversion must do real work");
    assert!(
        !t.is_columnar_bucket(t.bucket_count() - 1),
        "the tail bucket must stay row-major (mixed layout)"
    );
    t.flush().expect("persist converted pages");
    t.make_cold().expect("cold start");
    t.reset_io_stats();
    t
}

/// Same as [`columnar_twin`] but behind a seeded [`FaultPlan`], with the
/// retry budget installed before conversion so the conversion scan
/// absorbs any bursts it meets. I/O counters are NOT reset: a burst is
/// consumed by the first read of its page, wherever that read happens,
/// so "retries fired iff planned" is only meaningful over the whole
/// history of the clone.
fn faulty_columnar_twin(clean: &Table, config: FaultConfig, max_retries: u32) -> Table {
    let mut dest = MemStore::new();
    clean
        .export_to_store(&mut dest)
        .expect("export clean pages");
    let mut t = Table::new(
        clean.name().to_string(),
        lineitem_schema(),
        Box::new(FaultPlan::new(dest, config)),
        2048,
        clean.bucket_pages(),
    );
    t.set_retry_policy(fast_retries(max_retries));
    let converted = t
        .convert_buckets_from(0)
        .expect("conversion absorbs transient bursts within budget");
    assert!(!converted.is_empty());
    t.flush().expect("persist converted pages");
    t.make_cold().expect("cold start");
    t
}

/// Randomized delta sweep over all four clusterings: `SmaScan`, Query 1
/// (with and without SMAs), and Query 6 answer byte-identically on the
/// row table and its columnar twin, and the cold `SmaScan` I/O trace is
/// page-for-page identical — the columnar chunk occupies exactly the
/// bucket's page range, so the batch kernels earn their speedup from CPU
/// work, not from reading less.
#[test]
fn randomized_sweep_row_and_columnar_agree_on_rows_and_io() {
    let mut rng = StdRng::seed_from_u64(0xC01_5EED);
    for clustering in clusterings() {
        let row = generate_lineitem_table(&GenConfig::tiny(clustering));
        let row_smas = SmaSet::build_query1_set(&row).unwrap();
        let col = columnar_twin(&row);
        // Built over the columnar table, so SMA construction itself goes
        // through the columnwise build path; values must match anyway.
        let col_smas = SmaSet::build_query1_set(&col).unwrap();

        let mut deltas = vec![90, 2300];
        deltas.extend((0..4).map(|_| rng.random_range(0i64..2500) as i32));
        for delta in deltas {
            let pred = query1_query(&row, cutoff(delta)).unwrap().pred;

            row.make_cold().unwrap();
            row.reset_io_stats();
            let mut scan = SmaScan::new(&row, pred.clone(), &row_smas);
            let row_rows = collect(&mut scan).unwrap();
            let row_io = row.io_stats();

            col.make_cold().unwrap();
            col.reset_io_stats();
            let mut scan = SmaScan::new(&col, pred.clone(), &col_smas);
            let col_rows = collect(&mut scan).unwrap();
            let col_io = col.io_stats();

            assert_eq!(col_rows, row_rows, "{clustering:?} delta {delta}: rows");
            assert_eq!(
                col_io, row_io,
                "{clustering:?} delta {delta}: cold I/O page counts"
            );

            let with_row = run_query1(&row, Some(&row_smas), &Query1Config::default()).unwrap();
            let with_col = run_query1(&col, Some(&col_smas), &Query1Config::default()).unwrap();
            assert_eq!(
                with_col.rows, with_row.rows,
                "{clustering:?} delta {delta}: Q1 with SMAs"
            );
            let bare_row = run_query1(&row, None, &Query1Config::default()).unwrap();
            let bare_col = run_query1(&col, None, &Query1Config::default()).unwrap();
            assert_eq!(
                bare_col.rows, bare_row.rows,
                "{clustering:?} delta {delta}: Q1 full scan"
            );
        }

        let q6_row_smas = SmaSet::build(&row, query6_sma_definitions(&row).unwrap()).unwrap();
        let q6_col_smas = SmaSet::build(&col, query6_sma_definitions(&col).unwrap()).unwrap();
        let p = Q6Params::default();
        let planner = PlannerConfig::default();
        let q6_row = run_query6(&row, Some(&q6_row_smas), &p, &planner).unwrap();
        let q6_col = run_query6(&col, Some(&q6_col_smas), &p, &planner).unwrap();
        assert_eq!(q6_col.revenue, q6_row.revenue, "{clustering:?}: Q6 revenue");
    }
}

/// Quarantine damage on the columnar table: the batch-kernel `SmaGAggr`
/// produces byte-identical rows and counters at 1/2/8 threads, the
/// degradation report matches the row table's under the same damage, and
/// the demoted buckets take the (columnar) base-scan path without
/// changing the answer.
#[test]
fn columnar_kernels_identical_at_every_parallelism_even_degraded() {
    let row = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let col = columnar_twin(&row);
    let q = query1_query(&row, cutoff(90)).unwrap();

    let damage = |t: &Table| {
        let mut smas = SmaSet::build_query1_set(t).unwrap();
        smas.quarantine_bucket(0);
        smas.quarantine_bucket(t.bucket_count() / 2);
        smas
    };
    let row_smas = damage(&row);
    let col_smas = damage(&col);

    let run = |t: &Table, smas: &SmaSet, threads: usize| {
        let mut op = SmaGAggr::new(t, q.pred.clone(), q.group_by.clone(), q.specs.clone(), smas)
            .unwrap()
            .with_parallelism(Parallelism::new(threads));
        let rows = collect(&mut op).unwrap();
        (rows, op.counters())
    };

    let (expected_rows, row_counters) = run(&row, &row_smas, 1);
    let (col_rows, col_counters) = run(&col, &col_smas, 1);
    assert_eq!(col_rows, expected_rows, "row vs columnar under quarantine");
    assert!(
        !col_counters.degradation.is_empty(),
        "quarantine must force demotions through the columnar scan"
    );
    assert_eq!(
        col_counters.degradation, row_counters.degradation,
        "identical damage must yield identical degradation reports"
    );
    for threads in [2, 8] {
        let (rows, c) = run(&col, &col_smas, threads);
        assert_eq!(rows, expected_rows, "{threads} threads: rows");
        assert_eq!(c, col_counters, "{threads} threads: counters");
    }
}

/// Seeded transient fault injection against the columnar twin at 1/2/8
/// threads: answers stay byte-identical to the fault-free row baseline,
/// nothing gives up or demotes within the retry budget, the degradation
/// report is identical at every thread count, and retries fired iff the
/// schedule planned any. A fresh clone per thread count keeps the
/// per-page burst schedule deterministic across runs.
#[test]
fn columnar_answers_survive_transient_faults_at_every_parallelism() {
    for clustering in clusterings() {
        let clean = generate_lineitem_table(&GenConfig::tiny(clustering));
        let baseline = run_query1(&clean, None, &Query1Config::default()).unwrap();
        for seed in [0xC0FFEE_u64, 4242] {
            let config = FaultConfig::seeded(seed).with_transient(40, 3);
            let probe = FaultPlan::new(MemStore::new(), config);
            let planned = probe.any_fault_planned(clean.page_count());

            let mut reports = Vec::new();
            for threads in [1usize, 2, 8] {
                let faulty = faulty_columnar_twin(&clean, config, 3);
                let smas = SmaSet::build_query1_set(&faulty).unwrap();
                let q = query1_query(&faulty, cutoff(90)).unwrap();
                let mut op = SmaGAggr::new(&faulty, q.pred, q.group_by, q.specs, &smas)
                    .unwrap()
                    .with_parallelism(Parallelism::new(threads));
                let rows = collect(&mut op).unwrap();
                assert_eq!(
                    rows, baseline.rows,
                    "{clustering:?} seed {seed} threads {threads}: rows"
                );
                let counters = op.counters();
                assert!(
                    counters.degradation.demoted_buckets.is_empty(),
                    "{clustering:?} seed {seed} threads {threads}: \
                     transient faults must not demote: {}",
                    counters.degradation
                );
                let io = faulty.io_stats();
                assert_eq!(
                    io.gaveup_reads, 0,
                    "{clustering:?} seed {seed} threads {threads}"
                );
                assert_eq!(
                    io.retried_reads > 0,
                    planned,
                    "{clustering:?} seed {seed} threads {threads}: \
                     retries fired iff planned (over conversion + query)"
                );
                reports.push(counters.degradation);
            }
            assert!(
                reports.windows(2).all(|w| w[0] == w[1]),
                "{clustering:?} seed {seed}: degradation report must not \
                 depend on parallelism: {reports:?}"
            );
        }
    }
}
