//! Fuzz-style robustness tests: arbitrary inputs must produce errors, not
//! panics, at every parsing/decoding boundary.

use smadb::sma::parse::parse_define_sma;
use smadb::storage::{MemStore, PageStore, SlottedPage, PAGE_SIZE};
use smadb::types::{row, Column, DataType, Date, Decimal, Schema, StdRng};

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("L_SHIPDATE", DataType::Date),
        Column::new("L_DISCOUNT", DataType::Decimal),
        Column::new("L_COMMENT", DataType::Str),
    ])
}

/// A random string mixing SQL-ish tokens, punctuation, and oddball chars.
fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    const CHARS: &[char] = &[
        'a', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '(', ')', '*', ',', '.', ';', '\'', '"',
        '-', '+', '/', '\\', '_', '%', 'é', '☃', '\0',
    ];
    let n = rng.random_range(0..=max_len);
    (0..n)
        .map(|_| CHARS[rng.random_range(0..CHARS.len())])
        .collect()
}

/// The `define sma` parser never panics on arbitrary input.
#[test]
fn parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF022_0001);
    let s = schema();
    for _ in 0..256 {
        let input = random_text(&mut rng, 200);
        let _ = parse_define_sma(&input, &s);
    }
}

/// The parser never panics on near-miss SQL either.
#[test]
fn parser_never_panics_on_sqlish() {
    const AGGS: &[&str] = &["min", "max", "sum", "count", "avg", "median"];
    const ARGS: &[&str] = &["*", "L_SHIPDATE", "L_DISCOUNT", "NOPE", "1 + 2", "(("];
    const TAILS: &[&str] = &[
        "",
        " group by L_SHIPDATE",
        " group by",
        " order by X",
        " , Y",
    ];
    let mut rng = StdRng::seed_from_u64(0xF022_0002);
    let s = schema();
    for _ in 0..256 {
        let name: String = (0..rng.random_range(1..=8usize))
            .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
            .collect();
        let agg = AGGS[rng.random_range(0..AGGS.len())];
        let arg = ARGS[rng.random_range(0..ARGS.len())];
        let tail = TAILS[rng.random_range(0..TAILS.len())];
        let stmt = format!("define sma {name} select {agg}({arg}) from LINEITEM{tail}");
        let _ = parse_define_sma(&stmt, &s);
    }
}

/// Tuple decoding never panics on arbitrary bytes.
#[test]
fn row_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF022_0003);
    let s = schema();
    for _ in 0..256 {
        let n = rng.random_range(0..200usize);
        let bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u8)).collect();
        let _ = row::decode(&s, &bytes);
    }
}

/// Page validation never panics on arbitrary images.
#[test]
fn page_from_bytes_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF022_0004);
    for _ in 0..256 {
        let mut image = vec![0u8; PAGE_SIZE];
        for b in image.iter_mut() {
            *b = rng.random_range(0..=255u8);
        }
        let corrupt_at = rng.random_range(0..64usize);
        image[corrupt_at.min(PAGE_SIZE - 1)] = rng.random_range(0..=255u8);
        if let Ok(page) = SlottedPage::from_bytes(&image) {
            // A page that validates must be safely iterable.
            for (_, img) in page.iter() {
                let _ = img.len();
            }
        }
    }
}

/// SMA deserialization never panics on corrupted stores.
#[test]
fn sma_load_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF022_0005);
    for _ in 0..256 {
        let n = rng.random_range(0..PAGE_SIZE);
        let mut store = MemStore::new();
        let no = store.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        for b in page[..n].iter_mut() {
            *b = rng.random_range(0..=255u8);
        }
        store.write_page(no, &page).unwrap();
        let _ = smadb::sma::load_sma(&store, no);
    }
}

#[test]
fn decode_survives_hostile_string_lengths() {
    // A crafted image whose string length prefix points past the buffer.
    let s = schema();
    let t = vec![
        smadb::types::Value::Date(Date::parse("1997-01-01").unwrap()),
        smadb::types::Value::Decimal(Decimal::ZERO),
        smadb::types::Value::Str("hi".into()),
    ];
    let mut buf = Vec::new();
    row::encode(&s, &t, &mut buf).unwrap();
    // Inflate the string length field (bitmap 1 byte + date 4 + decimal 8 = offset 13).
    buf[13] = 0xFF;
    buf[14] = 0xFF;
    assert!(row::decode(&s, &buf).is_err());
}
