//! Fuzz-style robustness tests: arbitrary inputs must produce errors, not
//! panics, at every parsing/decoding boundary.

use proptest::prelude::*;

use smadb::sma::parse::parse_define_sma;
use smadb::storage::{MemStore, PageStore, SlottedPage, PAGE_SIZE};
use smadb::types::{row, Column, DataType, Date, Decimal, Schema};

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("L_SHIPDATE", DataType::Date),
        Column::new("L_DISCOUNT", DataType::Decimal),
        Column::new("L_COMMENT", DataType::Str),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The `define sma` parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_define_sma(&input, &schema());
    }

    /// The parser never panics on near-miss SQL either.
    #[test]
    fn parser_never_panics_on_sqlish(
        name in "[a-z]{1,8}",
        agg in prop_oneof!["min", "max", "sum", "count", "avg", "median"],
        arg in prop_oneof!["\\*", "L_SHIPDATE", "L_DISCOUNT", "NOPE", "1 \\+ 2", "\\(\\("],
        tail in prop_oneof!["", " group by L_SHIPDATE", " group by", " order by X", " , Y"],
    ) {
        let stmt = format!("define sma {name} select {agg}({arg}) from LINEITEM{tail}");
        let _ = parse_define_sma(&stmt, &schema());
    }

    /// Tuple decoding never panics on arbitrary bytes.
    #[test]
    fn row_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = row::decode(&schema(), &bytes);
    }

    /// Page validation never panics on arbitrary images.
    #[test]
    fn page_from_bytes_never_panics(
        mut image in proptest::collection::vec(any::<u8>(), PAGE_SIZE..=PAGE_SIZE),
        corrupt_at in 0usize..64,
        corrupt_val in any::<u8>(),
    ) {
        image[corrupt_at.min(PAGE_SIZE - 1)] = corrupt_val;
        if let Ok(page) = SlottedPage::from_bytes(&image) {
            // A page that validates must be safely iterable.
            for (_, img) in page.iter() {
                let _ = img.len();
            }
        }
    }

    /// SMA deserialization never panics on corrupted stores.
    #[test]
    fn sma_load_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..PAGE_SIZE),
    ) {
        let mut store = MemStore::new();
        let no = store.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[..garbage.len()].copy_from_slice(&garbage);
        store.write_page(no, &page).unwrap();
        let _ = smadb::sma::load_sma(&store, no);
    }
}

#[test]
fn decode_survives_hostile_string_lengths() {
    // A crafted image whose string length prefix points past the buffer.
    let s = schema();
    let t = vec![
        smadb::types::Value::Date(Date::parse("1997-01-01").unwrap()),
        smadb::types::Value::Decimal(Decimal::ZERO),
        smadb::types::Value::Str("hi".into()),
    ];
    let mut buf = Vec::new();
    row::encode(&s, &t, &mut buf);
    // Inflate the string length field (bitmap 1 byte + date 4 + decimal 8 = offset 13).
    buf[13] = 0xFF;
    buf[14] = 0xFF;
    assert!(row::decode(&s, &buf).is_err());
}
