//! Query 1 correctness across clustering regimes, deltas, bucket sizes
//! and plan kinds — every SMA-accelerated answer must equal the naive
//! full-scan oracle exactly.

use smadb::exec::{run_query1, PlanKind, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::MemStore;
use smadb::tpcd::{
    generate_lineitem_table, load_lineitem, q1_cutoff, q1_reference_table, Clustering, GenConfig,
    Q1Row,
};
use smadb::types::Tuple;

fn to_q1_rows(rows: &[Tuple]) -> Vec<Q1Row> {
    rows.iter()
        .map(|r| Q1Row {
            returnflag: r[0].as_char().unwrap(),
            linestatus: r[1].as_char().unwrap(),
            sum_qty: r[2].as_decimal().unwrap(),
            sum_base_price: r[3].as_decimal().unwrap(),
            sum_disc_price: r[4].as_decimal().unwrap(),
            sum_charge: r[5].as_decimal().unwrap(),
            avg_qty: r[6].as_decimal().unwrap(),
            avg_price: r[7].as_decimal().unwrap(),
            avg_disc: r[8].as_decimal().unwrap(),
            count_order: r[9].as_int().unwrap(),
        })
        .collect()
}

#[test]
fn every_clustering_every_delta() {
    for clustering in [
        Clustering::SortedByShipdate,
        Clustering::diagonal_default(),
        Clustering::Diagonal {
            mean_lag_days: 20.0,
            std_dev_days: 60.0,
        },
        Clustering::Uniform,
        Clustering::Shuffled,
    ] {
        let table = generate_lineitem_table(&GenConfig {
            orders: 800,
            clustering,
            seed: 7,
            bucket_pages: 1,
            pool_pages: 1 << 14,
        });
        let smas = SmaSet::build_query1_set(&table).unwrap();
        for delta in [0, 60, 90, 120, 2000] {
            let cfg = Query1Config {
                delta,
                ..Query1Config::default()
            };
            let with = run_query1(&table, Some(&smas), &cfg).unwrap();
            let oracle = q1_reference_table(&table, q1_cutoff(delta)).unwrap();
            assert_eq!(
                to_q1_rows(&with.rows),
                oracle,
                "clustering {clustering:?} delta {delta} plan {:?}",
                with.plan_kind
            );
        }
    }
}

#[test]
fn bucket_sizes_do_not_change_answers() {
    for bucket_pages in [1u32, 2, 4, 8, 16] {
        let cfg = GenConfig {
            orders: 600,
            clustering: Clustering::diagonal_default(),
            seed: 11,
            bucket_pages,
            pool_pages: 1 << 14,
        };
        let (_, items) = smadb::tpcd::generate(&cfg);
        let table = load_lineitem(&items, Box::new(MemStore::new()), bucket_pages, 1 << 14);
        assert_eq!(table.bucket_pages(), bucket_pages);
        let smas = SmaSet::build_query1_set(&table).unwrap();
        let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
        let oracle = q1_reference_table(&table, q1_cutoff(90)).unwrap();
        assert_eq!(
            to_q1_rows(&with.rows),
            oracle,
            "bucket_pages {bucket_pages}"
        );
    }
}

#[test]
fn parallel_build_answers_identically() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::diagonal_default()));
    let defs = SmaSet::query1_definitions(&table).unwrap();
    let serial = SmaSet::build(&table, defs.clone()).unwrap();
    let parallel = SmaSet::build_parallel(&table, defs, 4).unwrap();
    let a = run_query1(&table, Some(&serial), &Query1Config::default()).unwrap();
    let b = run_query1(&table, Some(&parallel), &Query1Config::default()).unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn sorted_lineitem_gets_the_sma_plan_and_big_page_savings() {
    let table = generate_lineitem_table(&GenConfig {
        orders: 2000,
        ..GenConfig::tiny(Clustering::SortedByShipdate)
    });
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    let without = run_query1(&table, None, &Query1Config::default()).unwrap();
    assert_eq!(with.plan_kind, PlanKind::SmaGAggr);
    assert_eq!(without.plan_kind, PlanKind::FullScan);
    assert_eq!(with.rows, without.rows);
    assert!(
        with.io.logical_reads * 50 < without.io.logical_reads,
        "SMA plan reads {}, full scan reads {}",
        with.io.logical_reads,
        without.io.logical_reads
    );
}

#[test]
fn space_overhead_is_a_few_percent() {
    // §2.4: 8444 SMA pages vs 733.33 MB LINEITEM ≈ 4 %. Our tuples are a
    // bit narrower than AODB's, so allow 2–9 %.
    let table = generate_lineitem_table(&GenConfig {
        orders: 3000,
        ..GenConfig::tiny(Clustering::SortedByShipdate)
    });
    let smas = SmaSet::build_query1_set(&table).unwrap();
    assert_eq!(smas.file_count(), 26, "the paper counts 26 SMA-files");
    let ratio = smas.total_pages() as f64 / table.page_count() as f64;
    assert!(
        (0.02..0.09).contains(&ratio),
        "space overhead {:.2}%",
        ratio * 100.0
    );
}

#[test]
fn file_backed_table_cold_and_warm() {
    use smadb::storage::FileStore;
    let path = smadb::storage::test_util::scratch_path("q1_file_backed");
    let cfg = GenConfig::tiny(Clustering::SortedByShipdate);
    let (_, items) = smadb::tpcd::generate(&cfg);
    let store = FileStore::create(&path).unwrap();
    let table = load_lineitem(&items, Box::new(store), 1, 256);
    table.flush().unwrap();
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let oracle = q1_reference_table(&table, q1_cutoff(90)).unwrap();

    let cold = run_query1(
        &table,
        Some(&smas),
        &Query1Config {
            cold: true,
            ..Query1Config::default()
        },
    )
    .unwrap();
    assert_eq!(to_q1_rows(&cold.rows), oracle);
    assert!(cold.io.physical_reads > 0, "cold run hits the file");

    let warm = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    assert_eq!(to_q1_rows(&warm.rows), oracle);
    assert!(warm.io.physical_reads <= cold.io.physical_reads);
    std::fs::remove_file(&path).ok();
}
