//! Model check: the buffer pool under arbitrary access patterns behaves
//! exactly like the raw store (contents), while hit counting stays
//! consistent (accounting).

use smadb::storage::{BufferPool, MemStore, PageStore, PAGE_SIZE};
use smadb::types::StdRng;

#[derive(Debug, Clone)]
enum Op {
    Read(u8),
    Write(u8, u8),
    Flush,
    Cold,
}

fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.random_range(0..200usize);
    (0..n)
        .map(|_| match rng.random_range(0..4u32) {
            0 => Op::Read(rng.random_range(0..12u8)),
            1 => Op::Write(rng.random_range(0..12u8), rng.random_range(0..=255u8)),
            2 => Op::Flush,
            _ => Op::Cold,
        })
        .collect()
}

#[test]
fn pool_is_transparent() {
    let mut rng = StdRng::seed_from_u64(0xB0F0_0001);
    for case in 0..64 {
        let ops = random_ops(&mut rng);
        let capacity = rng.random_range(1..6usize);
        let n_pages = 12u32;
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..n_pages {
                store.allocate().unwrap();
            }
            BufferPool::new(Box::new(store), capacity)
        };
        // The model: raw page contents.
        let mut model = vec![[0u8; PAGE_SIZE]; n_pages as usize];
        for op in ops {
            match op {
                Op::Read(p) => {
                    let p = (p as u32) % n_pages;
                    let got = pool.with_page(p, |d| d[0]).unwrap();
                    assert_eq!(got, model[p as usize][0], "case {case}");
                }
                Op::Write(p, v) => {
                    let p = (p as u32) % n_pages;
                    pool.with_page_mut(p, |d| d[0] = v).unwrap();
                    model[p as usize][0] = v;
                }
                Op::Flush => pool.flush_all().unwrap(),
                Op::Cold => pool.clear_cache().unwrap(),
            }
        }
        // Final state: every page visible through the pool matches the model.
        for p in 0..n_pages {
            let got = pool.with_page(p, |d| d[0]).unwrap();
            assert_eq!(got, model[p as usize][0], "case {case}");
        }
        // Accounting sanity: hits + misses = logical, classification splits misses.
        let s = pool.stats();
        assert!(s.physical_reads <= s.logical_reads, "case {case}");
        assert_eq!(
            s.sequential_reads + s.random_reads,
            s.physical_reads,
            "case {case}"
        );
        assert!((0.0..=1.0).contains(&s.hit_ratio()), "case {case}");
    }
}

/// With capacity >= working set, a second pass is all hits.
#[test]
fn warm_pass_is_free() {
    for pages in 1u32..8 {
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..pages {
                store.allocate().unwrap();
            }
            BufferPool::new(Box::new(store), 16)
        };
        for p in 0..pages {
            pool.with_page(p, |_| ()).unwrap();
        }
        pool.reset_stats();
        for p in 0..pages {
            pool.with_page(p, |_| ()).unwrap();
        }
        assert_eq!(pool.stats().physical_reads, 0);
        assert_eq!(pool.stats().logical_reads, pages as u64);
    }
}
