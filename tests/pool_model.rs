//! Model check: the buffer pool under arbitrary access patterns behaves
//! exactly like the raw store (contents), while hit counting stays
//! consistent (accounting).

use proptest::prelude::*;

use smadb::storage::{BufferPool, MemStore, PageStore, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Read(u8),
    Write(u8, u8),
    Flush,
    Cold,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..12).prop_map(Op::Read),
            (0u8..12, any::<u8>()).prop_map(|(p, v)| Op::Write(p, v)),
            Just(Op::Flush),
            Just(Op::Cold),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_is_transparent(ops in arb_ops(), capacity in 1usize..6) {
        let n_pages = 12u32;
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..n_pages { store.allocate().unwrap(); }
            BufferPool::new(Box::new(store), capacity)
        };
        // The model: raw page contents.
        let mut model = vec![[0u8; PAGE_SIZE]; n_pages as usize];
        for op in ops {
            match op {
                Op::Read(p) => {
                    let p = (p as u32) % n_pages;
                    let got = pool.with_page(p, |d| d[0]).unwrap();
                    prop_assert_eq!(got, model[p as usize][0]);
                }
                Op::Write(p, v) => {
                    let p = (p as u32) % n_pages;
                    pool.with_page_mut(p, |d| d[0] = v).unwrap();
                    model[p as usize][0] = v;
                }
                Op::Flush => pool.flush_all().unwrap(),
                Op::Cold => pool.clear_cache().unwrap(),
            }
        }
        // Final state: every page visible through the pool matches the model.
        for p in 0..n_pages {
            let got = pool.with_page(p, |d| d[0]).unwrap();
            prop_assert_eq!(got, model[p as usize][0]);
        }
        // Accounting sanity: hits + misses = logical, classification splits misses.
        let s = pool.stats();
        prop_assert!(s.physical_reads <= s.logical_reads);
        prop_assert_eq!(s.sequential_reads + s.random_reads, s.physical_reads);
        prop_assert!((0.0..=1.0).contains(&s.hit_ratio()));
    }

    /// With capacity >= working set, a second pass is all hits.
    #[test]
    fn warm_pass_is_free(pages in 1u32..8) {
        let pool = {
            let mut store = MemStore::new();
            for _ in 0..pages { store.allocate().unwrap(); }
            BufferPool::new(Box::new(store), 16)
        };
        for p in 0..pages { pool.with_page(p, |_| ()).unwrap(); }
        pool.reset_stats();
        for p in 0..pages { pool.with_page(p, |_| ()).unwrap(); }
        prop_assert_eq!(pool.stats().physical_reads, 0);
        prop_assert_eq!(pool.stats().logical_reads, pages as u64);
    }
}
