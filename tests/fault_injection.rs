//! Failure injection: I/O errors at arbitrary points must surface as
//! errors (never panics, never silently wrong answers) through every
//! layer — table scans, SMA builds, and SMA-accelerated queries.

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::test_util::FlakyStore;
use smadb::storage::Table;
use smadb::tpcd::{generate, lineitem_schema, Clustering, GenConfig};

/// Loads a small LINEITEM into a flaky store with a huge initial budget
/// (loading itself must not fail), then returns the budget handle.
fn flaky_lineitem() -> (Table, usize, std::sync::Arc<std::sync::atomic::AtomicU64>) {
    let (_, items) = generate(&GenConfig::tiny(Clustering::SortedByShipdate));
    let store = FlakyStore::new(u64::MAX / 2);
    let handle = store.budget_handle();
    let mut table = Table::new("LINEITEM", lineitem_schema(), Box::new(store), 8, 1);
    for item in &items {
        table.append(&item.to_tuple()).unwrap();
    }
    (table, items.len(), handle)
}

#[test]
fn scan_surfaces_io_errors() {
    let (table, _, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(5, std::sync::atomic::Ordering::Relaxed);
    let err = table.scan().unwrap_err();
    assert!(err.to_string().contains("injected read failure"), "{err}");
}

#[test]
fn sma_build_surfaces_io_errors() {
    let (table, _, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(3, std::sync::atomic::Ordering::Relaxed);
    let err = SmaSet::build_query1_set(&table).unwrap_err();
    assert!(err.to_string().contains("injected read failure"), "{err}");
}

#[test]
fn query_surfaces_io_errors_midway() {
    let (table, _, budget) = flaky_lineitem();
    // Build SMAs while healthy.
    let smas = SmaSet::build_query1_set(&table).unwrap();
    table.make_cold().unwrap();
    // Let a few reads through, then fail: the full scan must error out.
    budget.store(7, std::sync::atomic::Ordering::Relaxed);
    let err = run_query1(&table, None, &Query1Config::default()).unwrap_err();
    assert!(err.to_string().contains("injected read failure"), "{err}");
    // The SMA plan reads almost nothing, so a small budget suffices — it
    // must *succeed* where the full scan could not, and exactly.
    budget.store(10, std::sync::atomic::Ordering::Relaxed);
    let run = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    assert_eq!(run.rows.len(), 4);
    // And once the budget recovers, the answers agree.
    budget.store(u64::MAX / 2, std::sync::atomic::Ordering::Relaxed);
    let full = run_query1(&table, None, &Query1Config::default()).unwrap();
    assert_eq!(run.rows, full.rows);
}

#[test]
fn recovery_after_errors_is_clean() {
    let (table, n_items, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(2, std::sync::atomic::Ordering::Relaxed);
    assert!(table.scan().is_err());
    // Top the budget back up: the same table serves reads again.
    budget.store(u64::MAX / 2, std::sync::atomic::Ordering::Relaxed);
    let rows = table.scan().unwrap();
    assert_eq!(rows.len(), n_items);
}
