//! Failure injection: I/O errors at arbitrary points must surface as
//! errors (never panics, never silently wrong answers) through every
//! layer — table scans, SMA builds, SMA-accelerated queries, and the
//! write-back path. Read and write faults carry distinct messages
//! ([`READ_FAILURE`] / [`WRITE_FAILURE`]) so each test proves which path
//! propagated the fault.

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::test_util::{FlakyStore, READ_FAILURE, WRITE_FAILURE};
use smadb::storage::Table;
use smadb::tpcd::{generate, lineitem_schema, Clustering, GenConfig};

/// Loads a small LINEITEM into a flaky store with a huge initial budget
/// (loading itself must not fail), then returns the budget handle.
fn flaky_lineitem() -> (Table, usize, std::sync::Arc<std::sync::atomic::AtomicU64>) {
    let (_, items) = generate(&GenConfig::tiny(Clustering::SortedByShipdate));
    let store = FlakyStore::new(u64::MAX / 2);
    let handle = store.budget_handle();
    let mut table = Table::new("LINEITEM", lineitem_schema(), Box::new(store), 8, 1);
    for item in &items {
        table.append(&item.to_tuple()).unwrap();
    }
    (table, items.len(), handle)
}

#[test]
fn scan_surfaces_io_errors() {
    let (table, _, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(5, std::sync::atomic::Ordering::Relaxed);
    let err = table.scan().unwrap_err();
    assert!(err.to_string().contains(READ_FAILURE), "{err}");
}

#[test]
fn sma_build_surfaces_io_errors() {
    let (table, _, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(3, std::sync::atomic::Ordering::Relaxed);
    let err = SmaSet::build_query1_set(&table).unwrap_err();
    assert!(err.to_string().contains(READ_FAILURE), "{err}");
}

#[test]
fn query_surfaces_io_errors_midway() {
    let (table, _, budget) = flaky_lineitem();
    // Build SMAs while healthy.
    let smas = SmaSet::build_query1_set(&table).unwrap();
    table.make_cold().unwrap();
    // Let a few reads through, then fail: the full scan must error out.
    budget.store(7, std::sync::atomic::Ordering::Relaxed);
    let err = run_query1(&table, None, &Query1Config::default()).unwrap_err();
    assert!(err.to_string().contains(READ_FAILURE), "{err}");
    // The SMA plan reads almost nothing, so a small budget suffices — it
    // must *succeed* where the full scan could not, and exactly.
    budget.store(10, std::sync::atomic::Ordering::Relaxed);
    let run = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    assert_eq!(run.rows.len(), 4);
    // And once the budget recovers, the answers agree.
    budget.store(u64::MAX / 2, std::sync::atomic::Ordering::Relaxed);
    let full = run_query1(&table, None, &Query1Config::default()).unwrap();
    assert_eq!(run.rows, full.rows);
}

#[test]
fn recovery_after_errors_is_clean() {
    let (table, n_items, budget) = flaky_lineitem();
    table.make_cold().unwrap();
    budget.store(2, std::sync::atomic::Ordering::Relaxed);
    assert!(table.scan().is_err());
    // Top the budget back up: the same table serves reads again.
    budget.store(u64::MAX / 2, std::sync::atomic::Ordering::Relaxed);
    let rows = table.scan().unwrap();
    assert_eq!(rows.len(), n_items);
}

/// Write-back faults (page eviction / flush hitting a full or failing
/// disk) surface with the *write* message, not the read one — proving the
/// buffer pool's write-back path reports its own failures.
#[test]
fn write_back_surfaces_write_errors_distinctly() {
    let (_, items) = generate(&GenConfig::tiny(Clustering::SortedByShipdate));
    let store = FlakyStore::with_budgets(u64::MAX / 2, u64::MAX / 2);
    let writes = store.write_budget_handle();
    // Pool of 4 frames: appends force evictions, evictions force writes.
    let mut table = Table::new("LINEITEM", lineitem_schema(), Box::new(store), 4, 1);
    for item in &items {
        table.append(&item.to_tuple()).unwrap();
    }
    // Exhaust the write budget, then force a flush of dirty pages.
    writes.store(0, std::sync::atomic::Ordering::Relaxed);
    let err = table.flush().unwrap_err();
    assert!(err.to_string().contains(WRITE_FAILURE), "{err}");
    assert!(!err.to_string().contains(READ_FAILURE), "{err}");
    // Restore the budget: the same pool flushes cleanly and loses nothing.
    writes.store(u64::MAX / 2, std::sync::atomic::Ordering::Relaxed);
    table.flush().unwrap();
    assert_eq!(table.scan().unwrap().len(), items.len());
}

/// Appends that trigger an eviction write mid-stream also propagate the
/// write fault (the append path, not just explicit flushes).
#[test]
fn eviction_during_appends_surfaces_write_errors() {
    let (_, items) = generate(&GenConfig::tiny(Clustering::SortedByShipdate));
    let store = FlakyStore::with_budgets(u64::MAX / 2, u64::MAX / 2);
    let writes = store.write_budget_handle();
    let mut table = Table::new("LINEITEM", lineitem_schema(), Box::new(store), 2, 1);
    writes.store(0, std::sync::atomic::Ordering::Relaxed);
    let mut failed = None;
    for item in &items {
        if let Err(e) = table.append(&item.to_tuple()) {
            failed = Some(e);
            break;
        }
    }
    let err = failed.expect("a 2-frame pool cannot absorb every append without writing");
    assert!(err.to_string().contains(WRITE_FAILURE), "{err}");
}
