//! Crash-point and corruption sweeps: a persisted SMA image truncated at
//! *any* byte offset, or hit by *any* bit flip, must either load back
//! identical or surface as a corruption error — never panic, never return
//! wrong aggregates. And because SMAs are redundant derived data (the
//! paper's §3 maintenance argument), recovery always has a correct answer:
//! rebuild from the base table and re-verify query results against a full
//! scan.

use std::sync::Arc;

use smadb::exec::{run_query1, AggSpec, AggregateQuery, Query1Config};
use smadb::sma::{
    col, encode_sma_stream, load_sma, load_sma_file, save_sma, save_sma_file, AggFn, BucketPred,
    CmpOp, Sma, SmaDefinition, SmaError, SmaSet,
};
use smadb::storage::test_util::{flip_bit_in_file, scratch_path, CrashStore};
use smadb::storage::Table;
use smadb::tpcd::{generate_lineitem_table, Clustering, GenConfig};
use smadb::types::{Column, DataType, Schema, Value};
use smadb::Warehouse;

fn sales_table() -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("DAY", DataType::Int),
        Column::new("REGION", DataType::Char),
        Column::new("UNITS", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("SALES", schema, 1);
    let pad = "p".repeat(1700);
    for day in 0..60i64 {
        t.append(&vec![
            Value::Int(day),
            Value::Char(b'N' + (day % 2) as u8),
            Value::Int(day * 3),
            Value::Str(pad.clone()),
        ])
        .unwrap();
    }
    t
}

fn sales_sma(table: &Table) -> Sma {
    let def = SmaDefinition::new("units", AggFn::Sum, col(2)).group_by(vec![1]);
    Sma::build(table, def).unwrap()
}

/// Truncating a persisted SMA file at **every** byte offset: any strict
/// prefix must be rejected as corrupt, the full image must round-trip
/// byte-identically. No offset may panic.
#[test]
fn file_truncation_sweep() {
    let table = sales_table();
    let sma = sales_sma(&table);
    let path = scratch_path("crash-file-sweep");
    save_sma_file(&sma, &path).unwrap();
    let full = std::fs::read(&path).unwrap();
    let canonical = encode_sma_stream(&sma);
    assert_eq!(full, canonical, "file holds exactly the stream");

    for len in 0..=full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        match load_sma_file(&path) {
            Ok(back) => {
                assert_eq!(len, full.len(), "a strict prefix must not load");
                assert_eq!(encode_sma_stream(&back), canonical);
            }
            Err(SmaError::Corrupt(_)) => {
                assert!(len < full.len(), "the complete image must load");
            }
            Err(other) => panic!("truncation at {len} gave non-corruption error: {other}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The same sweep through the page-store layer: a [`CrashStore`] models
/// the kernel persisting only a byte prefix (lost trailing pages, torn
/// final page). Every crash offset either round-trips or reports corrupt.
#[test]
fn page_store_truncation_sweep() {
    let table = sales_table();
    let sma = sales_sma(&table);
    let canonical = encode_sma_stream(&sma);
    let mut pristine = CrashStore::new();
    let (first, _) = save_sma(&sma, &mut pristine).unwrap();

    for offset in 0..=pristine.len_bytes() {
        let mut crashed = pristine.clone();
        crashed.truncate_at(offset);
        match load_sma(&crashed, first) {
            Ok(back) => {
                // Ok is legal only when the crash zeroed nothing that
                // mattered (it landed in the page padding, or on payload
                // bytes that were already zero) — and then the image must
                // be *identical*, never approximately right.
                assert_eq!(encode_sma_stream(&back), canonical, "torn at {offset}");
            }
            Err(SmaError::Corrupt(_)) => {
                assert!(
                    (offset as usize) < canonical.len(),
                    "content survived {offset}"
                );
            }
            Err(other) => panic!("crash at {offset} gave non-corruption error: {other}"),
        }
    }
}

/// Warehouse-level sweep: truncate one SMA file at every byte offset and
/// reopen. Recovery must either keep the intact image or quarantine and
/// rebuild — and in both cases query answers equal a naive full scan.
#[test]
fn warehouse_truncation_sweep_recovers() {
    let query = AggregateQuery {
        pred: BucketPred::cmp(0, CmpOp::Le, 1000i64),
        group_by: vec![1],
        specs: vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
    };
    let mut w = Warehouse::new();
    w.register(sales_table()).unwrap();
    w.define_sma("define sma units select sum(UNITS) from SALES group by REGION")
        .unwrap();
    let expected = {
        let mut naive = Warehouse::new();
        naive.register(sales_table()).unwrap();
        naive.query("SALES", query.clone()).unwrap().rows
    };
    let dir = scratch_path("crash-wh-sweep");
    std::fs::create_dir_all(&dir).unwrap();
    w.save_to_dir(&dir).unwrap();
    let sma_path = dir.join("SALES.units.sma");
    let full = std::fs::read(&sma_path).unwrap();

    for len in 0..=full.len() {
        std::fs::write(&sma_path, &full[..len]).unwrap();
        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        if len == full.len() {
            assert!(report.is_clean(), "complete image at {len}: {report}");
        } else {
            assert_eq!(
                report.smas_rebuilt,
                vec!["SALES.units".to_string()],
                "truncation at {len} must trigger a rebuild"
            );
        }
        let got = reopened.query("SALES", query.clone()).unwrap();
        assert_eq!(got.rows, expected, "answers diverged after crash at {len}");
        // Recovery re-saved a clean image; quarantine evidence aside, reset
        // for the next crash point.
        let _ = std::fs::remove_file(dir.join("SALES.units.sma.quarantined"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Bit flips across a saved warehouse's SMA file: scrub detects each one,
/// quarantines, rebuilds from the base table, and query answers stay equal
/// to the naive plan throughout.
#[test]
fn bit_flip_sweep_scrub_rebuilds() {
    let query = AggregateQuery {
        pred: BucketPred::cmp(0, CmpOp::Le, 1000i64),
        group_by: vec![1],
        specs: vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
    };
    let mut w = Warehouse::new();
    w.register(sales_table()).unwrap();
    w.define_sma("define sma units select sum(UNITS) from SALES group by REGION")
        .unwrap();
    let expected = {
        let mut naive = Warehouse::new();
        naive.register(sales_table()).unwrap();
        naive.query("SALES", query.clone()).unwrap().rows
    };
    let dir = scratch_path("crash-bitflip");
    std::fs::create_dir_all(&dir).unwrap();
    w.save_to_dir(&dir).unwrap();
    let sma_path = dir.join("SALES.units.sma");
    let file_len = std::fs::read(&sma_path).unwrap().len() as u64;

    // Every byte position, one bit each — magic, length, checksum, payload.
    for offset in 0..file_len {
        flip_bit_in_file(&sma_path, offset, (offset % 8) as u8).unwrap();
        let report = w.scrub(&dir).unwrap();
        assert_eq!(
            report.smas_rebuilt,
            vec!["SALES.units".to_string()],
            "flip at byte {offset} went undetected"
        );
        assert!(report.pages_corrupt.is_empty());
        let got = w.query("SALES", query.clone()).unwrap();
        assert_eq!(
            got.rows, expected,
            "answers diverged after flip at {offset}"
        );
        // Scrub re-saved a clean image; next iteration flips fresh bits.
        let clean = w.scrub(&dir).unwrap();
        assert!(
            clean.is_clean(),
            "rebuild did not leave disk clean: {clean}"
        );
        let _ = std::fs::remove_file(dir.join("SALES.units.sma.quarantined"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The paper's Query 1 benchmark, end to end through corruption: persist
/// the Query-1 SMA set, flip a bit in every member, reload (must reject),
/// rebuild from the base table, and check the SMA-accelerated Query 1
/// equals the full-scan run.
#[test]
fn query1_after_rebuild_matches_full_scan() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let set = SmaSet::build_query1_set(&table).unwrap();
    let mut rebuilt = SmaSet::new();
    for (i, sma) in set.smas().iter().enumerate() {
        let path = scratch_path(&format!("crash-q1-{i}"));
        save_sma_file(sma, &path).unwrap();
        flip_bit_in_file(&path, 25 + 3 * i as u64, (i % 8) as u8).unwrap();
        match load_sma_file(&path) {
            Err(SmaError::Corrupt(_)) => {}
            other => panic!("bit flip not caught for sma {i}: {other:?}"),
        }
        rebuilt.push(Sma::build(&table, sma.def().clone()).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
    let cfg = Query1Config {
        cold: true,
        ..Query1Config::default()
    };
    let with = run_query1(&table, Some(&rebuilt), &cfg).unwrap();
    let without = run_query1(&table, None, &cfg).unwrap();
    assert_eq!(with.rows, without.rows);
    assert!(with.io.physical_reads < without.io.physical_reads);
}
