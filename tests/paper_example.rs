//! E6 — the paper's running example: Figure 1 buckets, the §2.2 selection
//! walk-through, and the §2.3 grouped SMAs, exercised end-to-end through
//! the public API.

use std::sync::Arc;

use smadb::exec::{collect, AggSpec, SmaGAggr};
use smadb::sma::{col, AggFn, BucketPred, CmpOp, Grade, SmaDefinition, SmaSet};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Date, Schema, Value};

fn date(s: &str) -> Value {
    Value::Date(Date::parse(s).unwrap())
}

/// The nine tuples of Figure 1, three per bucket.
fn fig1_table() -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("L_SHIPDATE", DataType::Date),
        Column::new("L_RETURNFLAG", DataType::Char),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("LINEITEM", schema, 1);
    let rows = [
        ("1997-03-11", b'A'),
        ("1997-04-22", b'A'),
        ("1997-02-02", b'R'),
        ("1997-04-01", b'R'),
        ("1997-05-07", b'A'),
        ("1997-04-28", b'R'),
        ("1997-05-02", b'A'),
        ("1997-05-20", b'A'),
        ("1997-06-03", b'R'),
    ];
    let pad = "x".repeat(1200);
    for (d, f) in rows {
        t.append(&vec![date(d), Value::Char(f), Value::Str(pad.clone())])
            .unwrap();
    }
    assert_eq!(t.bucket_count(), 3, "Figure 1 has three buckets");
    t
}

#[test]
fn figure_1_sma_files() {
    let t = fig1_table();
    let smas = SmaSet::build(
        &t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count"),
        ],
    )
    .unwrap();
    // SMA-File 1: min = 97-02-02 | 97-04-01 | 97-05-02
    let min = smas.by_name("min").unwrap();
    assert_eq!(min.entry_ungrouped(0), Some(&date("1997-02-02")));
    assert_eq!(min.entry_ungrouped(1), Some(&date("1997-04-01")));
    assert_eq!(min.entry_ungrouped(2), Some(&date("1997-05-02")));
    // SMA-File 2: max = 97-04-22 | 97-05-07 | 97-06-03
    let max = smas.by_name("max").unwrap();
    assert_eq!(max.entry_ungrouped(0), Some(&date("1997-04-22")));
    assert_eq!(max.entry_ungrouped(1), Some(&date("1997-05-07")));
    assert_eq!(max.entry_ungrouped(2), Some(&date("1997-06-03")));
    // SMA-File 3: count = 3 | 3 | 3
    let count = smas.by_name("count").unwrap();
    for b in 0..3 {
        assert_eq!(count.entry_ungrouped(b), Some(&Value::Int(3)));
    }
    // Space: each SMA is a single sequential file of 3 entries.
    assert_eq!(smas.file_count(), 3);
}

#[test]
fn section_2_2_grading() {
    let t = fig1_table();
    let smas = SmaSet::build(
        &t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count"),
        ],
    )
    .unwrap();
    // select count(*) from LINEITEM where L_SHIPDATE < 97-04-30:
    let pred = BucketPred::cmp(0, CmpOp::Lt, date("1997-04-30"));
    assert_eq!(
        pred.grade(0, &smas),
        Grade::Qualifies,
        "all of bucket 1 qualifies"
    );
    assert_eq!(
        pred.grade(1, &smas),
        Grade::Ambivalent,
        "bucket 2 is ambivalent"
    );
    assert_eq!(
        pred.grade(2, &smas),
        Grade::Disqualifies,
        "none of bucket 3 qualifies"
    );

    // Answer via SMA_GAggr: count SMA for bucket 1, bucket 2 inspected.
    t.reset_io_stats();
    let mut op = SmaGAggr::new(&t, pred, vec![], vec![AggSpec::CountStar], &smas).unwrap();
    let rows = collect(&mut op).unwrap();
    assert_eq!(rows, vec![vec![Value::Int(5)]]);
    assert_eq!(
        t.io_stats().logical_reads,
        1,
        "only the ambivalent bucket is read (§2.2: 'only the original \
         tuples contained in ambivalent buckets have to be investigated')"
    );
}

#[test]
fn section_2_3_grouped_smas() {
    let t = fig1_table();
    // Grouped count + per-group aggregates, like the Fig. 4 set but on
    // the small example.
    let smas = SmaSet::build(
        &t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count").group_by(vec![1]),
            SmaDefinition::new("min_by_flag", AggFn::Min, col(0)).group_by(vec![1]),
        ],
    )
    .unwrap();
    // "For every possible group, there will be a single SMA-file": flags
    // A and R → 2 files for each grouped SMA.
    assert_eq!(smas.by_name("count").unwrap().file_count(), 2);
    assert_eq!(smas.by_name("min_by_flag").unwrap().file_count(), 2);

    // Grouped query answered with bucket skipping.
    let pred = BucketPred::cmp(0, CmpOp::Lt, date("1997-04-30"));
    let mut op = SmaGAggr::new(
        &t,
        pred,
        vec![1],
        vec![AggSpec::CountStar, AggSpec::Min(col(0))],
        &smas,
    )
    .unwrap();
    let rows = collect(&mut op).unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Char(b'A'), Value::Int(2), date("1997-03-11")],
            vec![Value::Char(b'R'), Value::Int(3), date("1997-02-02")],
        ]
    );
}

#[test]
fn grouped_minmax_still_grades_selections() {
    // §3.1: "SMAs with min and max aggregates can also be exploited …
    // if their definitions contain a group by clause".
    let t = fig1_table();
    let smas = SmaSet::build(
        &t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)).group_by(vec![1]),
            SmaDefinition::new("max", AggFn::Max, col(0)).group_by(vec![1]),
        ],
    )
    .unwrap();
    let pred = BucketPred::cmp(0, CmpOp::Lt, date("1997-04-30"));
    assert_eq!(pred.grade(0, &smas), Grade::Qualifies);
    assert_eq!(pred.grade(1, &smas), Grade::Ambivalent);
    assert_eq!(pred.grade(2, &smas), Grade::Disqualifies);
}

#[test]
fn space_ratio_of_section_2_1() {
    // "Assume that a bucket corresponds to a 4K-page and a single date
    // field can be stored in 32 bits, then the size of a single SMA-file
    // is only 1/1000th of the size of the original data."
    use smadb::sma::SmaFile;
    let mut f = SmaFile::new(4);
    for i in 0..1_000_000u32 {
        f.push(Value::Date(Date::from_days(i as i32)));
    }
    // One entry per 4 KiB bucket: 1e6 buckets ≈ 3.9 GB of data; the SMA
    // file is 1e6 × 4 B ≈ 3.8 MB — a 1:1024 ratio.
    let data_bytes = 1_000_000usize * 4096;
    assert_eq!(data_bytes / f.size_bytes(), 1024);
    assert_eq!(f.entries_per_page(), 1024);
}
