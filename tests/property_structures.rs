//! Property tests over the auxiliary structures: persistence roundtrips
//! for arbitrary SMA shapes, hierarchical pruning vs flat grading at
//! arbitrary fanouts, and projection-index/SMA agreement.

use std::sync::Arc;

use smadb::sma::{
    col, load_sma, save_sma, AggFn, BucketPred, Classification, CmpOp, HierarchicalMinMax,
    ProjectionIndex, Sma, SmaDefinition, SmaSet,
};
use smadb::storage::{MemStore, Table};
use smadb::types::{Column, DataType, Schema, StdRng, Value};

fn int_flag_table(rows: &[(i64, u8)]) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("G", DataType::Char),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("t", schema, 1);
    let pad = "p".repeat(1700);
    for &(k, g) in rows {
        t.append(&vec![
            Value::Int(k),
            Value::Char(g),
            Value::Str(pad.clone()),
        ])
        .unwrap();
    }
    t
}

fn random_rows(rng: &mut StdRng) -> Vec<(i64, u8)> {
    let n = rng.random_range(1..100usize);
    (0..n)
        .map(|_| {
            let k = rng.random_range(-50i64..50);
            let g = [b'A', b'B', b'C'][rng.random_range(0..3usize)];
            (k, g)
        })
        .collect()
}

/// Any built SMA — grouped or not, over expressions or columns —
/// roundtrips bit-exactly through the page-store serialization.
#[test]
fn persistence_roundtrips_arbitrary_smas() {
    let mut rng = StdRng::seed_from_u64(0x572C_0001);
    for case in 0..32 {
        let rows = random_rows(&mut rng);
        let which = rng.random_range(0..4u8);
        let grouped = rng.random_bool();
        let t = int_flag_table(&rows);
        let mut def = match which {
            0 => SmaDefinition::new("p_min", AggFn::Min, col(0)),
            1 => SmaDefinition::new("p_max", AggFn::Max, col(0)),
            2 => SmaDefinition::new("p_sum", AggFn::Sum, col(0).mul(smadb::sma::lit(3i64))),
            _ => SmaDefinition::count("p_count"),
        };
        if grouped {
            def = def.group_by(vec![1]);
        }
        let sma = Sma::build(&t, def).unwrap();
        let mut store = MemStore::new();
        let (first, _) = save_sma(&sma, &mut store).unwrap();
        let back = load_sma(&store, first).unwrap();
        assert_eq!(back.def(), sma.def(), "case {case}");
        assert_eq!(back.n_buckets(), sma.n_buckets(), "case {case}");
        assert_eq!(back.file_count(), sma.file_count(), "case {case}");
        for (key, file) in sma.groups() {
            for b in 0..sma.n_buckets() {
                assert_eq!(back.entry(key, b), file.get(b), "case {case}");
            }
        }
        for b in 0..sma.n_buckets() {
            assert_eq!(back.saw_null(b), sma.saw_null(b), "case {case}");
            assert_eq!(back.is_stale(b), sma.is_stale(b), "case {case}");
        }
    }
}

/// Hierarchical pruning equals flat grading for any data, fanout and
/// cutoff — the §4 structure is a pure I/O optimization.
#[test]
fn hierarchical_equals_flat() {
    let mut rng = StdRng::seed_from_u64(0x572C_0002);
    for case in 0..32 {
        let rows = random_rows(&mut rng);
        let fanout = rng.random_range(2u32..20);
        let cutoff = rng.random_range(-60i64..60);
        let op =
            [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq][rng.random_range(0..5usize)];
        let t = int_flag_table(&rows);
        let min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
        let max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
        let set = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min", AggFn::Min, col(0)),
                SmaDefinition::new("max", AggFn::Max, col(0)),
            ],
        )
        .unwrap();
        let h = HierarchicalMinMax::from_smas(&min, &max, fanout).expect("well-formed inputs");
        let pred = BucketPred::cmp(0, op, cutoff);
        let flat = Classification::classify(&pred, t.bucket_count(), &set);
        let pruned = h.prune(&pred);
        assert_eq!(pruned.grades, flat.grades, "case {case}");
        assert_eq!(
            pruned.l1_inspected + pruned.l1_skipped,
            t.bucket_count() as usize,
            "case {case}"
        );
    }
}

/// The projection index's exact counts agree with brute force, and its
/// singleton bounds agree with the SMA degeneration of §2.2.
#[test]
fn projection_index_counts_exactly() {
    let mut rng = StdRng::seed_from_u64(0x572C_0003);
    for case in 0..32 {
        let rows = random_rows(&mut rng);
        let cutoff = rng.random_range(-60i64..60);
        let t = int_flag_table(&rows);
        let idx = ProjectionIndex::build(&t, col(0)).unwrap();
        let brute = rows.iter().filter(|&&(k, _)| k <= cutoff).count();
        assert_eq!(
            idx.count(CmpOp::Le, &Value::Int(cutoff)),
            brute,
            "case {case}"
        );
        // Singleton bounds = per-tuple min=max=value, in physical order.
        let bounds = idx.as_singleton_bounds();
        assert_eq!(bounds.len(), rows.len(), "case {case}");
        for (b, &(k, _)) in bounds.iter().zip(&rows) {
            assert_eq!(
                b.clone(),
                Some((Value::Int(k), Value::Int(k))),
                "case {case}"
            );
        }
    }
}
