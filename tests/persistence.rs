//! SMA persistence across "restarts": SMA sets saved to a real page file,
//! reloaded, and used to answer Query 1 identically.

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::{load_sma, save_sma, SmaSet};
use smadb::storage::{FileStore, MemStore, PageStore};
use smadb::tpcd::{generate_lineitem_table, Clustering, GenConfig};

#[test]
fn q1_sma_set_survives_a_restart_via_file_store() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let before = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();

    let path = smadb::storage::test_util::scratch_path("sma_persistence");
    let mut locations = Vec::new();
    {
        let mut store = FileStore::create(&path).unwrap();
        for sma in smas.smas() {
            locations.push(save_sma(sma, &mut store).unwrap());
        }
        store.sync().unwrap();
    }
    // "Restart": reopen the file, reload every SMA.
    let mut reloaded = SmaSet::new();
    {
        let store = FileStore::open(&path).unwrap();
        for (first, _) in &locations {
            reloaded.push(load_sma(&store, *first).unwrap());
        }
    }
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.smas().len(), smas.smas().len());
    assert_eq!(reloaded.file_count(), smas.file_count());
    let after = run_query1(&table, Some(&reloaded), &Query1Config::default()).unwrap();
    assert_eq!(after.rows, before.rows);
    assert_eq!(after.plan_kind, before.plan_kind);
}

#[test]
fn persisted_pages_match_logical_size_accounting() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::diagonal_default()));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let mut store = MemStore::new();
    let mut physical_pages = 0u32;
    for sma in smas.smas() {
        let (_, pages) = save_sma(sma, &mut store).unwrap();
        physical_pages += pages;
    }
    // The serialized form adds a definition header and value tags; it must
    // stay within a small factor of the paper's raw-entry accounting.
    let logical = smas.total_pages() as u32;
    assert!(
        physical_pages >= logical.min(smas.smas().len() as u32),
        "physical {physical_pages} vs logical {logical}"
    );
    assert!(
        physical_pages <= logical * 3 + smas.smas().len() as u32,
        "physical {physical_pages} vs logical {logical}"
    );
    assert_eq!(store.page_count(), physical_pages);
}

#[test]
fn maintained_then_persisted_smas_stay_consistent() {
    use smadb::tpcd::generate;
    let cfg = GenConfig::tiny(Clustering::SortedByShipdate);
    let (_, items) = generate(&cfg);
    let (base, extra) = items.split_at(items.len() - 100);
    let mut table = smadb::tpcd::load_lineitem(base, Box::new(MemStore::new()), 1, 1 << 14);
    let mut smas = SmaSet::build_query1_set(&table).unwrap();
    for item in extra {
        let t = item.to_tuple();
        let tid = table.append(&t).unwrap();
        smas.note_insert(table.bucket_of_page(tid.page), &t)
            .unwrap();
    }
    // Persist post-maintenance state and reload.
    let mut store = MemStore::new();
    let mut reloaded = SmaSet::new();
    let mut firsts = Vec::new();
    for sma in smas.smas() {
        firsts.push(save_sma(sma, &mut store).unwrap().0);
    }
    for f in firsts {
        reloaded.push(load_sma(&store, f).unwrap());
    }
    let a = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    let b = run_query1(&table, Some(&reloaded), &Query1Config::default()).unwrap();
    let c = run_query1(&table, None, &Query1Config::default()).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(b.rows, c.rows);
}
