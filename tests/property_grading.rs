//! Property tests for the §3.1 grading algebra against brute force.
//!
//! For random tables and random predicates:
//! * a bucket graded *qualifying* has **every** tuple satisfying the
//!   predicate;
//! * a bucket graded *disqualifying* has **no** tuple satisfying it;
//! * `SmaScan` returns exactly what `SeqScan + Filter` returns;
//! * `SmaGAggr` returns exactly what the naive plan returns.

use std::sync::Arc;

use proptest::prelude::*;

use smadb::exec::{collect, AggSpec, Filter, HashGAggr, SeqScan, SmaGAggr, SmaScan};
use smadb::sma::{col, AggFn, BucketPred, CmpOp, Grade, SmaDefinition, SmaSet};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, Value};

/// Builds a table of (K: Int, G: Char) rows, padded to 2 tuples per page.
fn build_table(rows: &[(i64, u8)]) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("G", DataType::Char),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("t", schema, 1);
    let pad = "p".repeat(1700);
    for &(k, g) in rows {
        t.append(&vec![Value::Int(k), Value::Char(g), Value::Str(pad.clone())])
            .unwrap();
    }
    t
}

fn build_smas(t: &Table) -> SmaSet {
    SmaSet::build(
        t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count_by_g").group_by(vec![1]),
            SmaDefinition::new("sum_k", AggFn::Sum, col(0)).group_by(vec![1]),
            SmaDefinition::count("count_by_k").group_by(vec![0]),
        ],
    )
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8)>> {
    proptest::collection::vec((0i64..100, prop_oneof![Just(b'A'), Just(b'B')]), 1..120)
}

fn arb_pred() -> impl Strategy<Value = BucketPred> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let atom = (op, -5i64..105).prop_map(|(op, c)| BucketPred::cmp(0, op, c));
    // Depth-1 boolean combinations over column K.
    prop_oneof![
        atom.clone(),
        proptest::collection::vec(atom.clone(), 2..4).prop_map(BucketPred::And),
        proptest::collection::vec(atom, 2..4).prop_map(BucketPred::Or),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grading_is_sound(rows in arb_rows(), pred in arb_pred()) {
        let t = build_table(&rows);
        let smas = build_smas(&t);
        for b in 0..t.bucket_count() {
            let tuples = t.scan_bucket(b).unwrap();
            let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
            match pred.grade(b, &smas) {
                Grade::Qualifies => prop_assert_eq!(
                    passing, tuples.len(),
                    "qualifying bucket {} has non-passing tuples under {:?}", b, pred
                ),
                Grade::Disqualifies => prop_assert_eq!(
                    passing, 0,
                    "disqualifying bucket {} has passing tuples under {:?}", b, pred
                ),
                Grade::Ambivalent => {}
            }
        }
    }

    #[test]
    fn sma_scan_equals_filter_scan(rows in arb_rows(), pred in arb_pred()) {
        let t = build_table(&rows);
        let smas = build_smas(&t);
        let mut fast = SmaScan::new(&t, pred.clone(), &smas);
        let fast_rows = collect(&mut fast).unwrap();
        let mut slow = Filter::new(Box::new(SeqScan::new(&t)), pred);
        let slow_rows = collect(&mut slow).unwrap();
        prop_assert_eq!(fast_rows, slow_rows);
    }

    #[test]
    fn sma_gaggr_equals_naive_plan(rows in arb_rows(), pred in arb_pred()) {
        let t = build_table(&rows);
        let smas = build_smas(&t);
        let specs = vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(0)),
            AggSpec::Avg(col(0)),
        ];
        let mut fast =
            SmaGAggr::new(&t, pred.clone(), vec![1], specs.clone(), &smas).unwrap();
        let fast_rows = collect(&mut fast).unwrap();
        let mut slow = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(&t)), pred)),
            vec![1],
            specs,
        );
        let slow_rows = collect(&mut slow).unwrap();
        prop_assert_eq!(fast_rows, slow_rows);
    }

    #[test]
    fn grading_with_distinct_count_sma_is_sound(rows in arb_rows(), c in -5i64..105) {
        // Only the count-by-K SMA (no min/max): the §3.1 count rules alone.
        let t = build_table(&rows);
        let smas = SmaSet::build(
            &t,
            vec![SmaDefinition::count("count_by_k").group_by(vec![0])],
        )
        .unwrap();
        let pred = BucketPred::cmp(0, CmpOp::Le, c);
        for b in 0..t.bucket_count() {
            let tuples = t.scan_bucket(b).unwrap();
            let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
            match pred.grade(b, &smas) {
                Grade::Qualifies => prop_assert_eq!(passing, tuples.len()),
                Grade::Disqualifies => prop_assert_eq!(passing, 0),
                Grade::Ambivalent => {
                    // With exact per-value counts, ambivalence must mean a
                    // genuinely mixed bucket.
                    prop_assert!(passing > 0 && passing < tuples.len());
                }
            }
        }
    }

    #[test]
    fn column_vs_column_grading_is_sound(
        rows in proptest::collection::vec((0i64..50, 0i64..50), 1..80),
    ) {
        // Two integer columns, A op B predicates.
        let schema = Arc::new(Schema::new(vec![
            Column::new("A", DataType::Int),
            Column::new("B", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1700);
        for &(a, b) in &rows {
            t.append(&vec![Value::Int(a), Value::Int(b), Value::Str(pad.clone())])
                .unwrap();
        }
        let smas = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min_a", AggFn::Min, col(0)),
                SmaDefinition::new("max_a", AggFn::Max, col(0)),
                SmaDefinition::new("min_b", AggFn::Min, col(1)),
                SmaDefinition::new("max_b", AggFn::Max, col(1)),
            ],
        )
        .unwrap();
        for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq] {
            let pred = BucketPred::col_cmp(0, op, 1);
            for bu in 0..t.bucket_count() {
                let tuples = t.scan_bucket(bu).unwrap();
                let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
                match pred.grade(bu, &smas) {
                    Grade::Qualifies => prop_assert_eq!(passing, tuples.len(), "{:?}", op),
                    Grade::Disqualifies => prop_assert_eq!(passing, 0, "{:?}", op),
                    Grade::Ambivalent => {}
                }
            }
        }
    }
}
