//! Property tests for the §3.1 grading algebra against brute force.
//!
//! For random tables and random predicates:
//! * a bucket graded *qualifying* has **every** tuple satisfying the
//!   predicate;
//! * a bucket graded *disqualifying* has **no** tuple satisfying it;
//! * `SmaScan` returns exactly what `SeqScan + Filter` returns;
//! * `SmaGAggr` returns exactly what the naive plan returns.

use std::sync::Arc;

use smadb::exec::{collect, AggSpec, Filter, HashGAggr, SeqScan, SmaGAggr, SmaScan};
use smadb::sma::{col, AggFn, BucketPred, CmpOp, Grade, SmaDefinition, SmaSet};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, StdRng, Value};

/// Builds a table of (K: Int, G: Char) rows, padded to 2 tuples per page.
fn build_table(rows: &[(i64, u8)]) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("G", DataType::Char),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("t", schema, 1);
    let pad = "p".repeat(1700);
    for &(k, g) in rows {
        t.append(&vec![
            Value::Int(k),
            Value::Char(g),
            Value::Str(pad.clone()),
        ])
        .unwrap();
    }
    t
}

fn build_smas(t: &Table) -> SmaSet {
    SmaSet::build(
        t,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count_by_g").group_by(vec![1]),
            SmaDefinition::new("sum_k", AggFn::Sum, col(0)).group_by(vec![1]),
            SmaDefinition::count("count_by_k").group_by(vec![0]),
        ],
    )
    .unwrap()
}

fn random_rows(rng: &mut StdRng) -> Vec<(i64, u8)> {
    let n = rng.random_range(1..120usize);
    (0..n)
        .map(|_| {
            let k = rng.random_range(0i64..100);
            let g = if rng.random_bool() { b'A' } else { b'B' };
            (k, g)
        })
        .collect()
}

fn random_cmp(rng: &mut StdRng) -> CmpOp {
    [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.random_range(0..5usize)]
}

fn random_pred(rng: &mut StdRng) -> BucketPred {
    let atom = |rng: &mut StdRng| {
        let op = random_cmp(rng);
        let c = rng.random_range(-5i64..105);
        BucketPred::cmp(0, op, c)
    };
    // Depth-1 boolean combinations over column K.
    match rng.random_range(0..3u32) {
        0 => atom(rng),
        1 => {
            let n = rng.random_range(2..4usize);
            BucketPred::And((0..n).map(|_| atom(rng)).collect())
        }
        _ => {
            let n = rng.random_range(2..4usize);
            BucketPred::Or((0..n).map(|_| atom(rng)).collect())
        }
    }
}

#[test]
fn grading_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x62AD_0001);
    for _ in 0..48 {
        let rows = random_rows(&mut rng);
        let pred = random_pred(&mut rng);
        let t = build_table(&rows);
        let smas = build_smas(&t);
        for b in 0..t.bucket_count() {
            let tuples = t.scan_bucket(b).unwrap();
            let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
            match pred.grade(b, &smas) {
                Grade::Qualifies => assert_eq!(
                    passing,
                    tuples.len(),
                    "qualifying bucket {b} has non-passing tuples under {pred:?}"
                ),
                Grade::Disqualifies => assert_eq!(
                    passing, 0,
                    "disqualifying bucket {b} has passing tuples under {pred:?}"
                ),
                Grade::Ambivalent => {}
            }
        }
    }
}

#[test]
fn sma_scan_equals_filter_scan() {
    let mut rng = StdRng::seed_from_u64(0x62AD_0002);
    for _ in 0..48 {
        let rows = random_rows(&mut rng);
        let pred = random_pred(&mut rng);
        let t = build_table(&rows);
        let smas = build_smas(&t);
        let mut fast = SmaScan::new(&t, pred.clone(), &smas);
        let fast_rows = collect(&mut fast).unwrap();
        let mut slow = Filter::new(Box::new(SeqScan::new(&t)), pred);
        let slow_rows = collect(&mut slow).unwrap();
        assert_eq!(fast_rows, slow_rows);
    }
}

#[test]
fn sma_gaggr_equals_naive_plan() {
    let mut rng = StdRng::seed_from_u64(0x62AD_0003);
    for _ in 0..48 {
        let rows = random_rows(&mut rng);
        let pred = random_pred(&mut rng);
        let t = build_table(&rows);
        let smas = build_smas(&t);
        let specs = vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(0)),
            AggSpec::Avg(col(0)),
        ];
        let mut fast = SmaGAggr::new(&t, pred.clone(), vec![1], specs.clone(), &smas).unwrap();
        let fast_rows = collect(&mut fast).unwrap();
        let mut slow = HashGAggr::new(
            Box::new(Filter::new(Box::new(SeqScan::new(&t)), pred)),
            vec![1],
            specs,
        );
        let slow_rows = collect(&mut slow).unwrap();
        assert_eq!(fast_rows, slow_rows);
    }
}

#[test]
fn grading_with_distinct_count_sma_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x62AD_0004);
    for _ in 0..48 {
        let rows = random_rows(&mut rng);
        let c = rng.random_range(-5i64..105);
        // Only the count-by-K SMA (no min/max): the §3.1 count rules alone.
        let t = build_table(&rows);
        let smas = SmaSet::build(
            &t,
            vec![SmaDefinition::count("count_by_k").group_by(vec![0])],
        )
        .unwrap();
        let pred = BucketPred::cmp(0, CmpOp::Le, c);
        for b in 0..t.bucket_count() {
            let tuples = t.scan_bucket(b).unwrap();
            let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
            match pred.grade(b, &smas) {
                Grade::Qualifies => assert_eq!(passing, tuples.len()),
                Grade::Disqualifies => assert_eq!(passing, 0),
                Grade::Ambivalent => {
                    // With exact per-value counts, ambivalence must mean a
                    // genuinely mixed bucket.
                    assert!(passing > 0 && passing < tuples.len());
                }
            }
        }
    }
}

#[test]
fn column_vs_column_grading_is_sound() {
    let mut rng = StdRng::seed_from_u64(0x62AD_0005);
    for _ in 0..48 {
        // Two integer columns, A op B predicates.
        let n = rng.random_range(1..80usize);
        let rows: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.random_range(0i64..50), rng.random_range(0i64..50)))
            .collect();
        let schema = Arc::new(Schema::new(vec![
            Column::new("A", DataType::Int),
            Column::new("B", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("t", schema, 1);
        let pad = "p".repeat(1700);
        for &(a, b) in &rows {
            t.append(&vec![Value::Int(a), Value::Int(b), Value::Str(pad.clone())])
                .unwrap();
        }
        let smas = SmaSet::build(
            &t,
            vec![
                SmaDefinition::new("min_a", AggFn::Min, col(0)),
                SmaDefinition::new("max_a", AggFn::Max, col(0)),
                SmaDefinition::new("min_b", AggFn::Min, col(1)),
                SmaDefinition::new("max_b", AggFn::Max, col(1)),
            ],
        )
        .unwrap();
        for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq] {
            let pred = BucketPred::col_cmp(0, op, 1);
            for bu in 0..t.bucket_count() {
                let tuples = t.scan_bucket(bu).unwrap();
                let passing = tuples.iter().filter(|(_, tu)| pred.eval_tuple(tu)).count();
                match pred.grade(bu, &smas) {
                    Grade::Qualifies => assert_eq!(passing, tuples.len(), "{op:?}"),
                    Grade::Disqualifies => assert_eq!(passing, 0, "{op:?}"),
                    Grade::Ambivalent => {}
                }
            }
        }
    }
}
