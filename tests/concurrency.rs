//! Concurrency: the sharded buffer pool and tables are shared-read safe,
//! so SMA builds and queries can run from many threads at once — and the
//! bucket-parallel operators produce byte-identical results at any thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};

use smadb::exec::AggSpec;
use smadb::exec::{collect, run_query1, Parallelism, Query1Config, SmaGAggr};
use smadb::sma::{build_many_parallel, col, BucketPred, CmpOp, SmaSet};
use smadb::storage::{BufferPool, MemStore, PAGE_FOOTER_LEN, PAGE_SIZE};
use smadb::tpcd::{generate_lineitem_table, q1_cutoff, q1_reference_table, Clustering, GenConfig};

#[test]
fn concurrent_queries_on_one_table() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::diagonal_default()));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let oracle = q1_reference_table(&table, q1_cutoff(90)).unwrap();
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let table = &table;
            let smas = &smas;
            let oracle = &oracle;
            let failures = &failures;
            scope.spawn(move || {
                for round in 0..10 {
                    // Alternate SMA and full-scan plans across threads.
                    let use_smas = (worker + round) % 2 == 0;
                    let run = run_query1(
                        table,
                        if use_smas { Some(smas) } else { None },
                        &Query1Config::default(),
                    )
                    .expect("query");
                    if run.rows.len() != oracle.len() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    let counts: Vec<i64> = run
                        .rows
                        .iter()
                        .map(|r| r[9].as_int().expect("count column"))
                        .collect();
                    let expected: Vec<i64> = oracle.iter().map(|r| r.count_order).collect();
                    if counts != expected {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::Relaxed), 0);
}

#[test]
fn concurrent_build_and_read() {
    // One thread repeatedly rebuilds SMA sets (pure reads of the table)
    // while others query through a fixed set — all sharing the pool.
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    std::thread::scope(|scope| {
        let t = &table;
        scope.spawn(move || {
            for _ in 0..5 {
                let rebuilt = SmaSet::build_query1_set(t).expect("rebuild");
                assert_eq!(rebuilt.file_count(), 26);
            }
        });
        for _ in 0..4 {
            let t = &table;
            let smas = &smas;
            scope.spawn(move || {
                for _ in 0..10 {
                    let run = run_query1(t, Some(smas), &Query1Config::default()).expect("query");
                    assert_eq!(run.rows.len(), 4);
                }
            });
        }
    });
}

#[test]
fn parallel_bulkload_with_many_threads_is_stable() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
    let defs = SmaSet::query1_definitions(&table).unwrap();
    let serial = SmaSet::build(&table, defs.clone()).unwrap();
    for threads in [2, 3, 8, 16] {
        let parallel = build_many_parallel(&table, defs.clone(), threads).unwrap();
        for (s, p) in serial.smas().iter().zip(&parallel) {
            assert_eq!(s.n_buckets(), p.n_buckets(), "threads={threads}");
            for (key, file) in s.groups() {
                for b in 0..s.n_buckets() {
                    assert_eq!(p.entry(key, b), file.get(b), "threads={threads}");
                }
            }
        }
    }
}

/// Eight threads hammer a sharded pool — reads, dirty writes, evictions —
/// and every byte, checksum, and I/O counter must come out exact.
#[test]
fn sharded_pool_stress_under_eviction() {
    const THREADS: u32 = 8;
    const PAGES_PER_THREAD: u32 = 32;
    const ROUNDS: u32 = 25;
    let n_pages = THREADS * PAGES_PER_THREAD;
    // Capacity of half the working set forces steady eviction + write-back
    // traffic, and is large enough (≥ 64 per shard) to use several shards.
    let pool = BufferPool::new(Box::new(MemStore::new()), n_pages as usize / 2);
    assert!(pool.shard_count() > 1, "stress test should cover sharding");
    for _ in 0..n_pages {
        pool.allocate().unwrap();
    }
    pool.flush_all().unwrap();
    pool.reset_stats();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            scope.spawn(move || {
                // Each thread owns a disjoint page stripe, so final page
                // contents are deterministic even under interleaving.
                let base = t * PAGES_PER_THREAD;
                for round in 0..ROUNDS {
                    for i in 0..PAGES_PER_THREAD {
                        let no = base + i;
                        pool.with_page_mut(no, |data| {
                            data[0] = t as u8;
                            data[1] = round as u8;
                            data[2] = i as u8;
                        })
                        .expect("write");
                        let (a, b) = pool.with_page(no, |data| (data[0], data[2])).expect("read");
                        assert_eq!((a, b), (t as u8, i as u8));
                    }
                }
            });
        }
    });

    // Every access was counted exactly once, and every physical read was
    // classified as either sequential or random — no drops, no doubles.
    let stats = pool.stats();
    let accesses = (THREADS * PAGES_PER_THREAD * ROUNDS * 2) as u64;
    assert_eq!(stats.logical_reads, accesses);
    assert_eq!(
        stats.sequential_reads + stats.random_reads,
        stats.physical_reads
    );
    assert!(stats.physical_reads <= stats.logical_reads);

    // Flush, drop the cache, and re-read through checksum verification:
    // all final images survived eviction and write-back intact.
    pool.flush_all().unwrap();
    pool.clear_cache().unwrap();
    for t in 0..THREADS {
        for i in 0..PAGES_PER_THREAD {
            let no = t * PAGES_PER_THREAD + i;
            pool.with_page(no, |data| {
                assert_eq!(data[0], t as u8, "page {no}");
                assert_eq!(data[1], (ROUNDS - 1) as u8, "page {no}");
                assert_eq!(data[2], i as u8, "page {no}");
                assert!(
                    data[3..PAGE_SIZE - PAGE_FOOTER_LEN].iter().all(|&b| b == 0),
                    "page {no} body untouched"
                );
            })
            .unwrap();
        }
    }
}

/// The bucket-parallel `SmaGAggr` and bulkload produce byte-identical
/// results at every thread count, on every clustering model — including
/// `Diagonal`, whose smeared buckets exercise the ambivalent scan path.
#[test]
fn parallel_execution_is_deterministic_across_clusterings() {
    let clusterings = [
        Clustering::SortedByShipdate,
        Clustering::diagonal_default(),
        Clustering::Uniform,
        Clustering::Shuffled,
    ];
    for clustering in clusterings {
        let table = generate_lineitem_table(&GenConfig::tiny(clustering));
        let defs = SmaSet::query1_definitions(&table).unwrap();
        let serial_set = SmaSet::build(&table, defs.clone()).unwrap();

        // Bulkload: any worker count reproduces the serial SMA files.
        let par_smas = build_many_parallel(&table, defs.clone(), 4).unwrap();
        for (s, p) in serial_set.smas().iter().zip(&par_smas) {
            for (key, file) in s.groups() {
                for b in 0..s.n_buckets() {
                    assert_eq!(p.entry(key, b), file.get(b), "{clustering:?}");
                }
            }
        }

        // SmaGAggr: grade/merge/scan in parallel, identical rows+counters.
        let shipdate = 10; // L_SHIPDATE column in the generated LINEITEM
        let pred = BucketPred::cmp(shipdate, CmpOp::Le, q1_cutoff(90));
        let specs = vec![
            AggSpec::CountStar,
            AggSpec::Sum(col(4)),
            AggSpec::Avg(col(4)),
        ];
        let group_by = vec![8usize, 9];
        let mut serial = SmaGAggr::new(
            &table,
            pred.clone(),
            group_by.clone(),
            specs.clone(),
            &serial_set,
        )
        .unwrap()
        .with_parallelism(Parallelism::serial());
        let expected = collect(&mut serial).unwrap();
        let expected_counters = serial.counters();
        for threads in [2, 4, 8] {
            let mut par = SmaGAggr::new(
                &table,
                pred.clone(),
                group_by.clone(),
                specs.clone(),
                &serial_set,
            )
            .unwrap()
            .with_parallelism(Parallelism::new(threads));
            assert_eq!(
                collect(&mut par).unwrap(),
                expected,
                "{clustering:?} with {threads} threads"
            );
            assert_eq!(par.counters(), expected_counters, "{clustering:?}");
        }
    }
}
