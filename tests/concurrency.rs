//! Concurrency: the buffer pool and tables are shared-read safe, so SMA
//! builds and queries can run from many threads at once.

use std::sync::atomic::{AtomicUsize, Ordering};

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::{build_many_parallel, SmaSet};
use smadb::tpcd::{generate_lineitem_table, q1_reference_table, q1_cutoff, Clustering, GenConfig};

#[test]
fn concurrent_queries_on_one_table() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::diagonal_default()));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let oracle = q1_reference_table(&table, q1_cutoff(90)).unwrap();
    let failures = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for worker in 0..8 {
            let table = &table;
            let smas = &smas;
            let oracle = &oracle;
            let failures = &failures;
            scope.spawn(move |_| {
                for round in 0..10 {
                    // Alternate SMA and full-scan plans across threads.
                    let use_smas = (worker + round) % 2 == 0;
                    let run = run_query1(
                        table,
                        if use_smas { Some(smas) } else { None },
                        &Query1Config::default(),
                    )
                    .expect("query");
                    if run.rows.len() != oracle.len() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    let counts: Vec<i64> = run
                        .rows
                        .iter()
                        .map(|r| r[9].as_int().expect("count column"))
                        .collect();
                    let expected: Vec<i64> = oracle.iter().map(|r| r.count_order).collect();
                    if counts != expected {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("no worker panicked");
    assert_eq!(failures.load(Ordering::Relaxed), 0);
}

#[test]
fn concurrent_build_and_read() {
    // One thread repeatedly rebuilds SMA sets (pure reads of the table)
    // while others query through a fixed set — all sharing the pool.
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let smas = SmaSet::build_query1_set(&table).unwrap();
    crossbeam::thread::scope(|scope| {
        let t = &table;
        scope.spawn(move |_| {
            for _ in 0..5 {
                let rebuilt = SmaSet::build_query1_set(t).expect("rebuild");
                assert_eq!(rebuilt.file_count(), 26);
            }
        });
        for _ in 0..4 {
            let t = &table;
            let smas = &smas;
            scope.spawn(move |_| {
                for _ in 0..10 {
                    let run =
                        run_query1(t, Some(smas), &Query1Config::default()).expect("query");
                    assert_eq!(run.rows.len(), 4);
                }
            });
        }
    })
    .expect("no worker panicked");
}

#[test]
fn parallel_bulkload_with_many_threads_is_stable() {
    let table = generate_lineitem_table(&GenConfig::tiny(Clustering::Uniform));
    let defs = SmaSet::query1_definitions(&table).unwrap();
    let serial = SmaSet::build(&table, defs.clone()).unwrap();
    for threads in [2, 3, 8, 16] {
        let parallel = build_many_parallel(&table, defs.clone(), threads).unwrap();
        for (s, p) in serial.smas().iter().zip(&parallel) {
            assert_eq!(s.n_buckets(), p.n_buckets(), "threads={threads}");
            for (key, file) in s.groups() {
                for b in 0..s.n_buckets() {
                    assert_eq!(p.entry(key, b), file.get(b), "threads={threads}");
                }
            }
        }
    }
}
