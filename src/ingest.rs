//! Durable streaming ingest: WAL + memtable + crash-recoverable flush.
//!
//! [`StreamingWarehouse`] wraps a [`Warehouse`] with an arrival path that
//! survives crashes at any byte:
//!
//! 1. **Log** — every insert is framed into the write-ahead log
//!    ([`sma_storage::Wal`]). A [`CommitPolicy`] groups frames: the log is
//!    fsynced once per group (every `batch_rows` rows, or when `max_delay`
//!    expires), and every row of the group is acknowledged together behind
//!    that single sync. The default policy (`batch_rows = 1`) syncs and
//!    acknowledges each insert individually.
//! 2. **Buffer** — acknowledged tuples live in a [`Memtable`] and are
//!    visible to queries immediately: plans run over the sealed segments
//!    and merge the memtable as an overlay, producing byte-identical
//!    results to a bulk-loaded equivalent. Rows of a still-open group are
//!    *staged*: appended to the log but neither acknowledged nor visible
//!    until the group's sync lands.
//! 3. **Flush** — when the memtable reaches its threshold (or on demand)
//!    the buffered tuples are folded into the sealed tables through the
//!    ordinary insert path, so SMAs are maintained online and the physical
//!    bucket layout matches a bulk load. The flush exports only the pages
//!    written since the previous flush into a fresh `.e{epoch}` *delta
//!    segment* per touched table (plus that generation's SMA images),
//!    commits by atomically replacing the manifest — whose per-table
//!    segment lists a reopen reassembles through
//!    [`sma_storage::SegmentedStore`] — and only then truncates the WAL.
//! 4. **Compaction** — delta segments accumulate until a
//!    [`CompactionPolicy`](crate::compact::CompactionPolicy) threshold
//!    triggers a [`compact`](StreamingWarehouse::compact): a full rewrite
//!    that merges every table back to a single segment and rebuilds
//!    hierarchical SMAs (see [`crate::compact`]).
//!
//! The flush protocol's commit point is the manifest rename. Every earlier
//! step only adds files the old manifest does not reference; every later
//! step only removes files the new manifest does not reference. A crash at
//! any stage therefore recovers to exactly one committed generation plus
//! the WAL suffix past its watermark — no acknowledged tuple is lost, none
//! is applied twice. [`StreamingWarehouse::flush_until`] exposes each stage
//! so the crash tests can stop the protocol at every seam, and a
//! `pending` checkpoint remembers post-commit stages that still owe
//! cleanup, so an error after the commit point is finished by the next
//! flush instead of leaking debris until restart.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::compact::CompactionPolicy;
use crate::warehouse::{
    commit_manifest, manifest_files, CommitMeta, QueryResult, RecoveryReport, Warehouse,
    WarehouseError,
};
use sma_core::HierarchicalMinMax;
use sma_exec::AggregateQuery;
use sma_storage::{
    make_wal_record, FileStore, Memtable, PageStore, QueryBudget, Stopwatch, StoreError, Table, Wal,
};
use sma_types::{CodecError, Tuple};

/// File name of the ingest write-ahead log inside the warehouse directory.
pub const WAL_FILE: &str = "ingest.swal";

/// Errors from the streaming-ingest layer.
#[derive(Debug)]
pub enum IngestError {
    /// The sealed warehouse (tables, SMAs, manifest) failed.
    Warehouse(WarehouseError),
    /// The write-ahead log failed.
    Wal(StoreError),
    /// A tuple did not fit its relation's schema.
    Encode(CodecError),
    /// A filesystem operation on the warehouse directory failed.
    Io(io::Error),
    /// An insert or replayed WAL record named a relation the warehouse
    /// does not have.
    UnknownRelation(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Warehouse(e) => write!(f, "{e}"),
            IngestError::Wal(e) => write!(f, "wal: {e}"),
            IngestError::Encode(e) => write!(f, "{e}"),
            IngestError::Io(e) => write!(f, "ingest i/o failed: {e}"),
            IngestError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Warehouse(e) => Some(e),
            IngestError::Wal(e) => Some(e),
            IngestError::Encode(e) => Some(e),
            IngestError::Io(e) => Some(e),
            IngestError::UnknownRelation(_) => None,
        }
    }
}

impl From<WarehouseError> for IngestError {
    fn from(e: WarehouseError) -> IngestError {
        IngestError::Warehouse(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> IngestError {
        IngestError::Wal(e)
    }
}

impl From<CodecError> for IngestError {
    fn from(e: CodecError) -> IngestError {
        IngestError::Encode(e)
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> IngestError {
        IngestError::Io(e)
    }
}

/// The stages of the flush protocol, in order. [`StreamingWarehouse::flush_until`]
/// runs the protocol up to and including the named stage and then returns,
/// which lets crash tests simulate dying at every seam: drop the
/// [`StreamingWarehouse`] and reopen the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushStage {
    /// Memtable drained into the in-memory sealed tables (online SMA
    /// maintenance done). Nothing on disk has changed.
    Applied,
    /// New-generation `.tbl`/`.sma` segment files written and fsynced.
    /// The manifest still names the old generation.
    SegmentsWritten,
    /// Manifest atomically replaced — **the commit point**. The old
    /// generation's files and the WAL are still on disk.
    Committed,
    /// Files the new manifest does not reference have been deleted.
    Cleaned,
    /// WAL truncated to the new epoch. A full [`StreamingWarehouse::flush`].
    Complete,
}

/// When staged WAL frames are made durable (one `Wal::sync`) and their
/// rows acknowledged as a group.
///
/// The group closes — sync, acknowledge, clear — when it holds
/// `batch_rows` rows, or earlier when `max_delay` has elapsed since its
/// first row was staged. The default (`batch_rows = 1`) preserves the
/// one-fsync-per-insert contract; larger batches amortize the fsync over
/// the whole group at the cost of rows riding unacknowledged (and
/// query-invisible) until the group boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitPolicy {
    /// Rows per group; `0` is treated as `1`. Each group costs one fsync.
    pub batch_rows: usize,
    /// Close the group early once this much wall-clock time has passed
    /// since its first row was staged. `Duration::ZERO` disables the
    /// deadline (groups close on `batch_rows` alone or an explicit
    /// [`StreamingWarehouse::commit`]).
    pub max_delay: Duration,
}

impl Default for CommitPolicy {
    fn default() -> CommitPolicy {
        CommitPolicy {
            batch_rows: 1,
            max_delay: Duration::ZERO,
        }
    }
}

/// What [`StreamingWarehouse::open_with_recovery`] found and did.
#[derive(Debug, Default)]
pub struct IngestRecoveryReport {
    /// The sealed warehouse's own recovery report (scrubbed pages,
    /// quarantined/rebuilt SMAs, committed epoch and watermark).
    pub warehouse: RecoveryReport,
    /// WAL records re-buffered into the memtable (acknowledged before the
    /// crash, not yet folded into the sealed generation).
    pub replayed: usize,
    /// WAL records discarded because the committed watermark already
    /// covers them — the idempotence guard after a crash between manifest
    /// commit and WAL truncation.
    pub skipped: usize,
    /// The WAL ended in a torn frame (a record cut mid-write). The torn
    /// record was never acknowledged, so nothing durable is lost.
    pub torn_tail: bool,
    /// The WAL header was missing or corrupt and the log was
    /// reinitialized empty at the committed epoch.
    pub wal_reset: bool,
    /// The WAL's epoch lagged the manifest's (crash after commit, before
    /// truncation); the log was truncated forward to realign.
    pub wal_realigned: bool,
    /// Files deleted because no committed manifest referenced them —
    /// segments of a half-flushed generation, stale segments of a
    /// superseded one, or abandoned `.tmp` files.
    pub orphans_removed: Vec<String>,
}

impl IngestRecoveryReport {
    /// True when recovery found a pristine shutdown: nothing scrubbed,
    /// nothing torn, nothing to clean up.
    pub fn is_clean(&self) -> bool {
        self.warehouse.is_clean()
            && !self.torn_tail
            && !self.wal_reset
            && !self.wal_realigned
            && self.orphans_removed.is_empty()
    }
}

/// A [`Warehouse`] with a durable streaming-ingest front end.
///
/// ```
/// use smadb::ingest::StreamingWarehouse;
/// use smadb::Warehouse;
/// use smadb::storage::Table;
/// use smadb::types::{Column, DataType, Schema, Value};
/// use smadb::sma::{BucketPred, CmpOp};
/// use smadb::exec::{AggSpec, AggregateQuery};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join(format!("smadb-doc-{}", std::process::id()));
/// let schema = Arc::new(Schema::new(vec![Column::new("X", DataType::Int)]));
/// let mut w = Warehouse::new();
/// w.register(Table::in_memory("S", schema, 1)).unwrap();
/// let mut s = StreamingWarehouse::create(&dir, w, 0).unwrap();
///
/// for x in 0..10 { s.insert("S", &vec![Value::Int(x)]).unwrap(); }
/// let q = AggregateQuery { pred: BucketPred::cmp(0, CmpOp::Ge, 0i64), group_by: vec![], specs: vec![AggSpec::CountStar] };
/// assert_eq!(s.query("S", q).unwrap().rows[0][0], Value::Int(10));
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct StreamingWarehouse<S: PageStore = FileStore> {
    pub(crate) warehouse: Warehouse,
    pub(crate) dir: PathBuf,
    wal: Wal<S>,
    memtable: Memtable,
    next_seq: u64,
    flush_threshold: usize,
    commit_policy: CommitPolicy,
    /// Rows of the open commit group: appended to the WAL but not yet
    /// covered by a sync — not acknowledged, not query-visible.
    staged: Vec<(String, u64, Tuple)>,
    /// Started when the open group's first row was staged; drives
    /// [`CommitPolicy::max_delay`].
    group_timer: Option<Stopwatch>,
    /// Highest sequence number covered by a successful group sync — the
    /// acknowledgment frontier.
    durable_seq: u64,
    /// Error from a threshold-triggered flush inside `insert`. The insert
    /// itself succeeded (its row is durable and acknowledged), so the
    /// flush failure is surfaced here instead of on the insert's result.
    pending_flush_error: Option<IngestError>,
    /// Checkpoint of an unfinished flush protocol run: the last stage
    /// that completed before an early return or an error. The next flush
    /// resumes from here even when the memtable is empty — without it, an
    /// error after the commit point would strand old-generation debris
    /// and a stale WAL epoch until restart.
    pending: Option<FlushStage>,
    /// When background compaction fires (see [`crate::compact`]).
    pub(crate) compaction: CompactionPolicy,
    /// Whether flush and compaction convert sealed buckets to the
    /// columnar (PAX) layout before exporting them. Off by default: row
    /// layout everywhere, byte-identical to previous releases. Turning it
    /// on never changes query results — only the physical layout of
    /// sealed buckets (see `Table::convert_bucket_to_columnar`).
    pub(crate) columnar: bool,
    /// Hierarchical min/max SMAs rebuilt by the last compaction, keyed
    /// `"RELATION:min_name/max_name"`.
    pub(crate) hierarchies: BTreeMap<String, HierarchicalMinMax>,
}

impl StreamingWarehouse {
    /// Seals `warehouse` into `dir` as the initial committed generation
    /// and opens a fresh WAL beside it.
    ///
    /// `flush_threshold` is the memtable size (in tuples) that triggers an
    /// automatic [`StreamingWarehouse::flush`] from
    /// [`StreamingWarehouse::insert`]; `0` disables automatic flushing.
    pub fn create(
        dir: impl AsRef<Path>,
        mut warehouse: Warehouse,
        flush_threshold: usize,
    ) -> Result<StreamingWarehouse, IngestError> {
        let dir = dir.as_ref().to_path_buf();
        seal_initial_generation(&mut warehouse, &dir)?;
        let store = FileStore::create(dir.join(WAL_FILE))?;
        StreamingWarehouse::with_wal_store(dir, warehouse, flush_threshold, store)
    }

    /// Reopens a streaming warehouse after a shutdown or crash.
    ///
    /// Recovery sequence:
    ///
    /// 1. load the committed generation through
    ///    [`Warehouse::open_with_recovery`] (page scrub, SMA
    ///    quarantine/rebuild);
    /// 2. delete every `.tbl`/`.sma` file the manifest does not reference
    ///    and every abandoned `.tmp` file — the debris of a generation
    ///    that never committed or one that was superseded;
    /// 3. replay the WAL, dropping a torn tail and anything at or below
    ///    the committed watermark (already folded in — the replay is
    ///    idempotent), re-buffering the survivors into the memtable;
    /// 4. realign the WAL's epoch with the manifest's if a crash landed
    ///    between commit and truncation.
    pub fn open_with_recovery(
        dir: impl AsRef<Path>,
        flush_threshold: usize,
    ) -> Result<(StreamingWarehouse, IngestRecoveryReport), IngestError> {
        let dir = dir.as_ref().to_path_buf();
        let (warehouse, wreport) = Warehouse::open_with_recovery(&dir)?;
        let mut report = IngestRecoveryReport {
            warehouse: wreport,
            ..Default::default()
        };
        report.orphans_removed = remove_unreferenced(&dir)?;

        let wal_path = dir.join(WAL_FILE);
        let wal_missing = !wal_path.exists();
        let (mut wal, replay) = if wal_missing {
            // The log vanished entirely. By protocol it only ever holds
            // unflushed acknowledged records, so this loses whatever was
            // buffered — report it as a reset rather than failing hard.
            let wal = Wal::create(FileStore::create(&wal_path)?, warehouse.wal_epoch())?;
            (wal, sma_storage::WalReplay::default())
        } else {
            Wal::open(FileStore::open(&wal_path)?, warehouse.wal_epoch())?
        };
        report.torn_tail = replay.torn_tail;
        report.wal_reset = replay.header_reset || wal_missing;

        let mut memtable = Memtable::new();
        let mut next_seq = warehouse.watermark() + 1;
        for rec in &replay.records {
            // Filter on the *WAL* epoch, not the catalog epoch: a
            // compaction advances the catalog epoch without truncating
            // the log, and records appended between the compaction and a
            // crash are acknowledged — dropping them would lose data.
            if rec.epoch != warehouse.wal_epoch() || rec.seq <= warehouse.watermark() {
                // Stale epoch or already folded into the sealed
                // generation: applying it again would duplicate the tuple.
                report.skipped += 1;
                continue;
            }
            let table = warehouse
                .table(&rec.relation)
                .ok_or_else(|| IngestError::UnknownRelation(rec.relation.clone()))?;
            let tuple = sma_types::row::decode(table.schema(), &rec.row)?;
            memtable.insert(&rec.relation, rec.seq, tuple);
            next_seq = rec.seq + 1;
            report.replayed += 1;
        }
        if wal.epoch() != warehouse.wal_epoch() {
            // Crash after manifest commit, before WAL truncation: finish
            // the interrupted protocol now.
            wal.truncate(warehouse.wal_epoch())?;
            report.wal_realigned = true;
        }

        let durable_seq = next_seq - 1;
        Ok((
            StreamingWarehouse {
                warehouse,
                dir,
                wal,
                memtable,
                next_seq,
                flush_threshold,
                commit_policy: CommitPolicy::default(),
                staged: Vec::new(),
                group_timer: None,
                durable_seq,
                pending_flush_error: None,
                pending: None,
                compaction: CompactionPolicy::default(),
                columnar: false,
                hierarchies: BTreeMap::new(),
            },
            report,
        ))
    }
}

/// Seals `warehouse` into `dir` as the initial committed generation:
/// full single-segment export, manifest commit, then the segment lists
/// are installed so later flushes can append deltas against them.
fn seal_initial_generation(warehouse: &mut Warehouse, dir: &Path) -> Result<(), IngestError> {
    let meta = CommitMeta {
        epoch: warehouse.epoch(),
        watermark: warehouse.watermark(),
        wal_epoch: warehouse.wal_epoch(),
    };
    let (stream, lists) = warehouse.save_generation(dir, meta, "")?;
    commit_manifest(dir, &stream)?;
    warehouse.install_segments(lists);
    Ok(())
}

impl<S: PageStore> StreamingWarehouse<S> {
    /// Like [`StreamingWarehouse::create`], but the WAL lives on a
    /// caller-supplied page store instead of a file beside the sealed
    /// segments — the seam the fault-injection tests use to put a seeded
    /// chaos store under the log. The sealed generation is still written
    /// to `dir`.
    pub fn create_with_wal_store(
        dir: impl AsRef<Path>,
        mut warehouse: Warehouse,
        flush_threshold: usize,
        store: S,
    ) -> Result<StreamingWarehouse<S>, IngestError> {
        let dir = dir.as_ref().to_path_buf();
        seal_initial_generation(&mut warehouse, &dir)?;
        StreamingWarehouse::with_wal_store(dir, warehouse, flush_threshold, store)
    }

    /// Wraps an already-sealed warehouse and a fresh WAL on `store`.
    fn with_wal_store(
        dir: PathBuf,
        warehouse: Warehouse,
        flush_threshold: usize,
        store: S,
    ) -> Result<StreamingWarehouse<S>, IngestError> {
        let wal = Wal::create(store, warehouse.wal_epoch())?;
        let next_seq = warehouse.watermark() + 1;
        Ok(StreamingWarehouse {
            durable_seq: next_seq - 1,
            warehouse,
            dir,
            wal,
            memtable: Memtable::new(),
            next_seq,
            flush_threshold,
            commit_policy: CommitPolicy::default(),
            staged: Vec::new(),
            group_timer: None,
            pending_flush_error: None,
            pending: None,
            compaction: CompactionPolicy::default(),
            columnar: false,
            hierarchies: BTreeMap::new(),
        })
    }

    /// Consumes the front end, returning the WAL's backing store — fault
    /// tests replay it to audit exactly what became durable.
    pub fn into_wal_store(self) -> S {
        self.wal.into_store()
    }

    /// Inserts one tuple and returns its WAL sequence number.
    ///
    /// Under the default [`CommitPolicy`] the tuple is durable — WAL frame
    /// written *and* fsynced — and query-visible when this returns. With
    /// `batch_rows > 1` the row is *staged*: `Ok(seq)` means it will be
    /// durable and visible when its group commits (at the group boundary,
    /// on an explicit [`StreamingWarehouse::commit`], or at the next
    /// flush); [`StreamingWarehouse::durable_seq`] tracks the
    /// acknowledgment frontier. An `Err` from a group sync means the whole
    /// group was dropped — none of its rows are durable.
    ///
    /// A threshold-triggered flush failing does **not** fail the insert:
    /// the row is already durable and acknowledged at that point, and a
    /// caller retrying a "failed" insert would duplicate it. The flush
    /// error is deferred to [`StreamingWarehouse::take_flush_error`] and
    /// the flush itself retried by the next flush.
    pub fn insert(&mut self, relation: &str, tuple: &Tuple) -> Result<u64, IngestError> {
        let schema = self
            .warehouse
            .table(relation)
            .ok_or_else(|| IngestError::UnknownRelation(relation.to_string()))?
            .schema()
            .clone();
        let seq = self.next_seq;
        let rec = make_wal_record(self.wal.epoch(), seq, relation, &schema, tuple)?;
        // Burn the sequence number before touching the log: a failed
        // append or sync may still have written (or durably half-written)
        // a frame carrying `seq`, and a later frame reusing it would end
        // replay at the duplicate, cutting off every acknowledged record
        // behind it. Gaps are harmless — replay only requires strictly
        // increasing sequence numbers.
        self.next_seq = seq + 1;
        self.wal.append(&rec)?;
        if self.staged.is_empty() {
            self.group_timer = Some(Stopwatch::start());
        }
        self.staged.push((relation.to_string(), seq, tuple.clone()));
        let batch = self.commit_policy.batch_rows.max(1);
        let timed_out = !self.commit_policy.max_delay.is_zero()
            && self
                .group_timer
                .as_ref()
                .map(|t| t.elapsed() >= self.commit_policy.max_delay)
                .unwrap_or(false);
        if self.staged.len() >= batch || timed_out {
            self.commit_group()?;
        }
        if self.flush_threshold > 0 && self.memtable.len() >= self.flush_threshold {
            // The row is durable and acknowledged; a flush failure here
            // must not be reported as an insert failure (the caller would
            // retry and double-insert). Stash it instead.
            if let Err(e) = self.flush() {
                self.pending_flush_error = Some(e);
            }
        }
        Ok(seq)
    }

    /// Commits the open group now: one `Wal::sync` makes every staged row
    /// durable, acknowledged and query-visible. A no-op when nothing is
    /// staged. On a sync failure the whole group is dropped (sequence
    /// numbers stay burned) and none of its rows are durable — exactly the
    /// per-insert failure contract, applied to the batch.
    pub fn commit(&mut self) -> Result<(), IngestError> {
        self.commit_group()
    }

    fn commit_group(&mut self) -> Result<(), IngestError> {
        self.group_timer = None;
        if self.staged.is_empty() {
            return Ok(());
        }
        if let Err(e) = self.wal.sync() {
            // The group's frames may be durably half-written; dropping
            // the rows (with their seqs burned) keeps replay consistent:
            // whatever prefix survived the crash sits below `durable_seq`
            // of a *later* group or is cut at the torn frame.
            self.staged.clear();
            return Err(e.into());
        }
        for (relation, seq, tuple) in std::mem::take(&mut self.staged) {
            self.durable_seq = self.durable_seq.max(seq);
            self.memtable.insert(&relation, seq, tuple);
        }
        Ok(())
    }

    /// Plans and runs an aggregate query over the union of the sealed
    /// segments and the live memtable. Results are byte-identical to the
    /// same query against a warehouse bulk-loaded with the same tuples.
    pub fn query(&self, relation: &str, query: AggregateQuery) -> Result<QueryResult, IngestError> {
        self.query_inner(relation, query, None)
    }

    /// [`StreamingWarehouse::query`] under a cooperative [`QueryBudget`]:
    /// deadline, page cap, and cancellation are enforced at every
    /// bucket/page boundary of the underlying plan, so a budget-capped
    /// heavy scan degrades into a structured error instead of starving
    /// concurrent queries.
    pub fn query_with_budget(
        &self,
        relation: &str,
        query: AggregateQuery,
        budget: &QueryBudget,
    ) -> Result<QueryResult, IngestError> {
        self.query_inner(relation, query, Some(budget))
    }

    fn query_inner(
        &self,
        relation: &str,
        query: AggregateQuery,
        budget: Option<&QueryBudget>,
    ) -> Result<QueryResult, IngestError> {
        let table = self
            .warehouse
            .table(relation)
            .ok_or_else(|| IngestError::UnknownRelation(relation.to_string()))?;
        let overlay: Vec<Tuple> = self
            .memtable
            .rows_for(relation)
            .iter()
            .map(|(_, t)| t.clone())
            .collect();
        let base = sma_exec::plan(
            table,
            query,
            self.warehouse.catalog().set_for(relation),
            self.warehouse.planner(),
        );
        // A fully-flushed relation must plan *identically* to a
        // bulk-loaded warehouse — don't wrap an empty overlay.
        let mut chosen = if overlay.is_empty() {
            base
        } else {
            base.with_overlay(overlay)
        };
        if let Some(b) = budget {
            chosen = chosen.with_budget(b);
        }
        let (rows, degradation) = chosen.execute_with_report().map_err(WarehouseError::from)?;
        Ok(QueryResult {
            rows,
            plan_kind: chosen.kind,
            degradation,
        })
    }

    /// Folds the memtable into the sealed tables and commits a new
    /// generation to disk, then lets the compaction policy merge segments
    /// if their count crossed its threshold. Equivalent to
    /// `flush_until(FlushStage::Complete)` + a possible
    /// [`StreamingWarehouse::compact`].
    pub fn flush(&mut self) -> Result<(), IngestError> {
        self.flush_until(FlushStage::Complete)?;
        self.maybe_compact()
    }

    /// Registers a new (empty) relation on the live warehouse and
    /// durably commits the catalog change: the flush writes a generation
    /// whose manifest names the new table, so an insert acknowledged
    /// after `register` returns survives a crash — WAL replay always
    /// finds the relation.
    pub fn register(&mut self, table: Table) -> Result<(), IngestError> {
        self.warehouse.register(table).map_err(IngestError::from)?;
        // The catalog changed even if no tuple did: mark a commit as
        // owed, or an empty-memtable flush would no-op and a crash
        // would forget the relation while the WAL still references it.
        self.pending = Some(FlushStage::Applied);
        self.flush()
    }

    /// Parses and installs a `define sma …` statement on the live
    /// warehouse, then durably commits the new catalog generation, so
    /// the SMA (like a freshly registered table) survives a crash.
    pub fn define_sma(&mut self, statement: &str) -> Result<(), IngestError> {
        self.warehouse.define_sma(statement)?;
        self.pending = Some(FlushStage::Applied);
        self.flush()
    }

    /// Shuts the warehouse down cleanly: commits the open group-commit
    /// batch (making every staged row durable and acknowledged), runs a
    /// full flush, and surfaces any deferred background-flush error. On
    /// success nothing is left for recovery to redo: no staged rows, no
    /// memtable, no unfinished flush checkpoint.
    ///
    /// # Drop semantics
    ///
    /// `StreamingWarehouse` deliberately has **no** `Drop` impl — drop
    /// never does I/O, so it cannot fail, block, or mask a panic.
    /// Dropping the handle without `close()` loses nothing that was
    /// acknowledged: every row covered by a successful `insert`/`commit`
    /// is already durable in the WAL and is replayed by
    /// [`StreamingWarehouse::open_with_recovery`]. What a plain drop
    /// abandons is (a) the open commit group — staged rows that were
    /// never acknowledged, which callers must already treat as not
    /// written — and (b) the memtable-to-segment flush work, which the
    /// next open simply redoes from the log. `close()` upgrades both:
    /// staged rows become durable, and segments are written now rather
    /// than at the next recovery.
    pub fn close(mut self) -> Result<(), IngestError> {
        self.commit()?;
        self.flush()?;
        if let Some(e) = self.take_flush_error() {
            return Err(e);
        }
        Ok(())
    }

    /// Runs the flush protocol up to and including `stage`, then stops.
    ///
    /// This is the crash-injection seam: the tests run every prefix of the
    /// protocol, drop the warehouse (the "crash"), and assert that
    /// [`StreamingWarehouse::open_with_recovery`] restores exactly the
    /// acknowledged state. Production code calls
    /// [`StreamingWarehouse::flush`], which runs to
    /// [`FlushStage::Complete`].
    ///
    /// Stopping early leaves a *consistent but unfinished* state: the
    /// in-memory warehouse has absorbed the tuples, the WAL still covers
    /// them, and the `pending` checkpoint makes the next flush (or
    /// recovery) complete the job — including the post-commit cleanup
    /// stages, which have no memtable rows left to announce themselves
    /// with. An `Err` from any stage leaves the same guarantee: nothing
    /// acknowledged can be lost, because the WAL is only truncated after
    /// the commit point.
    pub fn flush_until(&mut self, stage: FlushStage) -> Result<(), IngestError> {
        // Close the open commit group first: its frames sit in the log
        // un-synced, and the truncation at stage 5 would destroy them
        // even though their inserts already returned.
        self.commit_group()?;
        if self.memtable.is_empty() && self.pending.is_none() {
            return Ok(());
        }
        // Stage 1: fold buffered tuples into the sealed tables in arrival
        // order through the ordinary insert path, so bucket layout and SMA
        // maintenance are identical to a bulk load. The drain is
        // provisional: if an insert fails, the failed row and every row
        // after it go back into the memtable, so the watermark a later
        // flush publishes never covers a row that was silently dropped.
        if !self.memtable.is_empty() {
            let drained = self.memtable.drain();
            let mut failure: Option<IngestError> = None;
            for (relation, rows) in drained {
                for (seq, tuple) in rows {
                    if failure.is_none() {
                        match self.warehouse.insert(&relation, &tuple) {
                            Ok(_) => continue,
                            Err(e) => failure = Some(e.into()),
                        }
                    }
                    self.memtable.insert(&relation, seq, tuple);
                }
            }
            if let Some(e) = failure {
                return Err(e);
            }
            // New rows entered the sealed tables: whatever a previous run
            // had committed, this run owes a fresh commit.
            self.pending = Some(FlushStage::Applied);
        }
        if stage == FlushStage::Applied {
            return Ok(());
        }
        if self.pending == Some(FlushStage::Applied) {
            // Stage 2: export the unsealed page range of every touched
            // table into fresh `.e{epoch}` delta segments. Committed
            // files are never opened for writing. A catalog-only commit
            // (DDL with an empty memtable) must not regress the
            // published watermark, so keep at least the committed one.
            //
            // Columnar policy: buckets wholly inside the dirty range are
            // converted to the PAX layout first, so the delta segments
            // carry column-major pages. Converting only above the dirty
            // boundary keeps the delta incremental; the tail bucket (the
            // one appends land in) is skipped by the converter itself.
            // A crash before the manifest commit is harmless — recovery
            // reloads the committed row-major segments and replays the
            // WAL, and the next flush simply converts again.
            if self.columnar {
                for name in self
                    .warehouse
                    .table_names()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
                {
                    if let Some(table) = self.warehouse.table_mut(&name) {
                        let from = table.unsealed_from();
                        table
                            .convert_buckets_from(from)
                            .map_err(WarehouseError::from)?;
                    }
                }
            }
            let watermark = self.memtable.max_seq().max(self.warehouse.watermark());
            let epoch = self.warehouse.begin_flush_generation(watermark);
            let suffix = format!(".e{epoch}");
            let meta = CommitMeta {
                epoch,
                watermark,
                wal_epoch: epoch,
            };
            let (manifest, lists) = self
                .warehouse
                .save_delta_generation(&self.dir, meta, &suffix)?;
            if stage == FlushStage::SegmentsWritten {
                return Ok(());
            }
            // Stage 3: the commit point. Only after it may the tables be
            // sealed — seal earlier and a failed commit would lose the
            // dirty-range information its retry still needs.
            commit_manifest(&self.dir, &manifest)?;
            self.warehouse.install_segments(lists);
            self.pending = Some(FlushStage::Committed);
        }
        if stage <= FlushStage::Committed {
            return Ok(());
        }
        if self.pending == Some(FlushStage::Committed) {
            // Stage 4: the old generation is now unreferenced debris.
            remove_unreferenced(&self.dir)?;
            self.pending = Some(FlushStage::Cleaned);
        }
        if stage == FlushStage::Cleaned {
            return Ok(());
        }
        if self.pending == Some(FlushStage::Cleaned) {
            // Stage 5: everything at or below the watermark is sealed;
            // reset the log to the committed WAL epoch.
            self.wal.truncate(self.warehouse.wal_epoch())?;
            self.pending = None;
        }
        Ok(())
    }

    /// The sealed warehouse under this ingest front end.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Tuples buffered in the memtable, not yet flushed.
    pub fn buffered(&self) -> usize {
        self.memtable.len()
    }

    /// Rows staged in the open commit group — appended to the WAL but not
    /// yet durable or query-visible.
    pub fn staged_rows(&self) -> usize {
        self.staged.len()
    }

    /// Highest sequence number acknowledged durable (covered by a group
    /// sync). Rows with `seq > durable_seq()` are still staged.
    pub fn durable_seq(&self) -> u64 {
        self.durable_seq
    }

    /// Takes the error of a threshold-triggered flush that failed inside
    /// [`StreamingWarehouse::insert`], if one is stashed. The insert
    /// itself succeeded; the failed flush retries on the next
    /// [`StreamingWarehouse::flush`].
    pub fn take_flush_error(&mut self) -> Option<IngestError> {
        self.pending_flush_error.take()
    }

    /// Checkpoint of an unfinished flush protocol run, if any — the last
    /// stage that completed before an early stop or error.
    pub fn pending_stage(&self) -> Option<FlushStage> {
        self.pending
    }

    /// The group-commit policy in force.
    pub fn commit_policy(&self) -> CommitPolicy {
        self.commit_policy
    }

    /// Replaces the group-commit policy. An open group keeps its staged
    /// rows; the new policy governs from the next boundary check.
    pub fn set_commit_policy(&mut self, policy: CommitPolicy) {
        self.commit_policy = policy;
    }

    /// Whether sealed buckets are rewritten to the columnar layout.
    pub fn columnar(&self) -> bool {
        self.columnar
    }

    /// Enables or disables columnar conversion of sealed buckets. Flush
    /// and compaction convert full buckets below the segment watermark;
    /// query results are byte-identical either way — only the physical
    /// page layout (and scan/aggregate kernel choice) changes. Buckets
    /// already converted stay columnar when the policy is turned off.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// The committed generation number.
    pub fn epoch(&self) -> u64 {
        self.warehouse.epoch()
    }

    /// Highest WAL sequence number folded into the sealed generation.
    pub fn watermark(&self) -> u64 {
        self.warehouse.watermark()
    }

    /// The sequence number the next insert will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes of record frames currently in the WAL.
    pub fn wal_tail_bytes(&self) -> u64 {
        self.wal.tail_bytes()
    }

    /// The warehouse directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Deletes every `.tbl`/`.sma` file in `dir` that the committed manifest
/// does not reference, plus abandoned `.tmp` files. Quarantined SMA images
/// (`*.quarantined`) are kept for post-mortems. Returns the sorted names
/// of the files removed.
pub(crate) fn remove_unreferenced(dir: &Path) -> Result<Vec<String>, IngestError> {
    let keep: BTreeSet<String> = manifest_files(dir)?.into_iter().collect();
    let mut removed = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let dead = name.ends_with(".tmp")
            || ((name.ends_with(".tbl") || name.ends_with(".sma")) && !keep.contains(&name));
        if dead {
            fs::remove_file(entry.path())?;
            removed.push(name);
        }
    }
    removed.sort();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{BucketPred, CmpOp};
    use sma_exec::AggSpec;
    use sma_storage::Table;
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smadb-ingest-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn warehouse_with_s() -> Warehouse {
        let schema = Arc::new(Schema::new(vec![Column::new("X", DataType::Int)]));
        let mut w = Warehouse::new();
        w.register(Table::in_memory("S", schema, 1)).unwrap();
        w
    }

    fn count_all() -> AggregateQuery {
        AggregateQuery {
            pred: BucketPred::cmp(0, CmpOp::Ge, i64::MIN),
            group_by: vec![],
            specs: vec![AggSpec::CountStar],
        }
    }

    /// Regression: when an insert fails mid-apply, every row the
    /// warehouse did not absorb — the failed one and everything after it
    /// — must go back into the memtable. Dropping them while
    /// `Memtable::max_seq` survives would let a later flush publish a
    /// watermark over rows that were never applied and then truncate the
    /// WAL frames that could have replayed them.
    #[test]
    fn failed_apply_restores_unapplied_rows_to_the_memtable() {
        // "AA_MISSING" sorts before "S", so the apply loop fails before
        // any "S" row reaches the warehouse: all three rows must survive.
        let dir = scratch("apply-fail-first");
        let mut sw = StreamingWarehouse::create(&dir, warehouse_with_s(), 0).unwrap();
        sw.insert("S", &vec![Value::Int(1)]).unwrap();
        sw.insert("S", &vec![Value::Int(2)]).unwrap();
        // The only way warehouse.insert can fail today: wedge a row for a
        // relation the warehouse does not know straight into the
        // memtable, standing in for any mid-apply error.
        sw.memtable.insert("AA_MISSING", 99, vec![Value::Int(3)]);
        let err = sw.flush().unwrap_err();
        assert!(matches!(err, IngestError::Warehouse(_)), "{err}");
        assert_eq!(sw.buffered(), 3, "no drained row may be dropped");
        let got = sw.query("S", count_all()).unwrap();
        assert_eq!(got.rows[0][0], Value::Int(2), "overlay still sees both");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_apply_keeps_already_applied_rows_exactly_once() {
        // "Z_MISSING" sorts after "S": the "S" rows are folded into the
        // sealed tables before the failure, so only the poison row may
        // remain buffered — and the applied rows must not double-count.
        let dir = scratch("apply-fail-last");
        let mut sw = StreamingWarehouse::create(&dir, warehouse_with_s(), 0).unwrap();
        sw.insert("S", &vec![Value::Int(1)]).unwrap();
        sw.insert("S", &vec![Value::Int(2)]).unwrap();
        sw.memtable.insert("Z_MISSING", 99, vec![Value::Int(3)]);
        let err = sw.flush().unwrap_err();
        assert!(matches!(err, IngestError::Warehouse(_)), "{err}");
        assert_eq!(sw.buffered(), 1, "only the unapplied row stays");
        let got = sw.query("S", count_all()).unwrap();
        assert_eq!(got.rows[0][0], Value::Int(2), "applied exactly once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a threshold-triggered flush failing inside `insert`
    /// must not fail the insert. The row is already durable and
    /// acknowledged when the flush starts; reporting the flush error on
    /// the insert's result invites the caller to retry a row that did not
    /// fail — a duplicate. The error surfaces via `take_flush_error`.
    #[test]
    fn threshold_flush_failure_defers_its_error_and_never_double_counts() {
        let dir = scratch("deferred-flush-error");
        let mut sw = StreamingWarehouse::create(&dir, warehouse_with_s(), 3).unwrap();
        sw.insert("S", &vec![Value::Int(1)]).unwrap();
        sw.insert("S", &vec![Value::Int(2)]).unwrap();
        // Poison the memtable (seq 0 keeps the watermark honest) so the
        // threshold flush the next insert triggers fails mid-apply.
        sw.memtable.insert("AA_MISSING", 0, vec![Value::Int(0)]);
        let seq = sw
            .insert("S", &vec![Value::Int(3)])
            .expect("the row is durable and acked; the insert must succeed");
        assert_eq!(seq, 3);
        let err = sw.take_flush_error().expect("the flush error is deferred");
        assert!(matches!(err, IngestError::Warehouse(_)), "{err}");
        assert!(sw.take_flush_error().is_none(), "taken exactly once");
        // The "failed" insert was NOT retried: exactly three rows, in the
        // live overlay and through crash recovery alike.
        let got = sw.query("S", count_all()).unwrap();
        assert_eq!(got.rows[0][0], Value::Int(3));
        drop(sw);
        let (sw, report) = StreamingWarehouse::open_with_recovery(&dir, 0).unwrap();
        assert_eq!(report.replayed, 3, "one WAL frame per acknowledged row");
        let got = sw.query("S", count_all()).unwrap();
        assert_eq!(got.rows[0][0], Value::Int(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
