//! The warehouse facade: tables + SMA catalog + planner in one handle.
//!
//! This is the surface a downstream user programs against: register
//! relations, issue the paper's `define sma` statements, mutate data with
//! SMA maintenance handled automatically, and run aggregate queries that
//! pick SMA plans whenever they pay.

use std::collections::BTreeMap;
use std::fmt;

use sma_core::catalog::{CatalogError, SmaCatalog};
use sma_core::{Sma, SmaSet};
use sma_exec::{plan, AggregateQuery, ExecError, PlanKind, PlannerConfig};
use sma_storage::{Table, TableError, TupleId};
use sma_types::Tuple;

/// Errors from warehouse operations.
#[derive(Debug)]
pub enum WarehouseError {
    /// No table with this name is registered.
    UnknownTable(String),
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// Storage failed.
    Table(TableError),
    /// SMA catalog operation failed.
    Catalog(CatalogError),
    /// Query execution failed.
    Exec(ExecError),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            WarehouseError::DuplicateTable(n) => write!(f, "table {n:?} already exists"),
            WarehouseError::Table(e) => write!(f, "{e}"),
            WarehouseError::Catalog(e) => write!(f, "{e}"),
            WarehouseError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<TableError> for WarehouseError {
    fn from(e: TableError) -> WarehouseError {
        WarehouseError::Table(e)
    }
}

impl From<CatalogError> for WarehouseError {
    fn from(e: CatalogError) -> WarehouseError {
        WarehouseError::Catalog(e)
    }
}

impl From<ExecError> for WarehouseError {
    fn from(e: ExecError) -> WarehouseError {
        WarehouseError::Exec(e)
    }
}

/// The result of a warehouse query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output rows: group key columns then aggregates, sorted by key.
    pub rows: Vec<Tuple>,
    /// The physical strategy the planner chose.
    pub plan_kind: PlanKind,
}

/// A data warehouse: named tables, their SMAs, and a planner.
///
/// ```
/// use smadb::Warehouse;
/// use smadb::storage::Table;
/// use smadb::types::{Column, DataType, Schema, Value};
/// use smadb::sma::{col, BucketPred, CmpOp};
/// use smadb::exec::{AggSpec, AggregateQuery};
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::new(vec![Column::new("X", DataType::Int)]));
/// let mut sales = Table::in_memory("SALES", schema, 1);
/// for x in 0..50 { sales.append(&vec![Value::Int(x)]).unwrap(); }
///
/// let mut warehouse = Warehouse::new();
/// warehouse.register(sales).unwrap();
/// warehouse.define_sma("define sma mn select min(X) from SALES").unwrap();
/// warehouse.define_sma("define sma mx select max(X) from SALES").unwrap();
///
/// let result = warehouse.query("SALES", AggregateQuery {
///     pred: BucketPred::cmp(0, CmpOp::Le, 10i64),
///     group_by: vec![],
///     specs: vec![AggSpec::CountStar],
/// }).unwrap();
/// assert_eq!(result.rows[0][0], Value::Int(11));
/// ```
#[derive(Default)]
pub struct Warehouse {
    tables: BTreeMap<String, Table>,
    catalog: SmaCatalog,
    planner: PlannerConfig,
}

impl Warehouse {
    /// An empty warehouse with default planner settings.
    pub fn new() -> Warehouse {
        Warehouse::default()
    }

    /// A warehouse with custom planner settings.
    pub fn with_planner(planner: PlannerConfig) -> Warehouse {
        Warehouse { planner, ..Warehouse::default() }
    }

    /// Registers a table under its own name.
    pub fn register(&mut self, table: Table) -> Result<(), WarehouseError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(WarehouseError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// The registered table named `name`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Registered table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The SMA set defined on `relation`, if any.
    pub fn smas(&self, relation: &str) -> Option<&SmaSet> {
        self.catalog.set_for(relation)
    }

    /// Executes a `define sma` statement: parses it against the target
    /// relation's schema, bulkloads the SMA, registers it.
    pub fn define_sma(&mut self, statement: &str) -> Result<&Sma, WarehouseError> {
        let relation = relation_of(statement)
            .ok_or_else(|| WarehouseError::UnknownTable("<unparsed>".into()))?;
        let table = self
            .tables
            .get(&relation)
            .or_else(|| {
                // SQL identifiers are case-insensitive.
                self.tables
                    .iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case(&relation))
                    .map(|(_, v)| v)
            })
            .ok_or(WarehouseError::UnknownTable(relation))?;
        Ok(self.catalog.execute_define(statement, table)?)
    }

    /// Appends a tuple, routing SMA maintenance automatically.
    pub fn insert(&mut self, relation: &str, tuple: &Tuple) -> Result<TupleId, WarehouseError> {
        let table = self
            .tables
            .get_mut(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let tid = table.append(tuple)?;
        let bucket = table.bucket_of_page(tid.page);
        self.catalog.note_insert(relation, bucket, tuple)?;
        Ok(tid)
    }

    /// Deletes a tuple, routing SMA maintenance automatically.
    pub fn delete(&mut self, relation: &str, tid: TupleId) -> Result<(), WarehouseError> {
        let table = self
            .tables
            .get_mut(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let Some(old) = table.get(tid)? else {
            return Err(WarehouseError::Table(TableError::NotFound(tid)));
        };
        table.delete(tid)?;
        let bucket = table.bucket_of_page(tid.page);
        self.catalog.note_delete(relation, bucket, &old)?;
        Ok(())
    }

    /// Re-tightens any loose min/max bounds on `relation`'s SMAs,
    /// returning the number of buckets refreshed.
    pub fn refresh_smas(&mut self, relation: &str) -> Result<usize, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        Ok(self.catalog.refresh_stale(relation, table)?)
    }

    /// Plans and runs an aggregate query against `relation`, using its
    /// SMAs when the cost model says they pay.
    pub fn query(
        &self,
        relation: &str,
        query: AggregateQuery,
    ) -> Result<QueryResult, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let chosen = plan(table, query, self.catalog.set_for(relation), &self.planner);
        let rows = chosen.execute()?;
        Ok(QueryResult { rows, plan_kind: chosen.kind })
    }

    /// EXPLAIN for an aggregate query: the chosen plan and its estimates.
    pub fn explain(
        &self,
        relation: &str,
        query: AggregateQuery,
    ) -> Result<String, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let chosen = plan(table, query, self.catalog.set_for(relation), &self.planner);
        Ok(chosen.explain())
    }
}

/// Extracts the `from <relation>` identifier from a `define sma`
/// statement without needing the schema (which depends on the relation).
fn relation_of(statement: &str) -> Option<String> {
    let mut words = statement.split_whitespace();
    while let Some(w) = words.next() {
        if w.eq_ignore_ascii_case("from") {
            let rel = words.next()?;
            return Some(
                rel.trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
                    .to_string(),
            );
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{col, BucketPred, CmpOp};
    use sma_exec::AggSpec;
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn sales_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("DAY", DataType::Int),
            Column::new("REGION", DataType::Char),
            Column::new("UNITS", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("SALES", schema, 1);
        let pad = "p".repeat(1700);
        for day in 0..60i64 {
            t.append(&vec![
                Value::Int(day),
                Value::Char(b'N' + (day % 2) as u8),
                Value::Int(day * 3),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn sum_query(cutoff: i64) -> AggregateQuery {
        AggregateQuery {
            pred: BucketPred::cmp(0, CmpOp::Le, cutoff),
            group_by: vec![1],
            specs: vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
        }
    }

    fn loaded_warehouse() -> Warehouse {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        w.define_sma("define sma min_day select min(DAY) from SALES").unwrap();
        w.define_sma("define sma max_day select max(DAY) from SALES").unwrap();
        w.define_sma("define sma cnt select count(*) from SALES group by REGION")
            .unwrap();
        w.define_sma("define sma units select sum(UNITS) from SALES group by REGION")
            .unwrap();
        w
    }

    #[test]
    fn end_to_end_query_uses_smas() {
        let w = loaded_warehouse();
        let with = w.query("SALES", sum_query(9)).unwrap();
        assert_eq!(with.plan_kind, PlanKind::SmaGAggr);
        // Naive warehouse (no SMAs) agrees.
        let mut naive = Warehouse::new();
        naive.register(sales_table()).unwrap();
        let without = naive.query("SALES", sum_query(9)).unwrap();
        assert_eq!(without.plan_kind, PlanKind::FullScan);
        assert_eq!(with.rows, without.rows);
        assert!(w.explain("SALES", sum_query(9)).unwrap().contains("SmaGAggr"));
    }

    #[test]
    fn inserts_and_deletes_route_maintenance() {
        let mut w = loaded_warehouse();
        let before = w.query("SALES", sum_query(1000)).unwrap();
        let tid = w
            .insert(
                "SALES",
                &vec![
                    Value::Int(100),
                    Value::Char(b'N'),
                    Value::Int(999),
                    Value::Str("p".repeat(1700)),
                ],
            )
            .unwrap();
        let mid = w.query("SALES", sum_query(1000)).unwrap();
        assert_ne!(before.rows, mid.rows, "insert visible through SMA plan");
        w.delete("SALES", tid).unwrap();
        let refreshed = w.refresh_smas("SALES").unwrap();
        assert!(refreshed >= 1, "delete left a stale bucket");
        let after = w.query("SALES", sum_query(1000)).unwrap();
        assert_eq!(before.rows, after.rows);
    }

    #[test]
    fn errors_are_specific() {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        assert!(matches!(
            w.register(sales_table()),
            Err(WarehouseError::DuplicateTable(_))
        ));
        assert!(matches!(
            w.query("NOPE", sum_query(1)),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.define_sma("define sma x select min(DAY) from NOPE"),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.define_sma("not sql at all"),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.delete("SALES", TupleId { page: 999, slot: 0 }),
            Err(WarehouseError::Table(_))
        ));
    }

    #[test]
    fn relation_extraction() {
        assert_eq!(
            relation_of("define sma x select min(A) from LINEITEM group by B"),
            Some("LINEITEM".into())
        );
        assert_eq!(
            relation_of("define sma x select min(A) FROM orders"),
            Some("orders".into())
        );
        assert_eq!(relation_of("no from-clause here"), None);
    }

    #[test]
    fn case_insensitive_relation_lookup() {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        // Statement says "sales", table is "SALES".
        assert!(w
            .define_sma("define sma m select min(DAY) from sales")
            .is_ok());
    }
}
