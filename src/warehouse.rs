//! The warehouse facade: tables + SMA catalog + planner in one handle.
//!
//! This is the surface a downstream user programs against: register
//! relations, issue the paper's `define sma` statements, mutate data with
//! SMA maintenance handled automatically, and run aggregate queries that
//! pick SMA plans whenever they pay.
//!
//! # Durability
//!
//! [`Warehouse::save_to_dir`] persists tables, SMAs and a checksummed
//! manifest to a directory; [`Warehouse::open_with_recovery`] reopens it,
//! verifying every page checksum and every SMA stream, rebuilding any SMA
//! that fails verification from its base table (SMAs are redundant derived
//! data — the paper's §3 maintenance argument makes corruption a rebuild,
//! never a data loss). [`Warehouse::scrub`] runs the same verification on
//! demand against an open warehouse.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use sma_core::catalog::{CatalogError, SmaCatalog};
use sma_core::persist::{decode_definition, encode_definition, load_sma_file, save_sma_file};
use sma_core::{Sma, SmaDefinition, SmaError, SmaSet};
use sma_exec::{plan, AggregateQuery, DegradationReport, ExecError, PlanKind, PlannerConfig};
use sma_storage::{
    atomic_write_file, crc32, sync_dir, FileStore, PageNo, PageStore, QueryBudget, SegmentedStore,
    StoreError, Table, TableError, TupleId,
};
use sma_types::{Column, DataType, Schema, Tuple};

/// Errors from warehouse operations.
#[derive(Debug)]
pub enum WarehouseError {
    /// No table with this name is registered.
    UnknownTable(String),
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// Storage failed.
    Table(TableError),
    /// SMA catalog operation failed.
    Catalog(CatalogError),
    /// Query execution failed.
    Exec(ExecError),
    /// A filesystem operation on the warehouse directory failed.
    Io(io::Error),
    /// SMA persistence or rebuild failed.
    Sma(SmaError),
    /// The warehouse manifest failed its checksum or did not parse. The
    /// manifest is the one file recovery cannot rebuild, so this is fatal.
    CorruptManifest(String),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownTable(n) => write!(f, "unknown table {n:?}"),
            WarehouseError::DuplicateTable(n) => write!(f, "table {n:?} already exists"),
            WarehouseError::Table(e) => write!(f, "{e}"),
            WarehouseError::Catalog(e) => write!(f, "{e}"),
            WarehouseError::Exec(e) => write!(f, "{e}"),
            WarehouseError::Io(e) => write!(f, "warehouse i/o failed: {e}"),
            WarehouseError::Sma(e) => write!(f, "{e}"),
            WarehouseError::CorruptManifest(what) => {
                write!(f, "corrupt warehouse manifest: {what}")
            }
        }
    }
}

impl std::error::Error for WarehouseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WarehouseError::Table(e) => Some(e),
            WarehouseError::Catalog(e) => Some(e),
            WarehouseError::Exec(e) => Some(e),
            WarehouseError::Io(e) => Some(e),
            WarehouseError::Sma(e) => Some(e),
            WarehouseError::UnknownTable(_)
            | WarehouseError::DuplicateTable(_)
            | WarehouseError::CorruptManifest(_) => None,
        }
    }
}

impl From<TableError> for WarehouseError {
    fn from(e: TableError) -> WarehouseError {
        WarehouseError::Table(e)
    }
}

impl From<CatalogError> for WarehouseError {
    fn from(e: CatalogError) -> WarehouseError {
        WarehouseError::Catalog(e)
    }
}

impl From<ExecError> for WarehouseError {
    fn from(e: ExecError) -> WarehouseError {
        WarehouseError::Exec(e)
    }
}

impl From<io::Error> for WarehouseError {
    fn from(e: io::Error) -> WarehouseError {
        WarehouseError::Io(e)
    }
}

impl From<SmaError> for WarehouseError {
    fn from(e: SmaError) -> WarehouseError {
        WarehouseError::Sma(e)
    }
}

impl From<StoreError> for WarehouseError {
    fn from(e: StoreError) -> WarehouseError {
        WarehouseError::Table(TableError::Store(e))
    }
}

/// The result of a warehouse query.
#[derive(Debug)]
pub struct QueryResult {
    /// Output rows: group key columns then aggregates, sorted by key.
    pub rows: Vec<Tuple>,
    /// The physical strategy the planner chose.
    pub plan_kind: PlanKind,
    /// What the resilience layer gave up while executing: buckets demoted
    /// from the SMA fast path to base-table scans, and transient-I/O
    /// retries spent. Empty on a healthy run.
    pub degradation: DegradationReport,
}

/// A data warehouse: named tables, their SMAs, and a planner.
///
/// ```
/// use smadb::Warehouse;
/// use smadb::storage::Table;
/// use smadb::types::{Column, DataType, Schema, Value};
/// use smadb::sma::{col, BucketPred, CmpOp};
/// use smadb::exec::{AggSpec, AggregateQuery};
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::new(vec![Column::new("X", DataType::Int)]));
/// let mut sales = Table::in_memory("SALES", schema, 1);
/// for x in 0..50 { sales.append(&vec![Value::Int(x)]).unwrap(); }
///
/// let mut warehouse = Warehouse::new();
/// warehouse.register(sales).unwrap();
/// warehouse.define_sma("define sma mn select min(X) from SALES").unwrap();
/// warehouse.define_sma("define sma mx select max(X) from SALES").unwrap();
///
/// let result = warehouse.query("SALES", AggregateQuery {
///     pred: BucketPred::cmp(0, CmpOp::Le, 10i64),
///     group_by: vec![],
///     specs: vec![AggSpec::CountStar],
/// }).unwrap();
/// assert_eq!(result.rows[0][0], Value::Int(11));
/// ```
#[derive(Default)]
pub struct Warehouse {
    tables: BTreeMap<String, Table>,
    catalog: SmaCatalog,
    planner: PlannerConfig,
    /// Highest WAL sequence number folded into the sealed tables —
    /// persisted in the manifest so recovery can skip already-applied
    /// records (streaming-ingest idempotence). 0 for bulk-loaded data.
    watermark: u64,
    /// WAL epoch the streaming log was last truncated to. Tracked
    /// separately from the catalog epoch because compaction advances the
    /// catalog epoch *without* touching the WAL: replay filtering on the
    /// catalog epoch would silently drop acked records appended between a
    /// compaction and a crash.
    wal_epoch: u64,
    /// The committed segment set per table: which on-disk files, in commit
    /// order, reassemble each table (see [`SegmentedStore`]). Empty for
    /// in-memory warehouses that were never saved.
    segments: SegmentLists,
}

impl Warehouse {
    /// An empty warehouse with default planner settings.
    pub fn new() -> Warehouse {
        Warehouse::default()
    }

    /// A warehouse with custom planner settings.
    pub fn with_planner(planner: PlannerConfig) -> Warehouse {
        Warehouse {
            planner,
            ..Warehouse::default()
        }
    }

    /// Registers a table under its own name.
    pub fn register(&mut self, table: Table) -> Result<(), WarehouseError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(WarehouseError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// The registered table named `name`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to the registered table named `name` — the seam the
    /// flush/compaction paths use to convert sealed buckets to the
    /// columnar layout before exporting them.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Registered table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The SMA set defined on `relation`, if any.
    pub fn smas(&self, relation: &str) -> Option<&SmaSet> {
        self.catalog.set_for(relation)
    }

    /// The flush generation of the sealed state (see
    /// [`sma_core::catalog::SmaCatalog::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.catalog.epoch()
    }

    /// Highest WAL sequence number folded into the sealed tables.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// WAL epoch the streaming log was last truncated to (see the
    /// `wal_epoch` field — compaction advances the catalog epoch without
    /// touching this one).
    pub fn wal_epoch(&self) -> u64 {
        self.wal_epoch
    }

    /// Number of committed segment files backing `relation` (1 after a
    /// bulk save or a compaction; grows by one per incremental flush that
    /// touched the table).
    pub fn segment_count(&self, relation: &str) -> usize {
        self.segments.get(relation).map(Vec::len).unwrap_or(0)
    }

    /// Largest per-table segment count — what a compaction policy
    /// compares against its threshold.
    pub fn max_segment_count(&self) -> usize {
        self.segments.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Bumps the flush generation and records the new watermark — called
    /// by the streaming flush path just before it persists the new
    /// segment generation. A flush truncates the WAL when it completes,
    /// so the WAL epoch follows the catalog epoch here.
    pub(crate) fn begin_flush_generation(&mut self, watermark: u64) -> u64 {
        self.watermark = watermark;
        let epoch = self.catalog.advance_epoch();
        self.wal_epoch = epoch;
        epoch
    }

    /// Bumps the flush generation for a compaction, which rewrites
    /// segment files but neither applies WAL records nor truncates the
    /// log — the watermark and WAL epoch stay put so crash replay still
    /// accepts every record appended since the last flush.
    pub(crate) fn begin_compaction_generation(&mut self) -> u64 {
        self.catalog.advance_epoch()
    }

    /// Adopts `lists` as the committed segment set and seals every table:
    /// called after the manifest naming these segments has been atomically
    /// committed, never before (sealing early would lose the dirty-range
    /// information a failed flush still needs for its retry).
    pub(crate) fn install_segments(&mut self, lists: SegmentLists) {
        self.segments = lists;
        for table in self.tables.values_mut() {
            table.seal();
        }
    }

    /// The planner configuration this warehouse queries with.
    pub(crate) fn planner(&self) -> &PlannerConfig {
        &self.planner
    }

    /// Read access to the SMA catalog (ingest layer).
    pub(crate) fn catalog(&self) -> &SmaCatalog {
        &self.catalog
    }

    /// Executes a `define sma` statement: parses it against the target
    /// relation's schema, bulkloads the SMA, registers it.
    pub fn define_sma(&mut self, statement: &str) -> Result<&Sma, WarehouseError> {
        let relation = relation_of(statement)
            .ok_or_else(|| WarehouseError::UnknownTable("<unparsed>".into()))?;
        let table = self
            .tables
            .get(&relation)
            .or_else(|| {
                // SQL identifiers are case-insensitive.
                self.tables
                    .iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case(&relation))
                    .map(|(_, v)| v)
            })
            .ok_or(WarehouseError::UnknownTable(relation))?;
        Ok(self.catalog.execute_define(statement, table)?)
    }

    /// Appends a tuple, routing SMA maintenance automatically.
    pub fn insert(&mut self, relation: &str, tuple: &Tuple) -> Result<TupleId, WarehouseError> {
        let table = self
            .tables
            .get_mut(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let tid = table.append(tuple)?;
        let bucket = table.bucket_of_page(tid.page);
        self.catalog.note_insert(relation, bucket, tuple)?;
        Ok(tid)
    }

    /// Deletes a tuple, routing SMA maintenance automatically.
    pub fn delete(&mut self, relation: &str, tid: TupleId) -> Result<(), WarehouseError> {
        let table = self
            .tables
            .get_mut(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let Some(old) = table.get(tid)? else {
            return Err(WarehouseError::Table(TableError::NotFound(tid)));
        };
        table.delete(tid)?;
        let bucket = table.bucket_of_page(tid.page);
        self.catalog.note_delete(relation, bucket, &old)?;
        Ok(())
    }

    /// Re-tightens any loose min/max bounds on `relation`'s SMAs,
    /// returning the number of buckets refreshed.
    pub fn refresh_smas(&mut self, relation: &str) -> Result<usize, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        Ok(self.catalog.refresh_stale(relation, table)?)
    }

    /// Marks `buckets` of every SMA on `relation` as quarantined: their
    /// entries may be garbage (detected corruption, torn write) and must
    /// not be trusted. Queries keep answering correctly — the affected
    /// buckets demote to base-table scans — until [`Warehouse::heal`]
    /// rebuilds the entries.
    pub fn quarantine_sma_buckets(
        &mut self,
        relation: &str,
        buckets: &[u32],
    ) -> Result<(), WarehouseError> {
        if !self.tables.contains_key(relation) {
            return Err(WarehouseError::UnknownTable(relation.to_string()));
        }
        if let Some(set) = self.catalog.set_for_mut(relation) {
            for &b in buckets {
                set.quarantine_bucket(b);
            }
        }
        Ok(())
    }

    /// Buckets currently quarantined in at least one SMA on `relation`
    /// (sorted, deduplicated).
    pub fn quarantined_sma_buckets(&self, relation: &str) -> Vec<u32> {
        self.catalog
            .set_for(relation)
            .map(SmaSet::quarantined_buckets)
            .unwrap_or_default()
    }

    /// Heals `relation`'s SMAs: rescans exactly the quarantined buckets
    /// from the base table and rebuilds their entries, clearing the
    /// quarantine. Returns the number of buckets healed. SMAs are
    /// redundant derived data, so healing never needs anything beyond the
    /// base table — the paper's §3 maintenance argument applied to repair.
    pub fn heal(&mut self, relation: &str) -> Result<usize, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let Some(set) = self.catalog.set_for_mut(relation) else {
            return Ok(0);
        };
        let buckets = set.quarantined_buckets();
        for &b in &buckets {
            set.refresh_bucket(table, b)?;
        }
        Ok(buckets.len())
    }

    /// Heals every relation's SMAs (see [`Warehouse::heal`]), returning
    /// the total number of buckets healed.
    pub fn heal_all(&mut self) -> Result<usize, WarehouseError> {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        let mut healed = 0;
        for name in names {
            healed += self.heal(&name)?;
        }
        Ok(healed)
    }

    /// Plans and runs an aggregate query against `relation`, using its
    /// SMAs when the cost model says they pay.
    pub fn query(
        &self,
        relation: &str,
        query: AggregateQuery,
    ) -> Result<QueryResult, WarehouseError> {
        self.query_inner(relation, query, None)
    }

    /// [`Warehouse::query`] under a cooperative [`QueryBudget`]: the
    /// executor checks the budget at every bucket/page boundary, so a
    /// deadline, page cap, or cancellation cuts the query off with a
    /// structured [`sma_exec::ExecError::Budget`] instead of letting a
    /// heavy scan run unchecked.
    pub fn query_with_budget(
        &self,
        relation: &str,
        query: AggregateQuery,
        budget: &QueryBudget,
    ) -> Result<QueryResult, WarehouseError> {
        self.query_inner(relation, query, Some(budget))
    }

    fn query_inner(
        &self,
        relation: &str,
        query: AggregateQuery,
        budget: Option<&QueryBudget>,
    ) -> Result<QueryResult, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let mut chosen = plan(table, query, self.catalog.set_for(relation), &self.planner);
        if let Some(b) = budget {
            chosen = chosen.with_budget(b);
        }
        let (rows, degradation) = chosen.execute_with_report()?;
        Ok(QueryResult {
            rows,
            plan_kind: chosen.kind,
            degradation,
        })
    }

    /// EXPLAIN for an aggregate query: the chosen plan and its estimates.
    pub fn explain(&self, relation: &str, query: AggregateQuery) -> Result<String, WarehouseError> {
        let table = self
            .tables
            .get(relation)
            .ok_or_else(|| WarehouseError::UnknownTable(relation.to_string()))?;
        let chosen = plan(table, query, self.catalog.set_for(relation), &self.planner);
        Ok(chosen.explain())
    }

    // -------------------------------------------------- durability layer

    /// Persists the warehouse into `dir`: one checksummed page file per
    /// table, one checksummed `SMA2` stream per SMA, and — written last,
    /// atomically — the [`MANIFEST_FILE`] that names them all.
    ///
    /// The manifest is the commit point: each table and SMA file is
    /// fully written, fsynced and renamed into place before the manifest
    /// that references it, so a crash anywhere in `save_to_dir` leaves a
    /// directory that [`Warehouse::open_with_recovery`] reads as either
    /// the old state or the new state, never a mixture.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), WarehouseError> {
        let meta = CommitMeta {
            epoch: self.catalog.epoch(),
            watermark: self.watermark,
            wal_epoch: self.wal_epoch,
        };
        let dir = dir.as_ref();
        let (stream, _lists) = self.save_generation(dir, meta, "")?;
        commit_manifest(dir, &stream)
    }

    /// The segment-writing half of [`Warehouse::save_to_dir`], with an
    /// explicit commit point and a filename `suffix` spliced in before
    /// each `.tbl`/`.sma` extension. Every table is fully exported into a
    /// single fresh segment file; the manifest stream naming them is
    /// *returned* (along with the single-segment lists), not written —
    /// nothing is committed until the caller passes it to
    /// [`commit_manifest`], then adopts the lists via
    /// [`Warehouse::install_segments`].
    ///
    /// The streaming flush path saves every generation under a distinct
    /// suffix (`.e1`, `.e2`, …): segment files of the previous generation
    /// are never opened for writing, so a crash anywhere before the
    /// manifest rename leaves the old generation fully intact and a crash
    /// after it leaves the new one — the directory is always exactly one
    /// committed state plus, at worst, dead files that cleanup removes.
    pub(crate) fn save_generation(
        &self,
        dir: impl AsRef<Path>,
        meta: CommitMeta,
        suffix: &str,
    ) -> Result<(Vec<u8>, SegmentLists), WarehouseError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut lists = SegmentLists::new();
        for (name, table) in &self.tables {
            // Table and SMA names come from the SQL parser (identifiers:
            // alphanumerics and underscores), so they are filename-safe.
            let tbl_file = format!("{name}{suffix}.tbl");
            let tmp = dir.join(format!("{tbl_file}.tmp"));
            let mut store = FileStore::create(&tmp)?;
            table.export_to_store(&mut store)?;
            drop(store);
            fs::rename(&tmp, dir.join(&tbl_file))?;
            lists.insert(
                name.clone(),
                vec![SegmentMeta {
                    file: tbl_file,
                    start: 0,
                    pages: table.page_count(),
                }],
            );
        }
        let stream = self.encode_generation(dir, meta, suffix, &lists)?;
        Ok((stream, lists))
    }

    /// Like [`Warehouse::save_generation`] but *incremental*: each table
    /// exports only its unsealed page range (everything written since the
    /// last committed generation) into a small `.e{epoch}` delta segment,
    /// extending its previous segment list instead of replacing it. An
    /// untouched table writes no file at all and keeps its list verbatim.
    /// SMA images are always rewritten whole — they are tiny by the
    /// paper's premise, and their bucket entries shift on every append.
    pub(crate) fn save_delta_generation(
        &self,
        dir: impl AsRef<Path>,
        meta: CommitMeta,
        suffix: &str,
    ) -> Result<(Vec<u8>, SegmentLists), WarehouseError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut lists = SegmentLists::new();
        for (name, table) in &self.tables {
            let old: &[SegmentMeta] = self.segments.get(name).map(Vec::as_slice).unwrap_or(&[]);
            let covered: PageNo = old.iter().map(|s| s.start + s.pages).max().unwrap_or(0);
            // The delta must reach back to the first dirty page, and also
            // cover any pages the committed segments never saw (a table
            // that grew while its list lagged behind).
            let from = table.unsealed_from().min(covered);
            let pages = table.page_count();
            if from >= pages {
                // Nothing new to persist: the committed segments already
                // cover every page and none of them went dirty.
                lists.insert(name.clone(), old.to_vec());
                continue;
            }
            let tbl_file = format!("{name}{suffix}.tbl");
            let tmp = dir.join(format!("{tbl_file}.tmp"));
            let mut store = FileStore::create(&tmp)?;
            table.export_page_range(&mut store, from)?;
            drop(store);
            fs::rename(&tmp, dir.join(&tbl_file))?;
            // Segments fully shadowed by the new delta are dead weight:
            // drop them from the list (cleanup removes their files once
            // the manifest stops naming them).
            let mut list: Vec<SegmentMeta> =
                old.iter().filter(|s| s.start < from).cloned().collect();
            list.push(SegmentMeta {
                file: tbl_file,
                start: from,
                pages: pages - from,
            });
            lists.insert(name.clone(), list);
        }
        let stream = self.encode_generation(dir, meta, suffix, &lists)?;
        Ok((stream, lists))
    }

    /// Writes this generation's SMA images into `dir` and encodes the
    /// manifest stream naming `lists` + those images — the shared tail of
    /// full saves, delta flushes, and compactions. The stream is returned
    /// uncommitted; pass it to [`commit_manifest`].
    pub(crate) fn encode_generation(
        &self,
        dir: &Path,
        meta: CommitMeta,
        suffix: &str,
        lists: &SegmentLists,
    ) -> Result<Vec<u8>, WarehouseError> {
        let mut manifest = Vec::new();
        put_u64(&mut manifest, meta.epoch);
        put_u64(&mut manifest, meta.watermark);
        put_u64(&mut manifest, meta.wal_epoch);
        // Manifest v3: the table-count high bit signals that each table
        // entry carries a layout byte after bucket_pages. v2 readers never
        // see v3 manifests (upgrades are forward-only); this v3 reader
        // still accepts v2 manifests, whose tables are all row-major.
        put_u32(&mut manifest, MANIFEST_V3_FLAG | (self.tables.len() as u32));
        for (name, table) in &self.tables {
            put_str(&mut manifest, name);
            let empty = Vec::new();
            let list = lists.get(name).unwrap_or(&empty);
            put_u32(&mut manifest, list.len() as u32);
            for seg in list {
                put_str(&mut manifest, &seg.file);
                put_u32(&mut manifest, seg.start);
                put_u32(&mut manifest, seg.pages);
            }
            put_u32(&mut manifest, table.bucket_pages());
            manifest.push(u8::from(!table.columnar_buckets().is_empty()));
            let cols = table.schema().columns();
            put_u32(&mut manifest, cols.len() as u32);
            for c in cols {
                put_str(&mut manifest, &c.name);
                manifest.push(dtype_tag(c.ty));
            }
            let smas = self.catalog.set_for(name).map(SmaSet::smas).unwrap_or(&[]);
            put_u32(&mut manifest, smas.len() as u32);
            for sma in smas {
                let sma_file = format!("{name}.{}{suffix}.sma", sma.def().name);
                if sma.has_quarantine() {
                    // Quarantined entries may be garbage and the flag is
                    // runtime-only, so persisting the image would launder
                    // the damage into a "clean" file. Drop any on-disk
                    // image instead: the manifest still names the SMA, so
                    // reopening rebuilds it from the base table.
                    match fs::remove_file(dir.join(&sma_file)) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    save_sma_file(sma, &dir.join(&sma_file))?;
                }
                put_str(&mut manifest, &sma.def().name);
                put_str(&mut manifest, &sma_file);
                let def = encode_definition(sma.def());
                put_u32(&mut manifest, def.len() as u32);
                manifest.extend_from_slice(&def);
            }
        }
        let mut stream = Vec::with_capacity(12 + manifest.len());
        stream.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut stream, manifest.len() as u32);
        put_u32(&mut stream, crc32(&manifest));
        stream.extend_from_slice(&manifest);
        Ok(stream)
    }

    /// Reopens a warehouse saved with [`Warehouse::save_to_dir`],
    /// verifying everything on the way in:
    ///
    /// * every table page is read through the pool, which checks its CRC
    ///   footer; corrupt pages are reported (base data cannot be rebuilt,
    ///   but it is never silently served), and live-tuple counts are
    ///   restored from the readable pages;
    /// * every SMA file is checksum-verified and structurally decoded; a
    ///   corrupt, missing, or out-of-date SMA is quarantined (renamed to
    ///   `<file>.quarantined`) and rebuilt from its base table — SMAs are
    ///   redundant, so their corruption never loses data.
    ///
    /// Only a damaged manifest is unrecoverable
    /// ([`WarehouseError::CorruptManifest`]).
    pub fn open_with_recovery(
        dir: impl AsRef<Path>,
    ) -> Result<(Warehouse, RecoveryReport), WarehouseError> {
        let dir = dir.as_ref();
        let bytes = fs::read(dir.join(MANIFEST_FILE))?;
        let (meta, entries) = decode_manifest(&bytes)?;
        let mut w = Warehouse::new();
        w.catalog.set_epoch(meta.epoch);
        w.watermark = meta.watermark;
        w.wal_epoch = meta.wal_epoch;
        let mut report = RecoveryReport {
            epoch: meta.epoch,
            watermark: meta.watermark,
            ..RecoveryReport::default()
        };
        for entry in entries {
            let mut segs: Vec<(Box<dyn PageStore>, PageNo, PageNo)> = Vec::new();
            for seg in &entry.segments {
                let store = FileStore::open(dir.join(&seg.file))?;
                segs.push((Box::new(store), seg.start, seg.pages));
            }
            let store = SegmentedStore::new(segs)?;
            let schema = Arc::new(Schema::new(entry.columns));
            let mut table = Table::new(
                &entry.name,
                schema,
                Box::new(store),
                POOL_CAPACITY,
                entry.bucket_pages,
            );
            w.segments.insert(entry.name.clone(), entry.segments);
            let verification = table.verify_pages()?;
            report.pages_scanned += verification.scanned as u64;
            for p in verification.corrupt {
                report.pages_corrupt.push((entry.name.clone(), p));
            }
            if entry.columnar {
                report.columnar_tables += 1;
            }
            report.columnar_buckets += table.columnar_buckets().len() as u64;
            for sma_entry in entry.smas {
                let sma = recover_sma(dir, &entry.name, &sma_entry, &table, &mut report)?;
                w.catalog.install(&entry.name, sma);
            }
            report.tables += 1;
            w.tables.insert(entry.name, table);
        }
        Ok((w, report))
    }

    /// Verifies the on-disk state of a warehouse previously saved to
    /// `dir` against this open warehouse: re-reads every table page from
    /// disk (dropping the cache first, so corruption behind the pool is
    /// seen), checksum-verifies every SMA file, and quarantines, rebuilds,
    /// and re-saves any SMA that fails. Healthy SMA files are left alone —
    /// the in-memory catalog may be ahead of disk, and scrub must not roll
    /// it back.
    pub fn scrub(&mut self, dir: impl AsRef<Path>) -> Result<RecoveryReport, WarehouseError> {
        let dir = dir.as_ref();
        let bytes = fs::read(dir.join(MANIFEST_FILE))?;
        let (meta, entries) = decode_manifest(&bytes)?;
        let mut report = RecoveryReport {
            epoch: meta.epoch,
            watermark: meta.watermark,
            ..RecoveryReport::default()
        };
        for entry in entries {
            let Some(table) = self.tables.get_mut(&entry.name) else {
                continue;
            };
            table.make_cold()?;
            let verification = table.verify_pages()?;
            report.pages_scanned += verification.scanned as u64;
            for p in verification.corrupt {
                report.pages_corrupt.push((entry.name.clone(), p));
            }
            for sma_entry in &entry.smas {
                let path = dir.join(&sma_entry.file);
                match verify_sma_file(&path, sma_entry, table)? {
                    Some(_healthy) => report.smas_intact += 1,
                    None => {
                        quarantine(&path)?;
                        let rebuilt = Sma::build(table, sma_entry.def.clone())?;
                        save_sma_file(&rebuilt, &path)?;
                        report
                            .smas_rebuilt
                            .push(format!("{}.{}", entry.name, sma_entry.def.name));
                        self.catalog.install(&entry.name, rebuilt);
                    }
                }
            }
            report.buckets_quarantined += self
                .catalog
                .set_for(&entry.name)
                .map(|s| s.quarantined_buckets().len() as u64)
                .unwrap_or(0);
            report.tables += 1;
        }
        Ok(report)
    }
}

/// File naming the tables and SMAs of a saved warehouse directory; written
/// last and atomically, it is the commit point of [`Warehouse::save_to_dir`].
pub const MANIFEST_FILE: &str = "catalog.smac";

const MANIFEST_MAGIC: &[u8; 4] = b"SMAC";

/// High bit of the manifest's table count: set by v3 writers to signal
/// that each table entry carries a per-table layout byte (0 = row-only,
/// 1 = may contain columnar buckets) after `bucket_pages`.
const MANIFEST_V3_FLAG: u32 = 0x8000_0000;

/// The commit point a manifest records for the streaming ingest path:
/// which flush generation the sealed files belong to and the highest WAL
/// sequence number folded into them. Bulk-loaded warehouses carry the
/// default (epoch 0, watermark 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitMeta {
    /// Flush generation of the sealed segment files.
    pub epoch: u64,
    /// Highest WAL sequence number applied to the sealed state — replay
    /// skips records at or below it.
    pub watermark: u64,
    /// Epoch stamped into the WAL header at its last truncation. Replay
    /// filters on *this* value, not `epoch`: compactions advance the
    /// catalog epoch without touching the log, and records appended in
    /// between must still be accepted after a crash.
    pub wal_epoch: u64,
}

/// One committed segment file of a table: pages `[start, start + pages)`
/// of the logical table, stored renumbered from zero in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentMeta {
    /// Segment file name within the warehouse directory.
    pub(crate) file: String,
    /// First logical table page the segment covers.
    pub(crate) start: PageNo,
    /// Number of pages in the segment.
    pub(crate) pages: PageNo,
}

/// Per-table committed segment lists, in commit order (later segments
/// shadow earlier ones on overlap).
pub(crate) type SegmentLists = BTreeMap<String, Vec<SegmentMeta>>;

/// Buffer-pool pages for tables reopened from disk (matches
/// `Table::in_memory`'s generous default).
const POOL_CAPACITY: usize = 1 << 16;

/// What [`Warehouse::open_with_recovery`] and [`Warehouse::scrub`] found
/// and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tables examined.
    pub tables: usize,
    /// Table pages read and checksum-verified.
    pub pages_scanned: u64,
    /// `(table, page)` pairs whose checksum or structure failed. Base
    /// pages hold primary data and cannot be rebuilt; reads of these pages
    /// keep failing loudly rather than returning wrong tuples.
    pub pages_corrupt: Vec<(String, PageNo)>,
    /// SMA files that loaded and verified clean.
    pub smas_intact: usize,
    /// `table.sma` names that failed verification and were rebuilt from
    /// their base table.
    pub smas_rebuilt: Vec<String>,
    /// Buckets still quarantined in the live catalog after the pass —
    /// entries queries refuse to trust until [`Warehouse::heal`] runs.
    /// A freshly recovered warehouse always reports zero (rebuilt SMAs
    /// carry no quarantine).
    pub buckets_quarantined: u64,
    /// Flush generation the committed manifest named (0 for bulk loads).
    pub epoch: u64,
    /// Highest WAL sequence number the sealed state covers.
    pub watermark: u64,
    /// Tables whose manifest entry declared the columnar layout (v3).
    pub columnar_tables: usize,
    /// Columnar buckets rediscovered from their self-describing chunk
    /// markers during page verification. The markers are authoritative;
    /// the manifest flag is advisory (see `ManifestTable::columnar`).
    pub columnar_buckets: u64,
}

impl RecoveryReport {
    /// True when nothing was corrupt, nothing had to be rebuilt, and no
    /// bucket remains quarantined.
    pub fn is_clean(&self) -> bool {
        self.pages_corrupt.is_empty()
            && self.smas_rebuilt.is_empty()
            && self.buckets_quarantined == 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} table(s), {} page(s) scanned ({} corrupt), {} sma(s) intact, {} rebuilt",
            self.tables,
            self.pages_scanned,
            self.pages_corrupt.len(),
            self.smas_intact,
            self.smas_rebuilt.len()
        )?;
        if !self.smas_rebuilt.is_empty() {
            write!(f, " [{}]", self.smas_rebuilt.join(", "))?;
        }
        if self.buckets_quarantined > 0 {
            write!(
                f,
                ", {} bucket(s) still quarantined",
                self.buckets_quarantined
            )?;
        }
        Ok(())
    }
}

struct ManifestSma {
    file: String,
    def: SmaDefinition,
}

struct ManifestTable {
    name: String,
    segments: Vec<SegmentMeta>,
    bucket_pages: u32,
    /// Manifest v3 layout flag: the table may contain columnar buckets.
    /// Advisory — the chunk markers on the CRC-verified pages are
    /// authoritative at recovery (a converted bucket that fails
    /// verification is reported corrupt and drops out of the set, so the
    /// flag can legitimately overclaim).
    columnar: bool,
    columns: Vec<Column>,
    smas: Vec<ManifestSma>,
}

/// Loads `path` if it verifies clean *and* matches the manifest definition
/// *and* covers the table's current bucket count. `Ok(None)` means "rebuild
/// it" — corrupt, truncated, missing, or stale; hard I/O errors propagate.
fn verify_sma_file(
    path: &Path,
    entry: &ManifestSma,
    table: &Table,
) -> Result<Option<Sma>, WarehouseError> {
    match load_sma_file(path) {
        Ok(sma) => {
            if sma.def() == &entry.def && sma.n_buckets() == table.bucket_count() {
                Ok(Some(sma))
            } else {
                Ok(None)
            }
        }
        Err(SmaError::Corrupt(_)) => Ok(None),
        Err(SmaError::Store(StoreError::Io(e))) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Moves a failed SMA file aside as `<file>.quarantined` so the corrupt
/// evidence survives the rebuild (a missing file is fine — nothing to keep).
fn quarantine(path: &Path) -> Result<(), WarehouseError> {
    let mut to = path.as_os_str().to_owned();
    to.push(".quarantined");
    match fs::rename(path, Path::new(&to)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Restart-time SMA recovery: load-and-verify, else quarantine and rebuild
/// from the base table, persisting the rebuilt image back to `dir`.
fn recover_sma(
    dir: &Path,
    table_name: &str,
    entry: &ManifestSma,
    table: &Table,
    report: &mut RecoveryReport,
) -> Result<Sma, WarehouseError> {
    let path = dir.join(&entry.file);
    if let Some(sma) = verify_sma_file(&path, entry, table)? {
        report.smas_intact += 1;
        return Ok(sma);
    }
    quarantine(&path)?;
    let rebuilt = Sma::build(table, entry.def.clone())?;
    save_sma_file(&rebuilt, &path)?;
    report
        .smas_rebuilt
        .push(format!("{table_name}.{}", entry.def.name));
    Ok(rebuilt)
}

// ------------------------------------------------------- manifest codec

fn put_u32(out: &mut Vec<u8>, v: u32) {
    sma_types::bytes::put_u32_le(out, v);
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    sma_types::bytes::put_u64_le(out, v);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn dtype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Decimal => 1,
        DataType::Date => 2,
        DataType::Char => 3,
        DataType::Str => 4,
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WarehouseError> {
        if self.pos + n > self.buf.len() {
            return Err(WarehouseError::CorruptManifest(format!(
                "truncated at offset {} (wanted {n} bytes)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WarehouseError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WarehouseError> {
        let s = self.take(4)?;
        sma_types::bytes::get_u32_le(s, 0)
            .ok_or_else(|| WarehouseError::CorruptManifest("short u32".into()))
    }

    fn u64(&mut self) -> Result<u64, WarehouseError> {
        let s = self.take(8)?;
        sma_types::bytes::get_u64_le(s, 0)
            .ok_or_else(|| WarehouseError::CorruptManifest("short u64".into()))
    }

    fn string(&mut self) -> Result<String, WarehouseError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|e| WarehouseError::CorruptManifest(format!("invalid utf-8: {e}")))
    }
}

fn decode_manifest(bytes: &[u8]) -> Result<(CommitMeta, Vec<ManifestTable>), WarehouseError> {
    if bytes.len() < 12 || &bytes[..4] != MANIFEST_MAGIC {
        return Err(WarehouseError::CorruptManifest("bad magic".into()));
    }
    let header_short = || WarehouseError::CorruptManifest("truncated header".into());
    let payload_len = sma_types::bytes::get_u32_le(bytes, 4).ok_or_else(header_short)? as usize;
    let want = sma_types::bytes::get_u32_le(bytes, 8).ok_or_else(header_short)?;
    let Some(payload) = bytes[12..].get(..payload_len) else {
        return Err(WarehouseError::CorruptManifest(format!(
            "truncated: header claims {payload_len} payload bytes, {} present",
            bytes.len() - 12
        )));
    };
    let got = crc32(payload);
    if got != want {
        return Err(WarehouseError::CorruptManifest(format!(
            "checksum mismatch: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let meta = CommitMeta {
        epoch: c.u64()?,
        watermark: c.u64()?,
        wal_epoch: c.u64()?,
    };
    let raw_tables = c.u32()?;
    let v3 = raw_tables & MANIFEST_V3_FLAG != 0;
    let n_tables = (raw_tables & !MANIFEST_V3_FLAG) as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1024));
    for _ in 0..n_tables {
        let name = c.string()?;
        let n_segments = c.u32()? as usize;
        let mut segments = Vec::with_capacity(n_segments.min(1024));
        for _ in 0..n_segments {
            let file = c.string()?;
            let start = c.u32()?;
            let pages = c.u32()?;
            segments.push(SegmentMeta { file, start, pages });
        }
        let bucket_pages = c.u32()?;
        if bucket_pages == 0 {
            return Err(WarehouseError::CorruptManifest(format!(
                "table {name:?} has zero bucket_pages"
            )));
        }
        let columnar = if v3 {
            match c.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(WarehouseError::CorruptManifest(format!(
                        "table {name:?} has unknown layout tag {tag}"
                    )))
                }
            }
        } else {
            false
        };
        let n_cols = c.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols.min(1024));
        for _ in 0..n_cols {
            let col_name = c.string()?;
            let ty = match c.u8()? {
                0 => DataType::Int,
                1 => DataType::Decimal,
                2 => DataType::Date,
                3 => DataType::Char,
                4 => DataType::Str,
                tag => {
                    return Err(WarehouseError::CorruptManifest(format!(
                        "unknown data type tag {tag}"
                    )))
                }
            };
            columns.push(Column::new(col_name, ty));
        }
        let n_smas = c.u32()? as usize;
        let mut smas = Vec::with_capacity(n_smas.min(1024));
        for _ in 0..n_smas {
            let _sma_name = c.string()?;
            let file = c.string()?;
            let def_len = c.u32()? as usize;
            let def = decode_definition(c.take(def_len)?)
                .map_err(|e| WarehouseError::CorruptManifest(format!("bad sma definition: {e}")))?;
            smas.push(ManifestSma { file, def });
        }
        tables.push(ManifestTable {
            name,
            segments,
            bucket_pages,
            columnar,
            columns,
            smas,
        });
    }
    if c.pos != payload.len() {
        return Err(WarehouseError::CorruptManifest(format!(
            "{} trailing bytes",
            payload.len() - c.pos
        )));
    }
    Ok((meta, tables))
}

/// The commit point of a save: atomically replaces [`MANIFEST_FILE`] with
/// `stream` (as returned by `save_generation`) and fsyncs the directory.
/// Until this returns, the previously committed generation is still the
/// one recovery will load.
pub(crate) fn commit_manifest(dir: &Path, stream: &[u8]) -> Result<(), WarehouseError> {
    atomic_write_file(dir.join(MANIFEST_FILE), stream)?;
    sync_dir(dir)?;
    Ok(())
}

/// Every file name the committed manifest in `dir` references — the set
/// the ingest layer's orphan cleanup must preserve.
pub(crate) fn manifest_files(dir: &Path) -> Result<Vec<String>, WarehouseError> {
    let bytes = fs::read(dir.join(MANIFEST_FILE))?;
    let (_, entries) = decode_manifest(&bytes)?;
    let mut files = Vec::new();
    for entry in entries {
        for seg in entry.segments {
            files.push(seg.file);
        }
        for sma in entry.smas {
            files.push(sma.file);
        }
    }
    Ok(files)
}

/// Extracts the `from <relation>` identifier from a `define sma`
/// statement without needing the schema (which depends on the relation).
fn relation_of(statement: &str) -> Option<String> {
    let mut words = statement.split_whitespace();
    while let Some(w) = words.next() {
        if w.eq_ignore_ascii_case("from") {
            let rel = words.next()?;
            return Some(
                rel.trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
                    .to_string(),
            );
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sma_core::{col, BucketPred, CmpOp};
    use sma_exec::AggSpec;
    use sma_types::{Column, DataType, Schema, Value};
    use std::sync::Arc;

    fn sales_table() -> Table {
        let schema = Arc::new(Schema::new(vec![
            Column::new("DAY", DataType::Int),
            Column::new("REGION", DataType::Char),
            Column::new("UNITS", DataType::Int),
            Column::new("PAD", DataType::Str),
        ]));
        let mut t = Table::in_memory("SALES", schema, 1);
        let pad = "p".repeat(1700);
        for day in 0..60i64 {
            t.append(&vec![
                Value::Int(day),
                Value::Char(b'N' + (day % 2) as u8),
                Value::Int(day * 3),
                Value::Str(pad.clone()),
            ])
            .unwrap();
        }
        t
    }

    fn sum_query(cutoff: i64) -> AggregateQuery {
        AggregateQuery {
            pred: BucketPred::cmp(0, CmpOp::Le, cutoff),
            group_by: vec![1],
            specs: vec![AggSpec::CountStar, AggSpec::Sum(col(2))],
        }
    }

    fn loaded_warehouse() -> Warehouse {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        w.define_sma("define sma min_day select min(DAY) from SALES")
            .unwrap();
        w.define_sma("define sma max_day select max(DAY) from SALES")
            .unwrap();
        w.define_sma("define sma cnt select count(*) from SALES group by REGION")
            .unwrap();
        w.define_sma("define sma units select sum(UNITS) from SALES group by REGION")
            .unwrap();
        w
    }

    #[test]
    fn end_to_end_query_uses_smas() {
        let w = loaded_warehouse();
        let with = w.query("SALES", sum_query(9)).unwrap();
        assert_eq!(with.plan_kind, PlanKind::SmaGAggr);
        // Naive warehouse (no SMAs) agrees.
        let mut naive = Warehouse::new();
        naive.register(sales_table()).unwrap();
        let without = naive.query("SALES", sum_query(9)).unwrap();
        assert_eq!(without.plan_kind, PlanKind::FullScan);
        assert_eq!(with.rows, without.rows);
        assert!(w
            .explain("SALES", sum_query(9))
            .unwrap()
            .contains("SmaGAggr"));
    }

    #[test]
    fn inserts_and_deletes_route_maintenance() {
        let mut w = loaded_warehouse();
        let before = w.query("SALES", sum_query(1000)).unwrap();
        let tid = w
            .insert(
                "SALES",
                &vec![
                    Value::Int(100),
                    Value::Char(b'N'),
                    Value::Int(999),
                    Value::Str("p".repeat(1700)),
                ],
            )
            .unwrap();
        let mid = w.query("SALES", sum_query(1000)).unwrap();
        assert_ne!(before.rows, mid.rows, "insert visible through SMA plan");
        w.delete("SALES", tid).unwrap();
        let refreshed = w.refresh_smas("SALES").unwrap();
        assert!(refreshed >= 1, "delete left a stale bucket");
        let after = w.query("SALES", sum_query(1000)).unwrap();
        assert_eq!(before.rows, after.rows);
    }

    #[test]
    fn errors_are_specific() {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        assert!(matches!(
            w.register(sales_table()),
            Err(WarehouseError::DuplicateTable(_))
        ));
        assert!(matches!(
            w.query("NOPE", sum_query(1)),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.define_sma("define sma x select min(DAY) from NOPE"),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.define_sma("not sql at all"),
            Err(WarehouseError::UnknownTable(_))
        ));
        assert!(matches!(
            w.delete("SALES", TupleId { page: 999, slot: 0 }),
            Err(WarehouseError::Table(_))
        ));
    }

    #[test]
    fn relation_extraction() {
        assert_eq!(
            relation_of("define sma x select min(A) from LINEITEM group by B"),
            Some("LINEITEM".into())
        );
        assert_eq!(
            relation_of("define sma x select min(A) FROM orders"),
            Some("orders".into())
        );
        assert_eq!(relation_of("no from-clause here"), None);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = sma_storage::test_util::scratch_path(tag);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_and_reopen_roundtrip() {
        let w = loaded_warehouse();
        let expected = w.query("SALES", sum_query(1000)).unwrap();
        let dir = scratch_dir("wh-roundtrip");
        w.save_to_dir(&dir).unwrap();

        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.tables, 1);
        assert_eq!(report.smas_intact, 4);
        assert!(report.pages_scanned > 0);
        let table = reopened.table("SALES").unwrap();
        assert_eq!(table.live_tuples(), 60, "live count restored from pages");
        let got = reopened.query("SALES", sum_query(1000)).unwrap();
        assert_eq!(got.rows, expected.rows);
        // SMA plans still engage after the restart.
        assert_eq!(
            reopened.query("SALES", sum_query(9)).unwrap().plan_kind,
            PlanKind::SmaGAggr
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_corrupt_sma() {
        let w = loaded_warehouse();
        let expected = w.query("SALES", sum_query(1000)).unwrap();
        let dir = scratch_dir("wh-rebuild");
        w.save_to_dir(&dir).unwrap();
        // Flip a payload bit in one SMA file.
        let victim = dir.join("SALES.units.sma");
        sma_storage::test_util::flip_bit_in_file(&victim, 30, 2).unwrap();

        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        assert_eq!(report.smas_rebuilt, vec!["SALES.units".to_string()]);
        assert_eq!(report.smas_intact, 3);
        assert!(report.pages_corrupt.is_empty());
        assert!(dir.join("SALES.units.sma.quarantined").exists());
        assert!(victim.exists(), "rebuilt image re-saved");
        let got = reopened.query("SALES", sum_query(1000)).unwrap();
        assert_eq!(got.rows, expected.rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_missing_sma_and_scrub_is_clean_after() {
        let w = loaded_warehouse();
        let dir = scratch_dir("wh-missing");
        w.save_to_dir(&dir).unwrap();
        std::fs::remove_file(dir.join("SALES.cnt.sma")).unwrap();
        let (mut reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        assert_eq!(report.smas_rebuilt, vec!["SALES.cnt".to_string()]);
        let report2 = reopened.scrub(&dir).unwrap();
        assert!(report2.is_clean(), "{report2}");
        assert_eq!(report2.smas_intact, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_degrades_queries_until_heal() {
        let mut w = loaded_warehouse();
        let healthy = w.query("SALES", sum_query(9)).unwrap();
        assert_eq!(healthy.plan_kind, PlanKind::SmaGAggr);
        assert!(healthy.degradation.is_empty());

        w.quarantine_sma_buckets("SALES", &[0, 2]).unwrap();
        assert_eq!(w.quarantined_sma_buckets("SALES"), vec![0, 2]);
        let degraded = w.query("SALES", sum_query(9)).unwrap();
        assert_eq!(degraded.rows, healthy.rows, "degraded answer stays exact");
        assert_eq!(degraded.degradation.quarantined_buckets, vec![0, 2]);

        let healed = w.heal("SALES").unwrap();
        assert_eq!(healed, 2);
        assert!(w.quarantined_sma_buckets("SALES").is_empty());
        let after = w.query("SALES", sum_query(9)).unwrap();
        assert_eq!(after.rows, healthy.rows);
        assert!(after.degradation.is_empty(), "{}", after.degradation);
        assert_eq!(w.heal("SALES").unwrap(), 0, "healing is idempotent");
    }

    #[test]
    fn quarantined_smas_are_never_persisted_and_rebuild_on_reopen() {
        let mut w = loaded_warehouse();
        let expected = w.query("SALES", sum_query(1000)).unwrap();
        let dir = scratch_dir("wh-quarantine-save");
        // A first healthy save leaves images on disk; the quarantined
        // re-save must remove them rather than persist garbage.
        w.save_to_dir(&dir).unwrap();
        w.quarantine_sma_buckets("SALES", &[1]).unwrap();
        w.save_to_dir(&dir).unwrap();
        for sma in ["min_day", "max_day", "cnt", "units"] {
            assert!(
                !dir.join(format!("SALES.{sma}.sma")).exists(),
                "{sma} image should have been dropped"
            );
        }
        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        assert_eq!(report.smas_rebuilt.len(), 4, "{report}");
        assert_eq!(report.buckets_quarantined, 0);
        let got = reopened.query("SALES", sum_query(1000)).unwrap();
        assert_eq!(got.rows, expected.rows);
        assert!(got.degradation.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_counts_remaining_quarantine_and_heal_clears_it() {
        let mut w = loaded_warehouse();
        let dir = scratch_dir("wh-quarantine-scrub");
        w.save_to_dir(&dir).unwrap();
        w.quarantine_sma_buckets("SALES", &[3]).unwrap();
        let report = w.scrub(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.buckets_quarantined, 1);
        assert!(report.to_string().contains("still quarantined"));
        w.heal("SALES").unwrap();
        let report = w.scrub(&dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.buckets_quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_fatal() {
        let w = loaded_warehouse();
        let dir = scratch_dir("wh-manifest");
        w.save_to_dir(&dir).unwrap();
        sma_storage::test_util::flip_bit_in_file(&dir.join(MANIFEST_FILE), 20, 0).unwrap();
        assert!(matches!(
            Warehouse::open_with_recovery(&dir),
            Err(WarehouseError::CorruptManifest(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_table_page_is_reported_not_hidden() {
        let w = loaded_warehouse();
        let dir = scratch_dir("wh-page");
        w.save_to_dir(&dir).unwrap();
        // Flip a bit in the middle of the first table page's payload.
        sma_storage::test_util::flip_bit_in_file(&dir.join("SALES.tbl"), 1000, 5).unwrap();
        let (reopened, report) = Warehouse::open_with_recovery(&dir).unwrap();
        assert_eq!(report.pages_corrupt, vec![("SALES".to_string(), 0)]);
        // The damaged page keeps failing loudly on direct access — the
        // checksum turns silent wrong answers into explicit errors. (SMA
        // plans that never touch the page still work: that redundancy is
        // the paper's point.)
        assert!(reopened.table("SALES").unwrap().scan().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn case_insensitive_relation_lookup() {
        let mut w = Warehouse::new();
        w.register(sales_table()).unwrap();
        // Statement says "sales", table is "SALES".
        assert!(w
            .define_sma("define sma m select min(DAY) from sales")
            .is_ok());
    }
}
