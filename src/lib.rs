//! `smadb` — a reproduction of *Small Materialized Aggregates: A Light
//! Weight Index Structure for Data Warehousing* (G. Moerkotte, VLDB 1998).
//!
//! This umbrella crate re-exports the workspace crates so examples and
//! downstream users can depend on a single name:
//!
//! * [`types`] — dates, decimals, values, schemas, row codec,
//! * [`storage`] — slotted pages, heap files, buckets, buffer pool,
//! * [`tpcd`] — TPC-D generator with clustering models,
//! * [`sma`] — the paper's contribution: SMA files, build/maintain, grading,
//! * [`exec`] — physical operators (`SmaScan`, `SmaGAggr`) and planner,
//! * [`cube`] — the comparators (materialized data cube, B+ tree).
//!
//! The umbrella crate itself contributes the durability layer:
//! [`warehouse`] (named tables + SMAs + crash-safe persistence),
//! [`ingest`] (WAL + memtable streaming ingest with group commit and
//! crash-recoverable incremental flush), and [`compact`] (background
//! segment compaction with hierarchical-SMA rebuild).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use smadb::tpcd::{GenConfig, Clustering, generate_lineitem_table};
//! use smadb::sma::{SmaDefinition, AggFn, SmaSet};
//! use smadb::exec::{run_query1, Query1Config};
//!
//! let table = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
//! let smas = SmaSet::build_query1_set(&table).unwrap();
//! let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
//! let without = run_query1(&table, None, &Query1Config::default()).unwrap();
//! assert_eq!(with.rows, without.rows);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compact;
pub mod ingest;
pub mod warehouse;

pub use compact::{CompactStage, CompactionPolicy, CompactionReport};
pub use ingest::{
    CommitPolicy, FlushStage, IngestError, IngestRecoveryReport, StreamingWarehouse, WAL_FILE,
};
pub use sma_core as sma;
pub use sma_cube as cube;
pub use sma_exec as exec;
pub use sma_storage as storage;
pub use sma_tpcd as tpcd;
pub use sma_types as types;
pub use warehouse::{
    CommitMeta, QueryResult, RecoveryReport, Warehouse, WarehouseError, MANIFEST_FILE,
};
