//! Background segment compaction for the streaming warehouse.
//!
//! Incremental flushes (see [`crate::ingest`]) keep appending small delta
//! segments; left alone, a table's committed segment list grows without
//! bound and every reopen pays one file open per segment. Compaction is
//! the merge half of that LSM-shaped bargain: rewrite each table as a
//! single full segment, refresh its SMAs, rebuild the hierarchical
//! min/max summaries on top of them, and commit the new generation —
//! manifest-last, exactly like a flush.
//!
//! The rewrite runs one worker thread per table via [`std::thread::scope`]
//! (the same discipline as `sma_exec::parallel`: spawn, join, merge in
//! deterministic order, map panics to errors). Compaction never touches
//! the WAL: it advances the catalog epoch but leaves the watermark and the
//! WAL epoch alone, so records acknowledged after the compaction replay
//! fine if the process dies — the crash-sweep tests cover every
//! [`CompactStage`] prefix.
//!
//! [`CompactionPolicy`] makes it "background" in the operational sense:
//! after every successful flush, [`StreamingWarehouse::flush`] compares
//! the largest per-table segment count against the policy threshold and
//! triggers a compaction when it is exceeded, so callers never schedule
//! one by hand.

use std::fmt;
use std::io;
use std::path::Path;

use crate::ingest::{FlushStage, IngestError, StreamingWarehouse};
use crate::warehouse::{commit_manifest, CommitMeta, SegmentLists, SegmentMeta, WarehouseError};
use sma_core::HierarchicalMinMax;
use sma_storage::{FileStore, PageStore, Table};

/// Fan-out of the hierarchical min/max summaries rebuilt after a
/// compaction (§4.2 of the paper discusses the trade-off; 16 keeps the
/// upper levels tiny while still skipping 16× the buckets per probe).
const HIERARCHY_FANOUT: u32 = 16;

/// The stages of the compaction protocol, in order — the crash-injection
/// seam, mirroring [`FlushStage`]:
/// [`StreamingWarehouse::compact_until`] runs the protocol up to and
/// including the named stage and stops, so tests can drop the warehouse
/// at every prefix and assert recovery restores the committed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompactStage {
    /// Every table rewritten as a single fresh `.e{epoch}` segment (plus
    /// that generation's SMA images). The manifest still names the old
    /// segment lists.
    SegmentsWritten,
    /// Manifest atomically replaced — **the commit point**. The merged
    /// segments are live; the superseded delta files are still on disk.
    Committed,
    /// Superseded segment files deleted and hierarchical SMAs rebuilt. A
    /// full [`StreamingWarehouse::compact`].
    Complete,
}

/// When automatic compaction fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionPolicy {
    /// Compact once any table's committed segment count exceeds this.
    /// `0` (the default) disables automatic compaction.
    pub max_segments: usize,
}

/// What a compaction did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// The generation the merged segments were committed under.
    pub epoch: u64,
    /// Tables rewritten (every registered table, merged or not).
    pub tables: usize,
    /// Total committed segments across tables before the merge.
    pub segments_before: usize,
    /// Total committed segments after (one per table).
    pub segments_after: usize,
    /// Hierarchical min/max summaries rebuilt over the refreshed SMAs.
    pub hierarchies_rebuilt: usize,
}

impl fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {}: {} table(s), {} -> {} segment(s), {} hierarchy(ies) rebuilt",
            self.epoch,
            self.tables,
            self.segments_before,
            self.segments_after,
            self.hierarchies_rebuilt
        )
    }
}

/// Fully exports `table` into a fresh single segment file `{name}{suffix}.tbl`
/// in `dir` (write-temp → rename; the source store is never written).
fn export_merged_segment(
    dir: &Path,
    name: &str,
    table: &Table,
    suffix: &str,
) -> Result<SegmentMeta, IngestError> {
    let file = format!("{name}{suffix}.tbl");
    let tmp = dir.join(format!("{file}.tmp"));
    let mut store = FileStore::create(&tmp).map_err(WarehouseError::from)?;
    table
        .export_to_store(&mut store)
        .map_err(WarehouseError::from)?;
    drop(store);
    std::fs::rename(&tmp, dir.join(&file))?;
    Ok(SegmentMeta {
        file,
        start: 0,
        pages: table.page_count(),
    })
}

impl<S: PageStore> StreamingWarehouse<S> {
    /// Merges every table's segment list into a single fresh segment and
    /// commits the result. Equivalent to
    /// `compact_until(CompactStage::Complete)`.
    pub fn compact(&mut self) -> Result<CompactionReport, IngestError> {
        self.compact_until(CompactStage::Complete)
    }

    /// Runs the compaction protocol up to and including `stage`, then
    /// stops — the crash seam (see [`CompactStage`]).
    ///
    /// The protocol first runs a full flush: compacting while rows sit
    /// applied-but-uncommitted would bake tuples above the committed
    /// watermark into the merged segments, and a crash would then replay
    /// them on top — a duplicate. After the flush the memtable is empty
    /// and every acknowledged row is either sealed or safely in the WAL.
    pub fn compact_until(&mut self, stage: CompactStage) -> Result<CompactionReport, IngestError> {
        self.flush_until(FlushStage::Complete)?;
        let names: Vec<String> = self.warehouse.table_names().map(str::to_string).collect();
        let mut report = CompactionReport {
            tables: names.len(),
            segments_before: names.iter().map(|n| self.warehouse.segment_count(n)).sum(),
            ..CompactionReport::default()
        };
        // Re-tighten any loose SMA bounds first: the images persisted
        // below are this generation's authoritative copies.
        for name in &names {
            self.warehouse.refresh_smas(name)?;
        }
        // Under the columnar policy, compaction is the catch-all
        // conversion point: it rewrites every table wholesale, so convert
        // every eligible sealed bucket (not just the ones above the last
        // flush watermark). The exports below then persist chunk pages,
        // and recovery reclassifies them from the page markers.
        if self.columnar {
            for name in &names {
                if let Some(table) = self.warehouse.table_mut(name) {
                    table
                        .convert_buckets_from(0)
                        .map_err(WarehouseError::from)?;
                }
            }
        }
        // A compaction generation: catalog epoch advances (fresh file
        // names, fresh SMA images), watermark and WAL epoch do not — the
        // log is not truncated and its records must keep replaying.
        let epoch = self.warehouse.begin_compaction_generation();
        report.epoch = epoch;
        let suffix = format!(".e{epoch}");
        let dir = self.dir.clone();
        // One worker per table, scoped: tables are disjoint and exports
        // only read their source, so this is embarrassingly parallel.
        // Join in name order and map panics to errors, same as the
        // bucket-parallel operators.
        let exported: Vec<Result<SegmentMeta, IngestError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = names
                .iter()
                .filter_map(|name| self.warehouse.table(name).map(|t| (name, t)))
                .map(|(name, table)| {
                    let dir = dir.as_path();
                    let suffix = suffix.as_str();
                    scope.spawn(move || export_merged_segment(dir, name, table, suffix))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // sma-lint: allow(A3-error-swallowing) -- join's payload is Box<dyn Any>, not an error; it is converted to a typed error here
                    Err(_) => Err(IngestError::Io(io::Error::other(
                        "compaction worker panicked",
                    ))),
                })
                .collect()
        });
        let mut lists = SegmentLists::new();
        for (name, seg) in names.iter().zip(exported) {
            lists.insert(name.clone(), vec![seg?]);
        }
        let meta = CommitMeta {
            epoch,
            watermark: self.warehouse.watermark(),
            wal_epoch: self.warehouse.wal_epoch(),
        };
        let manifest = self
            .warehouse
            .encode_generation(&dir, meta, &suffix, &lists)?;
        report.segments_after = lists.values().map(Vec::len).sum();
        if stage == CompactStage::SegmentsWritten {
            return Ok(report);
        }
        // The commit point: the merged generation becomes the one
        // recovery loads. Everything before this line only added files.
        commit_manifest(&dir, &manifest)?;
        self.warehouse.install_segments(lists);
        if stage == CompactStage::Committed {
            return Ok(report);
        }
        // Post-commit: rebuild the hierarchical min/max summaries over
        // the refreshed flat SMAs, then delete the superseded segments.
        report.hierarchies_rebuilt = self.rebuild_hierarchies();
        crate::ingest::remove_unreferenced(&dir)?;
        Ok(report)
    }

    /// Rebuilds the hierarchical min/max summaries from every min/max SMA
    /// pair over the same column, replacing the previous set. Returns how
    /// many were (re)built.
    fn rebuild_hierarchies(&mut self) -> usize {
        self.hierarchies.clear();
        let names: Vec<String> = self.warehouse.table_names().map(str::to_string).collect();
        for name in &names {
            let Some(set) = self.warehouse.smas(name) else {
                continue;
            };
            for min_sma in set.smas() {
                for max_sma in set.smas() {
                    if let Some(h) =
                        HierarchicalMinMax::from_smas(min_sma, max_sma, HIERARCHY_FANOUT)
                    {
                        let key = format!("{name}:{}/{}", min_sma.def().name, max_sma.def().name);
                        self.hierarchies.insert(key, h);
                    }
                }
            }
        }
        self.hierarchies.len()
    }

    /// Triggers a compaction when the policy threshold is exceeded —
    /// called by [`StreamingWarehouse::flush`] after a successful flush.
    pub(crate) fn maybe_compact(&mut self) -> Result<(), IngestError> {
        if self.compaction.max_segments == 0
            || self.warehouse.max_segment_count() <= self.compaction.max_segments
        {
            return Ok(());
        }
        self.compact().map(|_| ())
    }

    /// The automatic-compaction policy in force.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replaces the automatic-compaction policy.
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// The hierarchical min/max summary rebuilt by the last compaction
    /// for `relation`'s SMA pair `min_name`/`max_name`, if any.
    pub fn hierarchy(
        &self,
        relation: &str,
        min_name: &str,
        max_name: &str,
    ) -> Option<&HierarchicalMinMax> {
        self.hierarchies
            .get(&format!("{relation}:{min_name}/{max_name}"))
    }

    /// Number of hierarchical min/max summaries currently held (rebuilt
    /// by the last compaction).
    pub fn hierarchy_count(&self) -> usize {
        self.hierarchies.len()
    }
}
