//! Quickstart: define, build, and use SMAs on a small table.
//!
//! Reproduces the Fig. 1 / §2.2 walk-through of the paper: three buckets
//! of ship dates, min/max/count SMA-files, and the query
//! `select count(*) from LINEITEM where L_SHIPDATE < 97-04-30` answered by
//! reading only the one ambivalent bucket.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use smadb::exec::{collect, AggSpec, SmaGAggr};
use smadb::sma::{col, AggFn, BucketPred, CmpOp, Grade, SmaDefinition, SmaSet};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Date, Schema, Value};

fn main() {
    // --- A relation physically organized into buckets (Fig. 1) ----------
    let schema = Arc::new(Schema::new(vec![
        Column::new("L_SHIPDATE", DataType::Date),
        Column::new("PAD", DataType::Str),
    ]));
    let mut lineitem = Table::in_memory("LINEITEM", schema, 1);
    let dates = [
        "1997-03-11",
        "1997-04-22",
        "1997-02-02", // bucket 1
        "1997-04-01",
        "1997-05-07",
        "1997-04-28", // bucket 2
        "1997-05-02",
        "1997-05-20",
        "1997-06-03", // bucket 3
    ];
    let pad = "x".repeat(1200); // 3 tuples per 4 KiB page
    for d in dates {
        lineitem
            .append(&vec![
                Value::Date(Date::parse(d).unwrap()),
                Value::Str(pad.clone()),
            ])
            .unwrap();
    }
    println!(
        "LINEITEM: {} tuples in {} buckets of {} page(s)",
        lineitem.live_tuples(),
        lineitem.bucket_count(),
        lineitem.bucket_pages()
    );

    // --- define sma min / max / count (§2.1) ----------------------------
    let smas = SmaSet::build(
        &lineitem,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
            SmaDefinition::count("count"),
        ],
    )
    .unwrap();
    for sma in smas.smas() {
        println!("{}", sma.def());
        for (_, file) in sma.groups() {
            println!("  SMA-file: {:?}", file.entries());
        }
    }

    // --- grade the buckets for L_SHIPDATE < 1997-04-30 (§2.2) -----------
    let pred = BucketPred::cmp(
        0,
        CmpOp::Lt,
        Value::Date(Date::parse("1997-04-30").unwrap()),
    );
    println!("\npredicate: L_SHIPDATE < 1997-04-30");
    for b in 0..lineitem.bucket_count() {
        let grade = pred.grade(b, &smas);
        println!("  bucket {b}: {grade:?}");
        match b {
            0 => assert_eq!(grade, Grade::Qualifies),
            1 => assert_eq!(grade, Grade::Ambivalent),
            _ => assert_eq!(grade, Grade::Disqualifies),
        }
    }

    // --- answer count(*) reading only the ambivalent bucket -------------
    lineitem.reset_io_stats();
    let mut op = SmaGAggr::new(&lineitem, pred, vec![], vec![AggSpec::CountStar], &smas).unwrap();
    let rows = collect(&mut op).unwrap();
    println!("\ncount(*) where shipdate < 97-04-30  =  {}", rows[0][0]);
    println!(
        "data pages read: {} of {} (only the ambivalent bucket)",
        lineitem.io_stats().logical_reads,
        lineitem.page_count()
    );
    assert_eq!(rows[0][0], Value::Int(5)); // 3 from bucket 1 + 2 from bucket 2
    assert_eq!(lineitem.io_stats().logical_reads, 1);
}
