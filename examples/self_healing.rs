//! Self-healing execution: transient-I/O retry, degrade-to-scan, heal.
//!
//! SMAs are redundant derived data, so no SMA-side fault has to fail a
//! query — the worst it can cost is the fast path. This walks the three
//! resilience layers end to end: (1) a seeded `FaultPlan` device throwing
//! transient read faults the buffer pool retries through, (2) quarantined
//! SMA buckets demoted to base-table scans with the damage itemized in a
//! `DegradationReport`, and (3) `Warehouse::heal` rebuilding exactly the
//! damaged entries, verified by a scrub.
//!
//! Run with: `cargo run --release --example self_healing`

use smadb::exec::{run_query1, PlanKind, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::test_util::scratch_path;
use smadb::storage::{FaultConfig, FaultPlan, MemStore, RetryPolicy, Table};
use smadb::tpcd::{generate_lineitem_table, lineitem_schema, Clustering, GenConfig};
use smadb::Warehouse;

fn main() {
    let clean = generate_lineitem_table(&GenConfig::tiny(Clustering::SortedByShipdate));
    let baseline = run_query1(&clean, None, &Query1Config::default()).expect("baseline");

    // 1. A flaky device: 40% of pages fail their first 1-3 reads with a
    // transient error. The pool's retry policy rides every burst out.
    let mut dest = MemStore::new();
    clean.export_to_store(&mut dest).expect("export");
    let faulty = Table::new(
        "LINEITEM",
        lineitem_schema(),
        Box::new(FaultPlan::new(
            dest,
            FaultConfig::seeded(42).with_transient(40, 3),
        )),
        2048,
        clean.bucket_pages(),
    );
    faulty.set_retry_policy(RetryPolicy {
        max_retries: 3,
        base_backoff_us: 0,
        ..RetryPolicy::default()
    });
    let run = run_query1(&faulty, None, &Query1Config::default()).expect("survives faults");
    assert_eq!(run.rows, baseline.rows);
    println!(
        "flaky device: {} transient faults absorbed by retries, {} given up, answer exact",
        run.io.retried_reads, run.io.gaveup_reads
    );

    // 2. Damaged SMA entries: quarantined buckets lose their fast path but
    // never the answer.
    let mut smas = SmaSet::build_query1_set(&clean).expect("build");
    for b in [0, 7, 19] {
        smas.quarantine_bucket(b);
    }
    let degraded = run_query1(&clean, Some(&smas), &Query1Config::default()).expect("degrades");
    assert_eq!(degraded.rows, baseline.rows);
    assert_ne!(degraded.plan_kind, PlanKind::FullScan);
    println!(
        "damaged SMAs: plan {:?}, {}",
        degraded.plan_kind, degraded.degradation
    );

    // 3. Healing: the warehouse rebuilds exactly the quarantined buckets
    // and a scrub confirms nothing is left degraded.
    let mut w = Warehouse::new();
    w.register(generate_lineitem_table(&GenConfig::tiny(
        Clustering::SortedByShipdate,
    )))
    .expect("register");
    w.define_sma("define sma min_ship select min(L_SHIPDATE) from LINEITEM")
        .expect("ddl");
    w.define_sma("define sma max_ship select max(L_SHIPDATE) from LINEITEM")
        .expect("ddl");
    let dir = scratch_path("self-healing");
    std::fs::create_dir_all(&dir).expect("mkdir");
    w.save_to_dir(&dir).expect("save");
    w.quarantine_sma_buckets("LINEITEM", &[3, 11])
        .expect("mark");
    let report = w.scrub(&dir).expect("scrub");
    println!("after damage : {report}");
    let healed = w.heal("LINEITEM").expect("heal");
    let report = w.scrub(&dir).expect("scrub");
    println!("after heal({healed}): {report}");
    assert!(report.is_clean());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
