//! Join SMAs: semi-join input reduction — the §4 generalization.
//!
//! `select L.* from LINEITEM L, ORDERS O where L.L_SHIPDATE >= O.O_ORDERDATE`
//! -style patterns reduce, under existential semantics, to comparing each
//! LINEITEM bucket's min/max against ORDERS' global minimax. This example
//! runs a narrower, clearer instance on integer keys and reports how many
//! R-buckets the reduction skips versus the naive semi-join.
//!
//! Run with: `cargo run --release --example semijoin_reduction`

use std::sync::Arc;

use smadb::exec::{collect, SemiJoin};
use smadb::sma::{col, AggFn, CmpOp, SmaDefinition, SmaSet};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, Value};

fn int_table(name: &str, values: impl Iterator<Item = i64>) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory(name, schema, 1);
    let pad = "p".repeat(1800);
    for v in values {
        t.append(&vec![Value::Int(v), Value::Str(pad.clone())])
            .unwrap();
    }
    t
}

fn main() {
    // R: 10 000 sorted keys. S: a narrow band near the top of R's domain.
    let r = int_table("R", 0..10_000);
    let s = int_table("S", 9_500..9_600);
    let smas = SmaSet::build(
        &r,
        vec![
            SmaDefinition::new("min", AggFn::Min, col(0)),
            SmaDefinition::new("max", AggFn::Max, col(0)),
        ],
    )
    .unwrap();

    for theta in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Eq] {
        // Naive: every R bucket read and tested.
        r.make_cold().unwrap();
        r.reset_io_stats();
        let mut naive = SemiJoin::new(&r, 0, theta, &s, 0, None);
        let naive_rows = collect(&mut naive).unwrap();
        let naive_io = r.io_stats().logical_reads;

        // SMA-reduced: disqualified buckets skipped.
        r.make_cold().unwrap();
        r.reset_io_stats();
        let mut reduced = SemiJoin::new(&r, 0, theta, &s, 0, Some(&smas));
        let reduced_rows = collect(&mut reduced).unwrap();
        let reduced_io = r.io_stats().logical_reads;

        assert_eq!(naive_rows.len(), reduced_rows.len(), "same answer");
        let c = reduced.counters();
        println!(
            "R.K {:?} S.K : |result|={:<6} naive reads={:<6} reduced reads={:<6} \
             (skipped {} of {} buckets)",
            theta,
            reduced_rows.len(),
            naive_io,
            reduced_io,
            c.disqualified,
            c.total(),
        );
    }
    println!("\nreading: for `R.A > S.B` only buckets above min(S.B) survive; the");
    println!("minimax of S acts exactly like a constant predicate on R — the paper's");
    println!("\"decrease the input to the semi-join\".");
}
