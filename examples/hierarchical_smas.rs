//! Hierarchical (two-level) SMAs — the §4 tuning measure.
//!
//! Builds min/max SMAs over a sorted integer table, stacks a level-2 SMA
//! on top, and sweeps the predicate selectivity to show how many level-1
//! entries the second level lets us skip.
//!
//! Run with: `cargo run --release --example hierarchical_smas`

use std::sync::Arc;

use smadb::sma::{col, AggFn, BucketPred, CmpOp, HierarchicalMinMax, Sma, SmaDefinition};
use smadb::storage::Table;
use smadb::types::{Column, DataType, Schema, Value};

fn main() {
    // A sorted fact table: 4096 tuples, 2 per page, 2048 buckets.
    let schema = Arc::new(Schema::new(vec![
        Column::new("K", DataType::Int),
        Column::new("PAD", DataType::Str),
    ]));
    let mut t = Table::in_memory("FACTS", schema, 1);
    let pad = "p".repeat(1800);
    let n = 4096i64;
    for k in 0..n {
        t.append(&vec![Value::Int(k), Value::Str(pad.clone())])
            .unwrap();
    }
    let min = Sma::build(&t, SmaDefinition::new("min", AggFn::Min, col(0))).unwrap();
    let max = Sma::build(&t, SmaDefinition::new("max", AggFn::Max, col(0))).unwrap();
    println!(
        "table: {} buckets; level-1 SMA entries: {}",
        t.bucket_count(),
        min.n_buckets()
    );

    for fanout in [8u32, 32, 128] {
        let h = HierarchicalMinMax::from_smas(&min, &max, fanout).expect("well-formed inputs");
        println!("\nfanout {fanout}: {} level-2 entries", h.l2_len());
        println!(
            "  {:>12} {:>14} {:>14} {:>10}",
            "selectivity", "l1 inspected", "l1 skipped", "saving"
        );
        for sel_pct in [1u32, 5, 25, 50, 95, 99] {
            let cutoff = (n * sel_pct as i64) / 100;
            let pred = BucketPred::cmp(0, CmpOp::Le, cutoff);
            let p = h.prune(&pred);
            println!(
                "  {:>11}% {:>14} {:>14} {:>9.1}%",
                sel_pct,
                p.l1_inspected,
                p.l1_skipped,
                100.0 * p.l1_skipped as f64 / (p.l1_inspected + p.l1_skipped) as f64
            );
        }
    }
    println!("\nreading: on clustered data almost every level-2 entry resolves its whole");
    println!("super-bucket, so the level-1 SMA-file is barely touched — the I/O saving");
    println!("the paper predicts for \"rather high and rather low selectivities\".");
}
