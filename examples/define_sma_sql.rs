//! The paper's declarative front end: `define sma` statements (§2.1/§2.3)
//! parsed, built and registered in a catalog, then used by the planner.
//!
//! Run with: `cargo run --release --example define_sma_sql`

use smadb::exec::{plan, query1_query, PlannerConfig};
use smadb::sma::SmaCatalog;
use smadb::tpcd::{generate_lineitem_table, Clustering, GenConfig};

fn main() {
    let table = generate_lineitem_table(&GenConfig {
        orders: 2000,
        ..GenConfig::tiny(Clustering::SortedByShipdate)
    });
    let mut catalog = SmaCatalog::new();

    // The eight statements of Fig. 4, verbatim in the paper's syntax
    // (modulo the full TPC-D column names).
    let statements = [
        "define sma max select max(L_SHIPDATE) from LINEITEM",
        "define sma min select min(L_SHIPDATE) from LINEITEM",
        "define sma count select count(*) from LINEITEM \
         group by L_RETURNFLAG, L_LINESTATUS",
        "define sma qty select sum(L_QUANTITY) from LINEITEM \
         group by L_RETURNFLAG, L_LINESTATUS",
        "define sma dis select sum(L_DISCOUNT) from LINEITEM \
         group by L_RETURNFLAG, L_LINESTATUS",
        "define sma ext select sum(L_EXTENDEDPRICE) from LINEITEM \
         group by L_RETURNFLAG, L_LINESTATUS",
        "define sma extdis select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) \
         from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
        "define sma extdistax \
         select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)) \
         from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
    ];
    for stmt in statements {
        let sma = catalog.execute_define(stmt, &table).unwrap();
        println!(
            "built {:<10} -> {} file(s), {} page(s)",
            sma.def().name,
            sma.file_count(),
            sma.total_pages()
        );
    }
    let smas = catalog.set_for("LINEITEM").unwrap();
    println!(
        "\ncatalog: {} SMA-files, {} pages total (paper counts 26 files for Query 1)",
        smas.file_count(),
        smas.total_pages()
    );
    assert_eq!(smas.file_count(), 26);

    // The planner picks them up like any other SMA set.
    let query = query1_query(&table, smadb::exec::cutoff(90)).unwrap();
    let chosen = plan(&table, query, Some(smas), &PlannerConfig::default());
    println!("\n{}", chosen.explain());
    let rows = chosen.execute().unwrap();
    println!("Query 1 groups: {}", rows.len());

    // Rejected statements carry the paper's own restrictions as errors.
    for bad in [
        "define sma x select avg(L_TAX) from LINEITEM",
        "define sma x select min(L_SHIPDATE) from LINEITEM, ORDERS",
        "define sma x select min(L_SHIPDATE) from LINEITEM order by L_SHIPDATE",
    ] {
        let err = catalog.execute_define(bad, &table).unwrap_err();
        println!("rejected: {bad}\n      --> {err}");
    }
}
