//! Warehouse life-cycle: nightly loads, deletes, staleness, refresh.
//!
//! The paper's §2.1 claims — "cheap to maintain" and "amenable to
//! bulkloading" — demonstrated over a running warehouse: an initial
//! bulkload, three nightly append batches routed through the catalog,
//! a correction batch (deletes) that leaves min/max bounds loose-but-sound,
//! and a refresh pass that re-tightens them.
//!
//! Run with: `cargo run --release --example warehouse_maintenance`

use std::time::Instant;

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::MemStore;
use smadb::tpcd::{generate, load_lineitem, q1_cutoff, Clustering, GenConfig};

fn main() {
    // Day 0: the initial bulkload.
    let cfg = GenConfig {
        orders: 3000,
        clustering: Clustering::SortedByShipdate,
        seed: 1,
        bucket_pages: 1,
        pool_pages: 1 << 16,
    };
    let (_, items) = generate(&cfg);
    let (history, nightly) = items.split_at(items.len() * 7 / 10);
    let mut table = load_lineitem(history, Box::new(MemStore::new()), 1, 1 << 16);
    let started = Instant::now();
    let mut smas = SmaSet::build_query1_set(&table).unwrap();
    println!(
        "day 0: bulkloaded {} SMA-files over {} tuples in {:.2?}",
        smas.file_count(),
        table.live_tuples(),
        started.elapsed()
    );

    // Days 1–3: append batches, routing each tuple into the SMAs (O(1) per
    // tuple — no rebuild).
    for (day, batch) in nightly.chunks(nightly.len() / 3 + 1).enumerate() {
        let started = Instant::now();
        for item in batch {
            let tuple = item.to_tuple();
            let tid = table.append(&tuple).unwrap();
            smas.note_insert(table.bucket_of_page(tid.page), &tuple)
                .unwrap();
        }
        println!(
            "day {}: appended {} tuples, SMA maintenance included, in {:.2?}",
            day + 1,
            batch.len(),
            started.elapsed()
        );
        // The maintained SMAs answer exactly.
        let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
        let without = run_query1(&table, None, &Query1Config::default()).unwrap();
        assert_eq!(with.rows, without.rows, "maintained SMAs stay exact");
    }

    // A correction: delete the last 50 tuples (a bad batch).
    let all = table.scan().unwrap();
    let victims = &all[all.len() - 50..];
    for (tid, tuple) in victims {
        table.delete(*tid).unwrap();
        smas.note_delete(table.bucket_of_page(tid.page), tuple)
            .unwrap();
    }
    let stale: Vec<u32> = (0..table.bucket_count())
        .filter(|&b| smas.smas().iter().any(|s| s.is_stale(b)))
        .collect();
    println!(
        "correction: deleted 50 tuples; {} bucket(s) now carry loose (but sound) min/max bounds",
        stale.len()
    );
    let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    let without = run_query1(&table, None, &Query1Config::default()).unwrap();
    assert_eq!(with.rows, without.rows, "loose bounds never change answers");

    // Refresh: one bucket read each, bounds tight again.
    let started = Instant::now();
    for b in &stale {
        smas.refresh_bucket(&table, *b).unwrap();
    }
    println!(
        "refresh: re-tightened {} bucket(s) in {:.2?} (one bucket read each — \
         the paper's 'at most one additional page access')",
        stale.len(),
        started.elapsed()
    );
    assert!((0..table.bucket_count()).all(|b| smas.smas().iter().all(|s| !s.is_stale(b))));

    // Compare with the sledgehammer.
    let started = Instant::now();
    let rebuilt = SmaSet::build_query1_set(&table).unwrap();
    println!(
        "(for reference, a full rebuild takes {:.2?})",
        started.elapsed()
    );
    let a = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    let b = run_query1(&table, Some(&rebuilt), &Query1Config::default()).unwrap();
    assert_eq!(a.rows, b.rows);
    println!(
        "maintained set ≡ rebuilt set on Query 1 (cutoff {})",
        q1_cutoff(90)
    );
}
