//! How clustering quality decides whether SMAs pay — the physics behind
//! Fig. 5.
//!
//! Generates LINEITEM under four physical orders (sorted, diagonal with
//! two lag spreads, shuffled), grades the Query 1 predicate, and shows the
//! ambivalent-bucket fraction, the plan the optimizer picks, and the pages
//! actually read.
//!
//! Run with: `cargo run --release --example clustering_sweep`

use smadb::exec::{run_query1, Query1Config};
use smadb::sma::SmaSet;
use smadb::tpcd::{generate_lineitem_table, Clustering, GenConfig};

fn main() {
    let regimes: Vec<(&str, Clustering)> = vec![
        ("sorted on shipdate", Clustering::SortedByShipdate),
        (
            "diagonal (lag 14d +/- 4d)",
            Clustering::Diagonal {
                mean_lag_days: 14.0,
                std_dev_days: 4.0,
            },
        ),
        (
            "diagonal (lag 14d +/- 45d)",
            Clustering::Diagonal {
                mean_lag_days: 14.0,
                std_dev_days: 45.0,
            },
        ),
        ("dbgen order (uniform)", Clustering::Uniform),
        ("shuffled", Clustering::Shuffled),
    ];

    println!(
        "{:<28} {:>9} {:>9} {:>13} {:>11} {:>9}",
        "clustering", "skipped%", "ambiv%", "plan", "pages read", "elapsed"
    );
    for (name, clustering) in regimes {
        let cfg = GenConfig {
            orders: 4000,
            clustering,
            seed: 42,
            bucket_pages: 1,
            pool_pages: 1 << 16,
        };
        let table = generate_lineitem_table(&cfg);
        let smas = SmaSet::build_query1_set(&table).unwrap();
        let run = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
        // Re-derive the grading fractions the planner saw.
        let query = smadb::exec::query1_query(&table, smadb::exec::cutoff(90)).unwrap();
        let plan = smadb::exec::plan(
            &table,
            query,
            Some(&smas),
            &smadb::exec::PlannerConfig::default(),
        );
        let est = plan.estimate.unwrap();
        println!(
            "{:<28} {:>8.1}% {:>8.1}% {:>13} {:>11} {:>9.2?}",
            name,
            est.skipped_fraction * 100.0,
            est.ambivalent_fraction * 100.0,
            format!("{:?}", run.plan_kind),
            run.io.logical_reads,
            run.elapsed,
        );
    }
    println!("\nreading: with good clustering nearly every bucket resolves from the SMAs");
    println!("and the SmaGAggr plan touches almost no data pages; as clustering decays,");
    println!("ambivalence rises and the optimizer falls back to the sequential scan —");
    println!("the breakeven of the paper's Figure 5.");
}
