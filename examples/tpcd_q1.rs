//! The paper's headline experiment: TPC-D Query 1 with and without SMAs.
//!
//! Generates a shipdate-sorted LINEITEM (the paper's "optimal case"),
//! builds the eight Fig. 4 SMAs, and runs Query 1 both ways, reporting
//! the answer, the plan, the I/O, and the space overhead.
//!
//! Run with: `cargo run --release --example tpcd_q1` — set `SMA_SF` to
//! scale (default 0.005 ≈ 30 k line items; the paper used SF 1 = 6 M).

use std::time::Instant;

use smadb::exec::{run_query1, PlanKind, Query1Config};
use smadb::sma::SmaSet;
use smadb::storage::PAGE_SIZE;
use smadb::tpcd::{format_q1, generate_lineitem_table, Clustering, GenConfig, Q1Row};
use smadb::types::Value;

fn main() {
    let sf: f64 = std::env::var("SMA_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    println!("generating LINEITEM at SF {sf} (sorted by L_SHIPDATE)…");
    let cfg = GenConfig::scale_factor(sf, Clustering::SortedByShipdate);
    let table = generate_lineitem_table(&cfg);
    println!(
        "  {} tuples, {} pages ({:.1} MB), {} buckets",
        table.live_tuples(),
        table.page_count(),
        (table.page_count() as usize * PAGE_SIZE) as f64 / (1024.0 * 1024.0),
        table.bucket_count()
    );

    println!("\nbuilding the 8 SMAs of Fig. 4…");
    let started = Instant::now();
    let smas = SmaSet::build_query1_set(&table).unwrap();
    let build_time = started.elapsed();
    println!(
        "  built {} SMA-files in {:.2?}; total {} pages = {:.2} MB ({:.2}% of the relation)",
        smas.file_count(),
        build_time,
        smas.total_pages(),
        (smas.total_pages() * PAGE_SIZE) as f64 / (1024.0 * 1024.0),
        100.0 * smas.total_pages() as f64 / table.page_count() as f64,
    );

    println!("\nQuery 1 (delta = 90):");
    let without = run_query1(&table, None, &Query1Config::default()).unwrap();
    println!(
        "  without SMAs: plan={:?}  elapsed={:.2?}  pages read={}",
        without.plan_kind, without.elapsed, without.io.logical_reads
    );
    let with = run_query1(&table, Some(&smas), &Query1Config::default()).unwrap();
    println!(
        "  with    SMAs: plan={:?}  elapsed={:.2?}  pages read={}",
        with.plan_kind, with.elapsed, with.io.logical_reads
    );
    assert_eq!(with.plan_kind, PlanKind::SmaGAggr);
    assert_eq!(with.rows, without.rows, "SMA plan must be exact");
    let speedup = without.elapsed.as_secs_f64() / with.elapsed.as_secs_f64().max(1e-9);
    println!("  speedup: {speedup:.0}x (paper: two orders of magnitude on disk)");

    let rows: Vec<Q1Row> = with
        .rows
        .iter()
        .map(|r| Q1Row {
            returnflag: char_of(&r[0]),
            linestatus: char_of(&r[1]),
            sum_qty: r[2].as_decimal().unwrap(),
            sum_base_price: r[3].as_decimal().unwrap(),
            sum_disc_price: r[4].as_decimal().unwrap(),
            sum_charge: r[5].as_decimal().unwrap(),
            avg_qty: r[6].as_decimal().unwrap(),
            avg_price: r[7].as_decimal().unwrap(),
            avg_disc: r[8].as_decimal().unwrap(),
            count_order: r[9].as_int().unwrap(),
        })
        .collect();
    println!("\n{}", format_q1(&rows));
}

fn char_of(v: &Value) -> u8 {
    v.as_char().expect("flag column")
}
