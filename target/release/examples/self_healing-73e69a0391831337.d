/root/repo/target/release/examples/self_healing-73e69a0391831337.d: examples/self_healing.rs

/root/repo/target/release/examples/self_healing-73e69a0391831337: examples/self_healing.rs

examples/self_healing.rs:
