/root/repo/target/release/examples/warehouse_maintenance-0eb174b83723083b.d: examples/warehouse_maintenance.rs

/root/repo/target/release/examples/warehouse_maintenance-0eb174b83723083b: examples/warehouse_maintenance.rs

examples/warehouse_maintenance.rs:
