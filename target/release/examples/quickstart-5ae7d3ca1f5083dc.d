/root/repo/target/release/examples/quickstart-5ae7d3ca1f5083dc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5ae7d3ca1f5083dc: examples/quickstart.rs

examples/quickstart.rs:
