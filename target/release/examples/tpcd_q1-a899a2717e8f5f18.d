/root/repo/target/release/examples/tpcd_q1-a899a2717e8f5f18.d: examples/tpcd_q1.rs

/root/repo/target/release/examples/tpcd_q1-a899a2717e8f5f18: examples/tpcd_q1.rs

examples/tpcd_q1.rs:
