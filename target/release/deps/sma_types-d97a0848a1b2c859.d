/root/repo/target/release/deps/sma_types-d97a0848a1b2c859.d: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/release/deps/libsma_types-d97a0848a1b2c859.rlib: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/release/deps/libsma_types-d97a0848a1b2c859.rmeta: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

crates/sma-types/src/lib.rs:
crates/sma-types/src/date.rs:
crates/sma-types/src/decimal.rs:
crates/sma-types/src/rng.rs:
crates/sma-types/src/row.rs:
crates/sma-types/src/schema.rs:
crates/sma-types/src/value.rs:
