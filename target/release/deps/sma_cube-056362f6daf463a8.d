/root/repo/target/release/deps/sma_cube-056362f6daf463a8.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/release/deps/libsma_cube-056362f6daf463a8.rlib: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/release/deps/libsma_cube-056362f6daf463a8.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
