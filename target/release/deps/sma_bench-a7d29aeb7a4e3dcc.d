/root/repo/target/release/deps/sma_bench-a7d29aeb7a4e3dcc.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/release/deps/libsma_bench-a7d29aeb7a4e3dcc.rlib: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/release/deps/libsma_bench-a7d29aeb7a4e3dcc.rmeta: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
