/root/repo/target/release/deps/sma_storage-8b545dc1b31c45f7.d: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs

/root/repo/target/release/deps/libsma_storage-8b545dc1b31c45f7.rlib: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs

/root/repo/target/release/deps/libsma_storage-8b545dc1b31c45f7.rmeta: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs

crates/sma-storage/src/lib.rs:
crates/sma-storage/src/checksum.rs:
crates/sma-storage/src/cost.rs:
crates/sma-storage/src/page.rs:
crates/sma-storage/src/pool.rs:
crates/sma-storage/src/store.rs:
crates/sma-storage/src/table.rs:
crates/sma-storage/src/test_util.rs:
