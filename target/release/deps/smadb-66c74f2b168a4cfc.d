/root/repo/target/release/deps/smadb-66c74f2b168a4cfc.d: src/lib.rs src/warehouse.rs

/root/repo/target/release/deps/libsmadb-66c74f2b168a4cfc.rlib: src/lib.rs src/warehouse.rs

/root/repo/target/release/deps/libsmadb-66c74f2b168a4cfc.rmeta: src/lib.rs src/warehouse.rs

src/lib.rs:
src/warehouse.rs:
