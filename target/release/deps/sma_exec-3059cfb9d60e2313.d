/root/repo/target/release/deps/sma_exec-3059cfb9d60e2313.d: crates/sma-exec/src/lib.rs crates/sma-exec/src/basic.rs crates/sma-exec/src/degrade.rs crates/sma-exec/src/gaggr.rs crates/sma-exec/src/op.rs crates/sma-exec/src/parallel.rs crates/sma-exec/src/planner.rs crates/sma-exec/src/query1.rs crates/sma-exec/src/query3.rs crates/sma-exec/src/query4.rs crates/sma-exec/src/query6.rs crates/sma-exec/src/scan.rs crates/sma-exec/src/semijoin.rs crates/sma-exec/src/sma_gaggr.rs crates/sma-exec/src/sort.rs

/root/repo/target/release/deps/libsma_exec-3059cfb9d60e2313.rlib: crates/sma-exec/src/lib.rs crates/sma-exec/src/basic.rs crates/sma-exec/src/degrade.rs crates/sma-exec/src/gaggr.rs crates/sma-exec/src/op.rs crates/sma-exec/src/parallel.rs crates/sma-exec/src/planner.rs crates/sma-exec/src/query1.rs crates/sma-exec/src/query3.rs crates/sma-exec/src/query4.rs crates/sma-exec/src/query6.rs crates/sma-exec/src/scan.rs crates/sma-exec/src/semijoin.rs crates/sma-exec/src/sma_gaggr.rs crates/sma-exec/src/sort.rs

/root/repo/target/release/deps/libsma_exec-3059cfb9d60e2313.rmeta: crates/sma-exec/src/lib.rs crates/sma-exec/src/basic.rs crates/sma-exec/src/degrade.rs crates/sma-exec/src/gaggr.rs crates/sma-exec/src/op.rs crates/sma-exec/src/parallel.rs crates/sma-exec/src/planner.rs crates/sma-exec/src/query1.rs crates/sma-exec/src/query3.rs crates/sma-exec/src/query4.rs crates/sma-exec/src/query6.rs crates/sma-exec/src/scan.rs crates/sma-exec/src/semijoin.rs crates/sma-exec/src/sma_gaggr.rs crates/sma-exec/src/sort.rs

crates/sma-exec/src/lib.rs:
crates/sma-exec/src/basic.rs:
crates/sma-exec/src/degrade.rs:
crates/sma-exec/src/gaggr.rs:
crates/sma-exec/src/op.rs:
crates/sma-exec/src/parallel.rs:
crates/sma-exec/src/planner.rs:
crates/sma-exec/src/query1.rs:
crates/sma-exec/src/query3.rs:
crates/sma-exec/src/query4.rs:
crates/sma-exec/src/query6.rs:
crates/sma-exec/src/scan.rs:
crates/sma-exec/src/semijoin.rs:
crates/sma-exec/src/sma_gaggr.rs:
crates/sma-exec/src/sort.rs:
