/root/repo/target/release/deps/chaos-2fdf58fb1e783a3d.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-2fdf58fb1e783a3d: tests/chaos.rs

tests/chaos.rs:
