/root/repo/target/release/deps/paper_tables-b5649d0c6da88028.d: crates/sma-bench/src/bin/paper_tables.rs

/root/repo/target/release/deps/paper_tables-b5649d0c6da88028: crates/sma-bench/src/bin/paper_tables.rs

crates/sma-bench/src/bin/paper_tables.rs:
