/root/repo/target/debug/examples/tpcd_q1-939d77889a69c4c5.d: examples/tpcd_q1.rs Cargo.toml

/root/repo/target/debug/examples/libtpcd_q1-939d77889a69c4c5.rmeta: examples/tpcd_q1.rs Cargo.toml

examples/tpcd_q1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
