/root/repo/target/debug/examples/clustering_sweep-2361e86826ac3f5d.d: examples/clustering_sweep.rs

/root/repo/target/debug/examples/libclustering_sweep-2361e86826ac3f5d.rmeta: examples/clustering_sweep.rs

examples/clustering_sweep.rs:
