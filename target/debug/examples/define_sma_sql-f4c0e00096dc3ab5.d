/root/repo/target/debug/examples/define_sma_sql-f4c0e00096dc3ab5.d: examples/define_sma_sql.rs

/root/repo/target/debug/examples/libdefine_sma_sql-f4c0e00096dc3ab5.rmeta: examples/define_sma_sql.rs

examples/define_sma_sql.rs:
