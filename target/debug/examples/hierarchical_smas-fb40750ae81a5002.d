/root/repo/target/debug/examples/hierarchical_smas-fb40750ae81a5002.d: examples/hierarchical_smas.rs Cargo.toml

/root/repo/target/debug/examples/libhierarchical_smas-fb40750ae81a5002.rmeta: examples/hierarchical_smas.rs Cargo.toml

examples/hierarchical_smas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
