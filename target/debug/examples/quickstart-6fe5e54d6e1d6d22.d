/root/repo/target/debug/examples/quickstart-6fe5e54d6e1d6d22.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6fe5e54d6e1d6d22.rmeta: examples/quickstart.rs

examples/quickstart.rs:
