/root/repo/target/debug/examples/clustering_sweep-1aa8037c83036365.d: examples/clustering_sweep.rs

/root/repo/target/debug/examples/clustering_sweep-1aa8037c83036365: examples/clustering_sweep.rs

examples/clustering_sweep.rs:
