/root/repo/target/debug/examples/hierarchical_smas-60f90f908a7c32c9.d: examples/hierarchical_smas.rs

/root/repo/target/debug/examples/libhierarchical_smas-60f90f908a7c32c9.rmeta: examples/hierarchical_smas.rs

examples/hierarchical_smas.rs:
