/root/repo/target/debug/examples/define_sma_sql-5d9655a037a1197d.d: examples/define_sma_sql.rs Cargo.toml

/root/repo/target/debug/examples/libdefine_sma_sql-5d9655a037a1197d.rmeta: examples/define_sma_sql.rs Cargo.toml

examples/define_sma_sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
