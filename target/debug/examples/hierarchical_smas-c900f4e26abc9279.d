/root/repo/target/debug/examples/hierarchical_smas-c900f4e26abc9279.d: examples/hierarchical_smas.rs

/root/repo/target/debug/examples/hierarchical_smas-c900f4e26abc9279: examples/hierarchical_smas.rs

examples/hierarchical_smas.rs:
