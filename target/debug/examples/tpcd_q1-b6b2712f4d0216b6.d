/root/repo/target/debug/examples/tpcd_q1-b6b2712f4d0216b6.d: examples/tpcd_q1.rs

/root/repo/target/debug/examples/libtpcd_q1-b6b2712f4d0216b6.rmeta: examples/tpcd_q1.rs

examples/tpcd_q1.rs:
