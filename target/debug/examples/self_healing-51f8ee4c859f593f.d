/root/repo/target/debug/examples/self_healing-51f8ee4c859f593f.d: examples/self_healing.rs Cargo.toml

/root/repo/target/debug/examples/libself_healing-51f8ee4c859f593f.rmeta: examples/self_healing.rs Cargo.toml

examples/self_healing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
