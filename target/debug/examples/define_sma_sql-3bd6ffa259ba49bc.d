/root/repo/target/debug/examples/define_sma_sql-3bd6ffa259ba49bc.d: examples/define_sma_sql.rs

/root/repo/target/debug/examples/define_sma_sql-3bd6ffa259ba49bc: examples/define_sma_sql.rs

examples/define_sma_sql.rs:
