/root/repo/target/debug/examples/semijoin_reduction-23799f561e7a5741.d: examples/semijoin_reduction.rs

/root/repo/target/debug/examples/semijoin_reduction-23799f561e7a5741: examples/semijoin_reduction.rs

examples/semijoin_reduction.rs:
