/root/repo/target/debug/examples/self_healing-9c7bc2cc0bcc80fc.d: examples/self_healing.rs

/root/repo/target/debug/examples/self_healing-9c7bc2cc0bcc80fc: examples/self_healing.rs

examples/self_healing.rs:
