/root/repo/target/debug/examples/self_healing-ebcd2d95e49f54c3.d: examples/self_healing.rs

/root/repo/target/debug/examples/libself_healing-ebcd2d95e49f54c3.rmeta: examples/self_healing.rs

examples/self_healing.rs:
