/root/repo/target/debug/examples/tpcd_q1-cc9afc2ce0a1bd6b.d: examples/tpcd_q1.rs

/root/repo/target/debug/examples/tpcd_q1-cc9afc2ce0a1bd6b: examples/tpcd_q1.rs

examples/tpcd_q1.rs:
