/root/repo/target/debug/examples/semijoin_reduction-68423d40ed53b2e6.d: examples/semijoin_reduction.rs

/root/repo/target/debug/examples/libsemijoin_reduction-68423d40ed53b2e6.rmeta: examples/semijoin_reduction.rs

examples/semijoin_reduction.rs:
