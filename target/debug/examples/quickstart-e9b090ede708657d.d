/root/repo/target/debug/examples/quickstart-e9b090ede708657d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e9b090ede708657d: examples/quickstart.rs

examples/quickstart.rs:
