/root/repo/target/debug/examples/warehouse_maintenance-8c8b075a08421f15.d: examples/warehouse_maintenance.rs

/root/repo/target/debug/examples/warehouse_maintenance-8c8b075a08421f15: examples/warehouse_maintenance.rs

examples/warehouse_maintenance.rs:
