/root/repo/target/debug/examples/warehouse_maintenance-072173771f86a6aa.d: examples/warehouse_maintenance.rs Cargo.toml

/root/repo/target/debug/examples/libwarehouse_maintenance-072173771f86a6aa.rmeta: examples/warehouse_maintenance.rs Cargo.toml

examples/warehouse_maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
