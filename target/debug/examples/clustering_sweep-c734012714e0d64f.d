/root/repo/target/debug/examples/clustering_sweep-c734012714e0d64f.d: examples/clustering_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libclustering_sweep-c734012714e0d64f.rmeta: examples/clustering_sweep.rs Cargo.toml

examples/clustering_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
