/root/repo/target/debug/examples/semijoin_reduction-549770414839fb0c.d: examples/semijoin_reduction.rs Cargo.toml

/root/repo/target/debug/examples/libsemijoin_reduction-549770414839fb0c.rmeta: examples/semijoin_reduction.rs Cargo.toml

examples/semijoin_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
