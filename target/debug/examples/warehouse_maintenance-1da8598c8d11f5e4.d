/root/repo/target/debug/examples/warehouse_maintenance-1da8598c8d11f5e4.d: examples/warehouse_maintenance.rs

/root/repo/target/debug/examples/libwarehouse_maintenance-1da8598c8d11f5e4.rmeta: examples/warehouse_maintenance.rs

examples/warehouse_maintenance.rs:
