/root/repo/target/debug/deps/property_grading-48ee80d73245e8c3.d: tests/property_grading.rs

/root/repo/target/debug/deps/libproperty_grading-48ee80d73245e8c3.rmeta: tests/property_grading.rs

tests/property_grading.rs:
