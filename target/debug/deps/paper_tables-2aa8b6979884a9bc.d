/root/repo/target/debug/deps/paper_tables-2aa8b6979884a9bc.d: crates/sma-bench/src/bin/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-2aa8b6979884a9bc.rmeta: crates/sma-bench/src/bin/paper_tables.rs Cargo.toml

crates/sma-bench/src/bin/paper_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
