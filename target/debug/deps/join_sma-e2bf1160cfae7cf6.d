/root/repo/target/debug/deps/join_sma-e2bf1160cfae7cf6.d: crates/sma-bench/benches/join_sma.rs

/root/repo/target/debug/deps/join_sma-e2bf1160cfae7cf6: crates/sma-bench/benches/join_sma.rs

crates/sma-bench/benches/join_sma.rs:
