/root/repo/target/debug/deps/property_grading-e04bbc1702ed67b2.d: tests/property_grading.rs

/root/repo/target/debug/deps/property_grading-e04bbc1702ed67b2: tests/property_grading.rs

tests/property_grading.rs:
