/root/repo/target/debug/deps/sma_cube-cbf228bfc7bb5dea.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/debug/deps/libsma_cube-cbf228bfc7bb5dea.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
