/root/repo/target/debug/deps/extensions-b40209a74969ab1f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b40209a74969ab1f: tests/extensions.rs

tests/extensions.rs:
