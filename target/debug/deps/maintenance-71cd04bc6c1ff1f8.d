/root/repo/target/debug/deps/maintenance-71cd04bc6c1ff1f8.d: crates/sma-bench/benches/maintenance.rs

/root/repo/target/debug/deps/maintenance-71cd04bc6c1ff1f8: crates/sma-bench/benches/maintenance.rs

crates/sma-bench/benches/maintenance.rs:
