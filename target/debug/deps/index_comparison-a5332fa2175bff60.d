/root/repo/target/debug/deps/index_comparison-a5332fa2175bff60.d: crates/sma-bench/benches/index_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libindex_comparison-a5332fa2175bff60.rmeta: crates/sma-bench/benches/index_comparison.rs Cargo.toml

crates/sma-bench/benches/index_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
