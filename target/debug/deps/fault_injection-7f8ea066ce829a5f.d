/root/repo/target/debug/deps/fault_injection-7f8ea066ce829a5f.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-7f8ea066ce829a5f: tests/fault_injection.rs

tests/fault_injection.rs:
