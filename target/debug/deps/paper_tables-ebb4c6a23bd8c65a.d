/root/repo/target/debug/deps/paper_tables-ebb4c6a23bd8c65a.d: crates/sma-bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-ebb4c6a23bd8c65a: crates/sma-bench/src/bin/paper_tables.rs

crates/sma-bench/src/bin/paper_tables.rs:
