/root/repo/target/debug/deps/maintenance-36207e43ae22ebcf.d: crates/sma-bench/benches/maintenance.rs

/root/repo/target/debug/deps/libmaintenance-36207e43ae22ebcf.rmeta: crates/sma-bench/benches/maintenance.rs

crates/sma-bench/benches/maintenance.rs:
