/root/repo/target/debug/deps/sma_types-be2492af08246e46.d: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/debug/deps/libsma_types-be2492af08246e46.rmeta: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

crates/sma-types/src/lib.rs:
crates/sma-types/src/date.rs:
crates/sma-types/src/decimal.rs:
crates/sma-types/src/rng.rs:
crates/sma-types/src/row.rs:
crates/sma-types/src/schema.rs:
crates/sma-types/src/value.rs:
