/root/repo/target/debug/deps/grading-c6264df3c0ef4d3f.d: crates/sma-bench/benches/grading.rs Cargo.toml

/root/repo/target/debug/deps/libgrading-c6264df3c0ef4d3f.rmeta: crates/sma-bench/benches/grading.rs Cargo.toml

crates/sma-bench/benches/grading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
