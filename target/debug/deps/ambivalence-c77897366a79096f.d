/root/repo/target/debug/deps/ambivalence-c77897366a79096f.d: crates/sma-bench/benches/ambivalence.rs

/root/repo/target/debug/deps/ambivalence-c77897366a79096f: crates/sma-bench/benches/ambivalence.rs

crates/sma-bench/benches/ambivalence.rs:
