/root/repo/target/debug/deps/crash_recovery-c2fcf2976c733a5d.d: tests/crash_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_recovery-c2fcf2976c733a5d.rmeta: tests/crash_recovery.rs Cargo.toml

tests/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
