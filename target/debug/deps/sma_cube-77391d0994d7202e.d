/root/repo/target/debug/deps/sma_cube-77391d0994d7202e.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/debug/deps/sma_cube-77391d0994d7202e: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
