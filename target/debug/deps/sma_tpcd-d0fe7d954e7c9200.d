/root/repo/target/debug/deps/sma_tpcd-d0fe7d954e7c9200.d: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs

/root/repo/target/debug/deps/libsma_tpcd-d0fe7d954e7c9200.rmeta: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs

crates/sma-tpcd/src/lib.rs:
crates/sma-tpcd/src/clustering.rs:
crates/sma-tpcd/src/customer.rs:
crates/sma-tpcd/src/generator.rs:
crates/sma-tpcd/src/query1.rs:
crates/sma-tpcd/src/query3.rs:
crates/sma-tpcd/src/query4.rs:
crates/sma-tpcd/src/query6.rs:
crates/sma-tpcd/src/schema.rs:
