/root/repo/target/debug/deps/paper_example-2efe39c111bf651c.d: tests/paper_example.rs

/root/repo/target/debug/deps/libpaper_example-2efe39c111bf651c.rmeta: tests/paper_example.rs

tests/paper_example.rs:
