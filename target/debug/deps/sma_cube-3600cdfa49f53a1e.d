/root/repo/target/debug/deps/sma_cube-3600cdfa49f53a1e.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/debug/deps/libsma_cube-3600cdfa49f53a1e.rlib: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/debug/deps/libsma_cube-3600cdfa49f53a1e.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
