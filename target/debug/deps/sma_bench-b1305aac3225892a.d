/root/repo/target/debug/deps/sma_bench-b1305aac3225892a.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/debug/deps/libsma_bench-b1305aac3225892a.rlib: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/debug/deps/libsma_bench-b1305aac3225892a.rmeta: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
