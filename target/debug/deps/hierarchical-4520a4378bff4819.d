/root/repo/target/debug/deps/hierarchical-4520a4378bff4819.d: crates/sma-bench/benches/hierarchical.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchical-4520a4378bff4819.rmeta: crates/sma-bench/benches/hierarchical.rs Cargo.toml

crates/sma-bench/benches/hierarchical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
