/root/repo/target/debug/deps/grading-39d5a9ab8fdeedee.d: crates/sma-bench/benches/grading.rs

/root/repo/target/debug/deps/libgrading-39d5a9ab8fdeedee.rmeta: crates/sma-bench/benches/grading.rs

crates/sma-bench/benches/grading.rs:
