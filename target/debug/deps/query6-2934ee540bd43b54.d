/root/repo/target/debug/deps/query6-2934ee540bd43b54.d: crates/sma-bench/benches/query6.rs

/root/repo/target/debug/deps/query6-2934ee540bd43b54: crates/sma-bench/benches/query6.rs

crates/sma-bench/benches/query6.rs:
