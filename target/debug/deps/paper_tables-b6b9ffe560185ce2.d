/root/repo/target/debug/deps/paper_tables-b6b9ffe560185ce2.d: crates/sma-bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-b6b9ffe560185ce2.rmeta: crates/sma-bench/src/bin/paper_tables.rs

crates/sma-bench/src/bin/paper_tables.rs:
