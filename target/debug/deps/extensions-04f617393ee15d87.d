/root/repo/target/debug/deps/extensions-04f617393ee15d87.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-04f617393ee15d87.rmeta: tests/extensions.rs

tests/extensions.rs:
