/root/repo/target/debug/deps/ambivalence-dfc5c0fce574bb42.d: crates/sma-bench/benches/ambivalence.rs

/root/repo/target/debug/deps/libambivalence-dfc5c0fce574bb42.rmeta: crates/sma-bench/benches/ambivalence.rs

crates/sma-bench/benches/ambivalence.rs:
