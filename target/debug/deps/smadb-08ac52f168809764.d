/root/repo/target/debug/deps/smadb-08ac52f168809764.d: src/lib.rs src/warehouse.rs

/root/repo/target/debug/deps/libsmadb-08ac52f168809764.rlib: src/lib.rs src/warehouse.rs

/root/repo/target/debug/deps/libsmadb-08ac52f168809764.rmeta: src/lib.rs src/warehouse.rs

src/lib.rs:
src/warehouse.rs:
