/root/repo/target/debug/deps/parallel_scaling-2e2e9cbc244c793d.d: crates/sma-bench/benches/parallel_scaling.rs

/root/repo/target/debug/deps/libparallel_scaling-2e2e9cbc244c793d.rmeta: crates/sma-bench/benches/parallel_scaling.rs

crates/sma-bench/benches/parallel_scaling.rs:
