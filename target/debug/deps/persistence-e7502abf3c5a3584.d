/root/repo/target/debug/deps/persistence-e7502abf3c5a3584.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-e7502abf3c5a3584: tests/persistence.rs

tests/persistence.rs:
