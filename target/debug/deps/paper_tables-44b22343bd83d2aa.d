/root/repo/target/debug/deps/paper_tables-44b22343bd83d2aa.d: crates/sma-bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/libpaper_tables-44b22343bd83d2aa.rmeta: crates/sma-bench/src/bin/paper_tables.rs

crates/sma-bench/src/bin/paper_tables.rs:
