/root/repo/target/debug/deps/property_grading-72387072248f86ce.d: tests/property_grading.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_grading-72387072248f86ce.rmeta: tests/property_grading.rs Cargo.toml

tests/property_grading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
