/root/repo/target/debug/deps/maintenance-6d9021874e743819.d: tests/maintenance.rs

/root/repo/target/debug/deps/maintenance-6d9021874e743819: tests/maintenance.rs

tests/maintenance.rs:
