/root/repo/target/debug/deps/join_sma-f4db8bf08dc76d24.d: crates/sma-bench/benches/join_sma.rs

/root/repo/target/debug/deps/libjoin_sma-f4db8bf08dc76d24.rmeta: crates/sma-bench/benches/join_sma.rs

crates/sma-bench/benches/join_sma.rs:
