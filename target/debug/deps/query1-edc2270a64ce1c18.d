/root/repo/target/debug/deps/query1-edc2270a64ce1c18.d: crates/sma-bench/benches/query1.rs

/root/repo/target/debug/deps/query1-edc2270a64ce1c18: crates/sma-bench/benches/query1.rs

crates/sma-bench/benches/query1.rs:
