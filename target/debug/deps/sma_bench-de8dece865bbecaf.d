/root/repo/target/debug/deps/sma_bench-de8dece865bbecaf.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/debug/deps/libsma_bench-de8dece865bbecaf.rmeta: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
