/root/repo/target/debug/deps/hierarchical-ea82287382771071.d: crates/sma-bench/benches/hierarchical.rs

/root/repo/target/debug/deps/libhierarchical-ea82287382771071.rmeta: crates/sma-bench/benches/hierarchical.rs

crates/sma-bench/benches/hierarchical.rs:
