/root/repo/target/debug/deps/sma_tpcd-ec3c6b0cf0aff29e.d: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libsma_tpcd-ec3c6b0cf0aff29e.rmeta: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs Cargo.toml

crates/sma-tpcd/src/lib.rs:
crates/sma-tpcd/src/clustering.rs:
crates/sma-tpcd/src/customer.rs:
crates/sma-tpcd/src/generator.rs:
crates/sma-tpcd/src/query1.rs:
crates/sma-tpcd/src/query3.rs:
crates/sma-tpcd/src/query4.rs:
crates/sma-tpcd/src/query6.rs:
crates/sma-tpcd/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
