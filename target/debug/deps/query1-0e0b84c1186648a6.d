/root/repo/target/debug/deps/query1-0e0b84c1186648a6.d: crates/sma-bench/benches/query1.rs

/root/repo/target/debug/deps/libquery1-0e0b84c1186648a6.rmeta: crates/sma-bench/benches/query1.rs

crates/sma-bench/benches/query1.rs:
