/root/repo/target/debug/deps/index_comparison-c5eb9782c3b0596b.d: crates/sma-bench/benches/index_comparison.rs

/root/repo/target/debug/deps/libindex_comparison-c5eb9782c3b0596b.rmeta: crates/sma-bench/benches/index_comparison.rs

crates/sma-bench/benches/index_comparison.rs:
