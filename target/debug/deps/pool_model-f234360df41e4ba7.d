/root/repo/target/debug/deps/pool_model-f234360df41e4ba7.d: tests/pool_model.rs

/root/repo/target/debug/deps/pool_model-f234360df41e4ba7: tests/pool_model.rs

tests/pool_model.rs:
