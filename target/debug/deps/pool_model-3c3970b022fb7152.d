/root/repo/target/debug/deps/pool_model-3c3970b022fb7152.d: tests/pool_model.rs

/root/repo/target/debug/deps/libpool_model-3c3970b022fb7152.rmeta: tests/pool_model.rs

tests/pool_model.rs:
