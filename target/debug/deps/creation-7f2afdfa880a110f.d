/root/repo/target/debug/deps/creation-7f2afdfa880a110f.d: crates/sma-bench/benches/creation.rs

/root/repo/target/debug/deps/creation-7f2afdfa880a110f: crates/sma-bench/benches/creation.rs

crates/sma-bench/benches/creation.rs:
