/root/repo/target/debug/deps/bucket_size-03b0db7096b09f63.d: crates/sma-bench/benches/bucket_size.rs Cargo.toml

/root/repo/target/debug/deps/libbucket_size-03b0db7096b09f63.rmeta: crates/sma-bench/benches/bucket_size.rs Cargo.toml

crates/sma-bench/benches/bucket_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
