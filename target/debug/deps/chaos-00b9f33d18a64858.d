/root/repo/target/debug/deps/chaos-00b9f33d18a64858.d: tests/chaos.rs

/root/repo/target/debug/deps/libchaos-00b9f33d18a64858.rmeta: tests/chaos.rs

tests/chaos.rs:
