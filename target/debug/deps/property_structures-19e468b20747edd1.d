/root/repo/target/debug/deps/property_structures-19e468b20747edd1.d: tests/property_structures.rs

/root/repo/target/debug/deps/libproperty_structures-19e468b20747edd1.rmeta: tests/property_structures.rs

tests/property_structures.rs:
