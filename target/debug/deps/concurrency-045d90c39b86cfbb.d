/root/repo/target/debug/deps/concurrency-045d90c39b86cfbb.d: tests/concurrency.rs

/root/repo/target/debug/deps/libconcurrency-045d90c39b86cfbb.rmeta: tests/concurrency.rs

tests/concurrency.rs:
