/root/repo/target/debug/deps/sma_storage-acede17d8f04e4ea.d: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs

/root/repo/target/debug/deps/libsma_storage-acede17d8f04e4ea.rmeta: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs

crates/sma-storage/src/lib.rs:
crates/sma-storage/src/checksum.rs:
crates/sma-storage/src/cost.rs:
crates/sma-storage/src/page.rs:
crates/sma-storage/src/pool.rs:
crates/sma-storage/src/store.rs:
crates/sma-storage/src/table.rs:
crates/sma-storage/src/test_util.rs:
