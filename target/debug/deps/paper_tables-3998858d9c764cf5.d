/root/repo/target/debug/deps/paper_tables-3998858d9c764cf5.d: crates/sma-bench/src/bin/paper_tables.rs

/root/repo/target/debug/deps/paper_tables-3998858d9c764cf5: crates/sma-bench/src/bin/paper_tables.rs

crates/sma-bench/src/bin/paper_tables.rs:
