/root/repo/target/debug/deps/parallel_scaling-e17a85c922cd26ec.d: crates/sma-bench/benches/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_scaling-e17a85c922cd26ec.rmeta: crates/sma-bench/benches/parallel_scaling.rs Cargo.toml

crates/sma-bench/benches/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
