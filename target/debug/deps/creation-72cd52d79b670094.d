/root/repo/target/debug/deps/creation-72cd52d79b670094.d: crates/sma-bench/benches/creation.rs

/root/repo/target/debug/deps/libcreation-72cd52d79b670094.rmeta: crates/sma-bench/benches/creation.rs

crates/sma-bench/benches/creation.rs:
