/root/repo/target/debug/deps/query6-1a1f3e128ac16183.d: crates/sma-bench/benches/query6.rs Cargo.toml

/root/repo/target/debug/deps/libquery6-1a1f3e128ac16183.rmeta: crates/sma-bench/benches/query6.rs Cargo.toml

crates/sma-bench/benches/query6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
