/root/repo/target/debug/deps/q1_correctness-5fb724f043be3c28.d: tests/q1_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libq1_correctness-5fb724f043be3c28.rmeta: tests/q1_correctness.rs Cargo.toml

tests/q1_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
