/root/repo/target/debug/deps/bucket_size-9a0e278bde4ed125.d: crates/sma-bench/benches/bucket_size.rs

/root/repo/target/debug/deps/bucket_size-9a0e278bde4ed125: crates/sma-bench/benches/bucket_size.rs

crates/sma-bench/benches/bucket_size.rs:
