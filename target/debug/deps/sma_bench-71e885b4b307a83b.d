/root/repo/target/debug/deps/sma_bench-71e885b4b307a83b.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsma_bench-71e885b4b307a83b.rmeta: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs Cargo.toml

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
