/root/repo/target/debug/deps/extensions-2cd8ed1130345dbb.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-2cd8ed1130345dbb.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
