/root/repo/target/debug/deps/property_structures-fdef9a049df01a8f.d: tests/property_structures.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_structures-fdef9a049df01a8f.rmeta: tests/property_structures.rs Cargo.toml

tests/property_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
