/root/repo/target/debug/deps/storage_micro-bba9e8eef587e314.d: crates/sma-bench/benches/storage_micro.rs

/root/repo/target/debug/deps/storage_micro-bba9e8eef587e314: crates/sma-bench/benches/storage_micro.rs

crates/sma-bench/benches/storage_micro.rs:
