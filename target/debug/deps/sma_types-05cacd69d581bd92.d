/root/repo/target/debug/deps/sma_types-05cacd69d581bd92.d: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/debug/deps/libsma_types-05cacd69d581bd92.rlib: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/debug/deps/libsma_types-05cacd69d581bd92.rmeta: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

crates/sma-types/src/lib.rs:
crates/sma-types/src/date.rs:
crates/sma-types/src/decimal.rs:
crates/sma-types/src/rng.rs:
crates/sma-types/src/row.rs:
crates/sma-types/src/schema.rs:
crates/sma-types/src/value.rs:
