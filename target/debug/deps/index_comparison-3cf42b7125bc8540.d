/root/repo/target/debug/deps/index_comparison-3cf42b7125bc8540.d: crates/sma-bench/benches/index_comparison.rs

/root/repo/target/debug/deps/index_comparison-3cf42b7125bc8540: crates/sma-bench/benches/index_comparison.rs

crates/sma-bench/benches/index_comparison.rs:
