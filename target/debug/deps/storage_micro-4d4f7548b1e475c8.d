/root/repo/target/debug/deps/storage_micro-4d4f7548b1e475c8.d: crates/sma-bench/benches/storage_micro.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_micro-4d4f7548b1e475c8.rmeta: crates/sma-bench/benches/storage_micro.rs Cargo.toml

crates/sma-bench/benches/storage_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
