/root/repo/target/debug/deps/maintenance-22c8566fb63efb63.d: crates/sma-bench/benches/maintenance.rs Cargo.toml

/root/repo/target/debug/deps/libmaintenance-22c8566fb63efb63.rmeta: crates/sma-bench/benches/maintenance.rs Cargo.toml

crates/sma-bench/benches/maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
