/root/repo/target/debug/deps/q1_correctness-02b6fe97e6603111.d: tests/q1_correctness.rs

/root/repo/target/debug/deps/q1_correctness-02b6fe97e6603111: tests/q1_correctness.rs

tests/q1_correctness.rs:
