/root/repo/target/debug/deps/sma_storage-a69f4e22410c2e46.d: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs Cargo.toml

/root/repo/target/debug/deps/libsma_storage-a69f4e22410c2e46.rmeta: crates/sma-storage/src/lib.rs crates/sma-storage/src/checksum.rs crates/sma-storage/src/cost.rs crates/sma-storage/src/page.rs crates/sma-storage/src/pool.rs crates/sma-storage/src/store.rs crates/sma-storage/src/table.rs crates/sma-storage/src/test_util.rs Cargo.toml

crates/sma-storage/src/lib.rs:
crates/sma-storage/src/checksum.rs:
crates/sma-storage/src/cost.rs:
crates/sma-storage/src/page.rs:
crates/sma-storage/src/pool.rs:
crates/sma-storage/src/store.rs:
crates/sma-storage/src/table.rs:
crates/sma-storage/src/test_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
