/root/repo/target/debug/deps/join_sma-4d73577e07f87eba.d: crates/sma-bench/benches/join_sma.rs Cargo.toml

/root/repo/target/debug/deps/libjoin_sma-4d73577e07f87eba.rmeta: crates/sma-bench/benches/join_sma.rs Cargo.toml

crates/sma-bench/benches/join_sma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
