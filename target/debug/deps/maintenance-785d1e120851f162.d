/root/repo/target/debug/deps/maintenance-785d1e120851f162.d: tests/maintenance.rs Cargo.toml

/root/repo/target/debug/deps/libmaintenance-785d1e120851f162.rmeta: tests/maintenance.rs Cargo.toml

tests/maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
