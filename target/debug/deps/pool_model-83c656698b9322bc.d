/root/repo/target/debug/deps/pool_model-83c656698b9322bc.d: tests/pool_model.rs Cargo.toml

/root/repo/target/debug/deps/libpool_model-83c656698b9322bc.rmeta: tests/pool_model.rs Cargo.toml

tests/pool_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
