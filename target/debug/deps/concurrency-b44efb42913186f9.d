/root/repo/target/debug/deps/concurrency-b44efb42913186f9.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-b44efb42913186f9: tests/concurrency.rs

tests/concurrency.rs:
