/root/repo/target/debug/deps/smadb-a8f3bd1a8f558b97.d: src/lib.rs src/warehouse.rs Cargo.toml

/root/repo/target/debug/deps/libsmadb-a8f3bd1a8f558b97.rmeta: src/lib.rs src/warehouse.rs Cargo.toml

src/lib.rs:
src/warehouse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
