/root/repo/target/debug/deps/fuzzing-bfad7747aff9db73.d: tests/fuzzing.rs

/root/repo/target/debug/deps/fuzzing-bfad7747aff9db73: tests/fuzzing.rs

tests/fuzzing.rs:
