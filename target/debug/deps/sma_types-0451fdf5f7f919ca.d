/root/repo/target/debug/deps/sma_types-0451fdf5f7f919ca.d: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

/root/repo/target/debug/deps/sma_types-0451fdf5f7f919ca: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs

crates/sma-types/src/lib.rs:
crates/sma-types/src/date.rs:
crates/sma-types/src/decimal.rs:
crates/sma-types/src/rng.rs:
crates/sma-types/src/row.rs:
crates/sma-types/src/schema.rs:
crates/sma-types/src/value.rs:
