/root/repo/target/debug/deps/persistence-e62bf26505e8aaaf.d: tests/persistence.rs

/root/repo/target/debug/deps/libpersistence-e62bf26505e8aaaf.rmeta: tests/persistence.rs

tests/persistence.rs:
