/root/repo/target/debug/deps/sma_cube-4a04b22585257cdc.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libsma_cube-4a04b22585257cdc.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs Cargo.toml

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
