/root/repo/target/debug/deps/ambivalence-267198e36705733d.d: crates/sma-bench/benches/ambivalence.rs Cargo.toml

/root/repo/target/debug/deps/libambivalence-267198e36705733d.rmeta: crates/sma-bench/benches/ambivalence.rs Cargo.toml

crates/sma-bench/benches/ambivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
