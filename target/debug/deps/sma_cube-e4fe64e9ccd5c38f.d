/root/repo/target/debug/deps/sma_cube-e4fe64e9ccd5c38f.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libsma_cube-e4fe64e9ccd5c38f.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs Cargo.toml

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
