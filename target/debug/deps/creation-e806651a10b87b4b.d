/root/repo/target/debug/deps/creation-e806651a10b87b4b.d: crates/sma-bench/benches/creation.rs Cargo.toml

/root/repo/target/debug/deps/libcreation-e806651a10b87b4b.rmeta: crates/sma-bench/benches/creation.rs Cargo.toml

crates/sma-bench/benches/creation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
