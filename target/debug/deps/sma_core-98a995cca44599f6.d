/root/repo/target/debug/deps/sma_core-98a995cca44599f6.d: crates/sma-core/src/lib.rs crates/sma-core/src/agg.rs crates/sma-core/src/catalog.rs crates/sma-core/src/def.rs crates/sma-core/src/expr.rs crates/sma-core/src/file.rs crates/sma-core/src/grade.rs crates/sma-core/src/hierarchical.rs crates/sma-core/src/join_sma.rs crates/sma-core/src/parse.rs crates/sma-core/src/persist.rs crates/sma-core/src/projection.rs crates/sma-core/src/set.rs crates/sma-core/src/sma.rs Cargo.toml

/root/repo/target/debug/deps/libsma_core-98a995cca44599f6.rmeta: crates/sma-core/src/lib.rs crates/sma-core/src/agg.rs crates/sma-core/src/catalog.rs crates/sma-core/src/def.rs crates/sma-core/src/expr.rs crates/sma-core/src/file.rs crates/sma-core/src/grade.rs crates/sma-core/src/hierarchical.rs crates/sma-core/src/join_sma.rs crates/sma-core/src/parse.rs crates/sma-core/src/persist.rs crates/sma-core/src/projection.rs crates/sma-core/src/set.rs crates/sma-core/src/sma.rs Cargo.toml

crates/sma-core/src/lib.rs:
crates/sma-core/src/agg.rs:
crates/sma-core/src/catalog.rs:
crates/sma-core/src/def.rs:
crates/sma-core/src/expr.rs:
crates/sma-core/src/file.rs:
crates/sma-core/src/grade.rs:
crates/sma-core/src/hierarchical.rs:
crates/sma-core/src/join_sma.rs:
crates/sma-core/src/parse.rs:
crates/sma-core/src/persist.rs:
crates/sma-core/src/projection.rs:
crates/sma-core/src/set.rs:
crates/sma-core/src/sma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
