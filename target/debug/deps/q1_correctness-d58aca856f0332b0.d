/root/repo/target/debug/deps/q1_correctness-d58aca856f0332b0.d: tests/q1_correctness.rs

/root/repo/target/debug/deps/libq1_correctness-d58aca856f0332b0.rmeta: tests/q1_correctness.rs

tests/q1_correctness.rs:
