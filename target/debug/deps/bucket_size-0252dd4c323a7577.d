/root/repo/target/debug/deps/bucket_size-0252dd4c323a7577.d: crates/sma-bench/benches/bucket_size.rs

/root/repo/target/debug/deps/libbucket_size-0252dd4c323a7577.rmeta: crates/sma-bench/benches/bucket_size.rs

crates/sma-bench/benches/bucket_size.rs:
