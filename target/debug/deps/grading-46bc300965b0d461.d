/root/repo/target/debug/deps/grading-46bc300965b0d461.d: crates/sma-bench/benches/grading.rs

/root/repo/target/debug/deps/grading-46bc300965b0d461: crates/sma-bench/benches/grading.rs

crates/sma-bench/benches/grading.rs:
