/root/repo/target/debug/deps/query1-d97bef62d97849ac.d: crates/sma-bench/benches/query1.rs Cargo.toml

/root/repo/target/debug/deps/libquery1-d97bef62d97849ac.rmeta: crates/sma-bench/benches/query1.rs Cargo.toml

crates/sma-bench/benches/query1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
