/root/repo/target/debug/deps/hierarchical-48f07db0af56c347.d: crates/sma-bench/benches/hierarchical.rs

/root/repo/target/debug/deps/hierarchical-48f07db0af56c347: crates/sma-bench/benches/hierarchical.rs

crates/sma-bench/benches/hierarchical.rs:
