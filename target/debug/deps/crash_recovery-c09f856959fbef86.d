/root/repo/target/debug/deps/crash_recovery-c09f856959fbef86.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-c09f856959fbef86: tests/crash_recovery.rs

tests/crash_recovery.rs:
