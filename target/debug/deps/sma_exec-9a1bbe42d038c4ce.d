/root/repo/target/debug/deps/sma_exec-9a1bbe42d038c4ce.d: crates/sma-exec/src/lib.rs crates/sma-exec/src/basic.rs crates/sma-exec/src/degrade.rs crates/sma-exec/src/gaggr.rs crates/sma-exec/src/op.rs crates/sma-exec/src/parallel.rs crates/sma-exec/src/planner.rs crates/sma-exec/src/query1.rs crates/sma-exec/src/query3.rs crates/sma-exec/src/query4.rs crates/sma-exec/src/query6.rs crates/sma-exec/src/scan.rs crates/sma-exec/src/semijoin.rs crates/sma-exec/src/sma_gaggr.rs crates/sma-exec/src/sort.rs

/root/repo/target/debug/deps/libsma_exec-9a1bbe42d038c4ce.rmeta: crates/sma-exec/src/lib.rs crates/sma-exec/src/basic.rs crates/sma-exec/src/degrade.rs crates/sma-exec/src/gaggr.rs crates/sma-exec/src/op.rs crates/sma-exec/src/parallel.rs crates/sma-exec/src/planner.rs crates/sma-exec/src/query1.rs crates/sma-exec/src/query3.rs crates/sma-exec/src/query4.rs crates/sma-exec/src/query6.rs crates/sma-exec/src/scan.rs crates/sma-exec/src/semijoin.rs crates/sma-exec/src/sma_gaggr.rs crates/sma-exec/src/sort.rs

crates/sma-exec/src/lib.rs:
crates/sma-exec/src/basic.rs:
crates/sma-exec/src/degrade.rs:
crates/sma-exec/src/gaggr.rs:
crates/sma-exec/src/op.rs:
crates/sma-exec/src/parallel.rs:
crates/sma-exec/src/planner.rs:
crates/sma-exec/src/query1.rs:
crates/sma-exec/src/query3.rs:
crates/sma-exec/src/query4.rs:
crates/sma-exec/src/query6.rs:
crates/sma-exec/src/scan.rs:
crates/sma-exec/src/semijoin.rs:
crates/sma-exec/src/sma_gaggr.rs:
crates/sma-exec/src/sort.rs:
