/root/repo/target/debug/deps/chaos-5039a26217a75933.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-5039a26217a75933.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
