/root/repo/target/debug/deps/chaos-0ca3b1cab1ded0f6.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-0ca3b1cab1ded0f6: tests/chaos.rs

tests/chaos.rs:
