/root/repo/target/debug/deps/fault_injection-a518bd789bf9fd78.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-a518bd789bf9fd78.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
