/root/repo/target/debug/deps/paper_example-689c42992196da46.d: tests/paper_example.rs

/root/repo/target/debug/deps/paper_example-689c42992196da46: tests/paper_example.rs

tests/paper_example.rs:
