/root/repo/target/debug/deps/sma_types-9ecf64684b716d40.d: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsma_types-9ecf64684b716d40.rmeta: crates/sma-types/src/lib.rs crates/sma-types/src/date.rs crates/sma-types/src/decimal.rs crates/sma-types/src/rng.rs crates/sma-types/src/row.rs crates/sma-types/src/schema.rs crates/sma-types/src/value.rs Cargo.toml

crates/sma-types/src/lib.rs:
crates/sma-types/src/date.rs:
crates/sma-types/src/decimal.rs:
crates/sma-types/src/rng.rs:
crates/sma-types/src/row.rs:
crates/sma-types/src/schema.rs:
crates/sma-types/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
