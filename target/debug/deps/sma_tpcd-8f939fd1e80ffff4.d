/root/repo/target/debug/deps/sma_tpcd-8f939fd1e80ffff4.d: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs

/root/repo/target/debug/deps/libsma_tpcd-8f939fd1e80ffff4.rmeta: crates/sma-tpcd/src/lib.rs crates/sma-tpcd/src/clustering.rs crates/sma-tpcd/src/customer.rs crates/sma-tpcd/src/generator.rs crates/sma-tpcd/src/query1.rs crates/sma-tpcd/src/query3.rs crates/sma-tpcd/src/query4.rs crates/sma-tpcd/src/query6.rs crates/sma-tpcd/src/schema.rs

crates/sma-tpcd/src/lib.rs:
crates/sma-tpcd/src/clustering.rs:
crates/sma-tpcd/src/customer.rs:
crates/sma-tpcd/src/generator.rs:
crates/sma-tpcd/src/query1.rs:
crates/sma-tpcd/src/query3.rs:
crates/sma-tpcd/src/query4.rs:
crates/sma-tpcd/src/query6.rs:
crates/sma-tpcd/src/schema.rs:
