/root/repo/target/debug/deps/query6-39a6a0ce020d74ac.d: crates/sma-bench/benches/query6.rs

/root/repo/target/debug/deps/libquery6-39a6a0ce020d74ac.rmeta: crates/sma-bench/benches/query6.rs

crates/sma-bench/benches/query6.rs:
