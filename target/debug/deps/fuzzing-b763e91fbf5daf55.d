/root/repo/target/debug/deps/fuzzing-b763e91fbf5daf55.d: tests/fuzzing.rs

/root/repo/target/debug/deps/libfuzzing-b763e91fbf5daf55.rmeta: tests/fuzzing.rs

tests/fuzzing.rs:
