/root/repo/target/debug/deps/fuzzing-762499e15c83f81a.d: tests/fuzzing.rs Cargo.toml

/root/repo/target/debug/deps/libfuzzing-762499e15c83f81a.rmeta: tests/fuzzing.rs Cargo.toml

tests/fuzzing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
