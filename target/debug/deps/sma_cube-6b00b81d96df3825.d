/root/repo/target/debug/deps/sma_cube-6b00b81d96df3825.d: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

/root/repo/target/debug/deps/libsma_cube-6b00b81d96df3825.rmeta: crates/sma-cube/src/lib.rs crates/sma-cube/src/bitmap.rs crates/sma-cube/src/btree.rs crates/sma-cube/src/cube.rs crates/sma-cube/src/model.rs

crates/sma-cube/src/lib.rs:
crates/sma-cube/src/bitmap.rs:
crates/sma-cube/src/btree.rs:
crates/sma-cube/src/cube.rs:
crates/sma-cube/src/model.rs:
