/root/repo/target/debug/deps/sma_core-8e582d3b8f15109f.d: crates/sma-core/src/lib.rs crates/sma-core/src/agg.rs crates/sma-core/src/catalog.rs crates/sma-core/src/def.rs crates/sma-core/src/expr.rs crates/sma-core/src/file.rs crates/sma-core/src/grade.rs crates/sma-core/src/hierarchical.rs crates/sma-core/src/join_sma.rs crates/sma-core/src/parse.rs crates/sma-core/src/persist.rs crates/sma-core/src/projection.rs crates/sma-core/src/set.rs crates/sma-core/src/sma.rs

/root/repo/target/debug/deps/libsma_core-8e582d3b8f15109f.rmeta: crates/sma-core/src/lib.rs crates/sma-core/src/agg.rs crates/sma-core/src/catalog.rs crates/sma-core/src/def.rs crates/sma-core/src/expr.rs crates/sma-core/src/file.rs crates/sma-core/src/grade.rs crates/sma-core/src/hierarchical.rs crates/sma-core/src/join_sma.rs crates/sma-core/src/parse.rs crates/sma-core/src/persist.rs crates/sma-core/src/projection.rs crates/sma-core/src/set.rs crates/sma-core/src/sma.rs

crates/sma-core/src/lib.rs:
crates/sma-core/src/agg.rs:
crates/sma-core/src/catalog.rs:
crates/sma-core/src/def.rs:
crates/sma-core/src/expr.rs:
crates/sma-core/src/file.rs:
crates/sma-core/src/grade.rs:
crates/sma-core/src/hierarchical.rs:
crates/sma-core/src/join_sma.rs:
crates/sma-core/src/parse.rs:
crates/sma-core/src/persist.rs:
crates/sma-core/src/projection.rs:
crates/sma-core/src/set.rs:
crates/sma-core/src/sma.rs:
