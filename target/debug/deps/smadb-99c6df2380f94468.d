/root/repo/target/debug/deps/smadb-99c6df2380f94468.d: src/lib.rs src/warehouse.rs

/root/repo/target/debug/deps/libsmadb-99c6df2380f94468.rmeta: src/lib.rs src/warehouse.rs

src/lib.rs:
src/warehouse.rs:
