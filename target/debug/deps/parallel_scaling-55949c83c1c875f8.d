/root/repo/target/debug/deps/parallel_scaling-55949c83c1c875f8.d: crates/sma-bench/benches/parallel_scaling.rs

/root/repo/target/debug/deps/parallel_scaling-55949c83c1c875f8: crates/sma-bench/benches/parallel_scaling.rs

crates/sma-bench/benches/parallel_scaling.rs:
