/root/repo/target/debug/deps/smadb-507884adea2d6ae5.d: src/lib.rs src/warehouse.rs Cargo.toml

/root/repo/target/debug/deps/libsmadb-507884adea2d6ae5.rmeta: src/lib.rs src/warehouse.rs Cargo.toml

src/lib.rs:
src/warehouse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
