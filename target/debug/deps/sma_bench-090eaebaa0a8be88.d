/root/repo/target/debug/deps/sma_bench-090eaebaa0a8be88.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/debug/deps/sma_bench-090eaebaa0a8be88: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
