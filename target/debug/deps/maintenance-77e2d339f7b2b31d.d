/root/repo/target/debug/deps/maintenance-77e2d339f7b2b31d.d: tests/maintenance.rs

/root/repo/target/debug/deps/libmaintenance-77e2d339f7b2b31d.rmeta: tests/maintenance.rs

tests/maintenance.rs:
