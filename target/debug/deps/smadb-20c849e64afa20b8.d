/root/repo/target/debug/deps/smadb-20c849e64afa20b8.d: src/lib.rs src/warehouse.rs

/root/repo/target/debug/deps/smadb-20c849e64afa20b8: src/lib.rs src/warehouse.rs

src/lib.rs:
src/warehouse.rs:
