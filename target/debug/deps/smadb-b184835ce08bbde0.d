/root/repo/target/debug/deps/smadb-b184835ce08bbde0.d: src/lib.rs src/warehouse.rs

/root/repo/target/debug/deps/libsmadb-b184835ce08bbde0.rmeta: src/lib.rs src/warehouse.rs

src/lib.rs:
src/warehouse.rs:
