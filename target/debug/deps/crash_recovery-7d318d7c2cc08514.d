/root/repo/target/debug/deps/crash_recovery-7d318d7c2cc08514.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/libcrash_recovery-7d318d7c2cc08514.rmeta: tests/crash_recovery.rs

tests/crash_recovery.rs:
