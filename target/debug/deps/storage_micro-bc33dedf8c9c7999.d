/root/repo/target/debug/deps/storage_micro-bc33dedf8c9c7999.d: crates/sma-bench/benches/storage_micro.rs

/root/repo/target/debug/deps/libstorage_micro-bc33dedf8c9c7999.rmeta: crates/sma-bench/benches/storage_micro.rs

crates/sma-bench/benches/storage_micro.rs:
