/root/repo/target/debug/deps/property_structures-2a42962f3808bfe4.d: tests/property_structures.rs

/root/repo/target/debug/deps/property_structures-2a42962f3808bfe4: tests/property_structures.rs

tests/property_structures.rs:
