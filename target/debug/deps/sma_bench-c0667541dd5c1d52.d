/root/repo/target/debug/deps/sma_bench-c0667541dd5c1d52.d: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

/root/repo/target/debug/deps/libsma_bench-c0667541dd5c1d52.rmeta: crates/sma-bench/src/lib.rs crates/sma-bench/src/harness.rs

crates/sma-bench/src/lib.rs:
crates/sma-bench/src/harness.rs:
